//! Thread-scaling demonstration: Fast-BNI-par across thread counts on the
//! Diabetes analogue (large clique tables — the regime where intra-clique
//! parallelism pays), reproducing the paper's t = 1..32 methodology.
//!
//! Run with: `cargo run --release --example scaling`

use std::sync::Arc;
use std::time::Instant;

use fastbn::{EngineKind, Prepared, Solver};
use fastbn_bench::workloads::workload_by_name;

fn main() {
    let workload = workload_by_name("diabetes").expect("built-in workload");
    let net = workload.build();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let cases = workload.cases(&net, 10);
    println!(
        "network: {} ({} vars) -> {} cliques, width {}, {} layers; {} cases",
        workload.name,
        net.num_vars(),
        prepared.num_cliques(),
        prepared.built.tree.width(),
        prepared.built.schedule.num_layers(),
        cases.len()
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("(cores available: {cores})\n");

    let mut t1 = None;
    println!("{:>8} {:>12} {:>10}", "threads", "total (s)", "speedup");
    for t in [1usize, 2, 3, 4, 8, 16, 32] {
        let solver = Solver::from_prepared(prepared.clone())
            .engine(EngineKind::Hybrid)
            .threads(t)
            .build();
        let mut session = solver.session();
        let _ = session.posteriors(&cases[0]); // warm-up
        let start = Instant::now();
        for ev in &cases {
            session.posteriors(ev).expect("valid evidence");
        }
        let elapsed = start.elapsed().as_secs_f64();
        if t == 1 {
            t1 = Some(elapsed);
        }
        println!(
            "{:>8} {:>12.3} {:>9.2}x",
            t,
            elapsed,
            t1.expect("t=1 measured first") / elapsed
        );
    }
    println!(
        "\nspeedup saturates at the physical core count ({cores} here; the paper's \
         machine had 52);\noversubscribed pools pay claim/wake overhead, so expect a \
         slowdown past {cores} threads"
    );
}
