//! BIF interchange: write a network to the bnlearn `.bif` format, read it
//! back, and verify inference agrees — the workflow for loading the
//! paper's real evaluation networks when you have their files.
//!
//! Run with: `cargo run --release --example bif_roundtrip [path/to/net.bif]`

use std::sync::Arc;

use fastbn::bayesnet::{bif, datasets};
use fastbn::{Evidence, InferenceEngine, Prepared, SeqJt};

fn main() {
    // With an argument: load that BIF file and report on it.
    if let Some(path) = std::env::args().nth(1) {
        let net = bif::read_file(&path).expect("parse BIF file");
        println!(
            "loaded {}: {} variables, {} edges, {} parameters",
            path,
            net.num_vars(),
            net.num_edges(),
            net.total_parameters()
        );
        let prepared = Arc::new(Prepared::new(&net, &Default::default()));
        let mut engine = SeqJt::new(prepared.clone());
        let post = engine.query(&Evidence::empty()).expect("prior query");
        println!(
            "junction tree: {} cliques, width {}; P(no evidence) = {:.3}",
            prepared.num_cliques(),
            prepared.built.tree.width(),
            post.prob_evidence
        );
        return;
    }

    // Otherwise: round-trip the built-in Asia network through a temp file.
    let net = datasets::asia();
    let dir = std::env::temp_dir().join("fastbn_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("asia.bif");
    bif::write_file(&net, &path).expect("write BIF");
    println!("wrote {}", path.display());
    println!("--- first lines ---");
    let text = std::fs::read_to_string(&path).unwrap();
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!("-------------------");

    let reloaded = bif::read_file(&path).expect("parse what we wrote");
    assert_eq!(reloaded.num_vars(), net.num_vars());

    // Inference on original and reloaded networks must agree exactly.
    let xray = net.var_id("XRay").unwrap();
    let ev = Evidence::from_pairs([(xray, 0)]);
    let mut orig = SeqJt::new(Arc::new(Prepared::new(&net, &Default::default())));
    let mut back = SeqJt::new(Arc::new(Prepared::new(&reloaded, &Default::default())));
    let a = orig.query(&ev).unwrap();
    let b = back.query(&ev).unwrap();
    assert_eq!(a.max_abs_diff(&b), 0.0);
    println!(
        "round-trip OK: posteriors identical (P(evidence) = {:.6})",
        a.prob_evidence
    );
}
