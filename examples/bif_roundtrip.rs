//! BIF interchange: write a network to the bnlearn `.bif` format, read it
//! back, and verify inference agrees — the workflow for loading the
//! paper's real evaluation networks when you have their files.
//!
//! Run with: `cargo run --release --example bif_roundtrip [path/to/net.bif]`

use fastbn::bayesnet::{bif, datasets};
use fastbn::{Evidence, Solver};

fn main() {
    // With an argument: load that BIF file and report on it.
    if let Some(path) = std::env::args().nth(1) {
        let net = bif::read_file(&path).expect("parse BIF file");
        println!(
            "loaded {}: {} variables, {} edges, {} parameters",
            path,
            net.num_vars(),
            net.num_edges(),
            net.total_parameters()
        );
        let solver = Solver::new(&net);
        let post = solver.posteriors(&Evidence::empty()).expect("prior query");
        println!(
            "junction tree: {} cliques, width {}; P(no evidence) = {:.3}",
            solver.prepared().num_cliques(),
            solver.prepared().built.tree.width(),
            post.prob_evidence
        );
        return;
    }

    // Otherwise: round-trip the built-in Asia network through a temp file.
    let net = datasets::asia();
    let dir = std::env::temp_dir().join("fastbn_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("asia.bif");
    bif::write_file(&net, &path).expect("write BIF");
    println!("wrote {}", path.display());
    println!("--- first lines ---");
    let text = std::fs::read_to_string(&path).unwrap();
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!("-------------------");

    let reloaded = bif::read_file(&path).expect("parse what we wrote");
    assert_eq!(reloaded.num_vars(), net.num_vars());

    // Inference on original and reloaded networks must agree exactly.
    let xray = net.var_id("XRay").unwrap();
    let ev = Evidence::from_pairs([(xray, 0)]);
    let orig = Solver::new(&net);
    let back = Solver::new(&reloaded);
    let a = orig.posteriors(&ev).unwrap();
    let b = back.posteriors(&ev).unwrap();
    assert_eq!(a.max_abs_diff(&b), 0.0);
    println!(
        "round-trip OK: posteriors identical (P(evidence) = {:.6})",
        a.prob_evidence
    );
}
