//! Live session quickstart: keep one propagated state and apply evidence
//! *edits* — add, change, retract a finding, attach a likelihood —
//! re-propagating only what each edit can reach, instead of re-running a
//! full query per change.
//!
//! Run with: `cargo run --release --example live_session`

use std::sync::Arc;

use fastbn::bayesnet::datasets;
use fastbn::{Evidence, EvidenceDelta, Query, Solver};

fn main() {
    // The chest-clinic network again: a monitoring scenario where a
    // clinician enters findings one at a time and watches the suspected
    // diagnoses update after every entry.
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let tub = net.var_id("Tuberculosis").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let dysp = net.var_id("Dyspnea").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let visit = net.var_id("VisitAsia").unwrap();

    // The live session fully propagates once at construction; after
    // that, each edit re-runs collect only on the path from the edited
    // variable's home clique to the root, replaying saved messages for
    // every untouched subtree, and distribute happens lazily per read.
    let mut live = solver.live_session();
    println!("watching P(Tuberculosis=yes), P(LungCancer=yes) as findings arrive:\n");

    let show = |live: &mut fastbn::LiveSession, label: &str| {
        let p = live.posteriors_for(&[tub, lung]).unwrap();
        println!(
            "  {label:<28} tub={:.4}  lung={:.4}  P(e)={:.6}",
            p.marginal(tub)[0],
            p.marginal(lung)[0],
            p.prob_evidence
        );
    };
    show(&mut live, "(no findings)");

    // Findings arrive one at a time — each apply is one incremental
    // re-propagation, and the steady state allocates nothing.
    live.apply(EvidenceDelta::observe(dysp, 0)).unwrap();
    show(&mut live, "+ dyspnea");

    live.apply(EvidenceDelta::observe(visit, 0)).unwrap();
    show(&mut live, "+ visited Asia");

    // A soft finding: the radiologist is ~80/20 the x-ray is abnormal.
    live.apply(EvidenceDelta::likelihood(xray, vec![0.8, 0.2]))
        .unwrap();
    show(&mut live, "+ x-ray likely abnormal");

    // The film is re-read as clearly abnormal: replace the soft finding
    // with a hard one (the likelihood is retracted, the observation
    // added — two edits, two dirty-path re-propagations).
    live.apply(EvidenceDelta::retract_likelihood(xray)).unwrap();
    live.apply(EvidenceDelta::observe(xray, 0)).unwrap();
    show(&mut live, "x-ray confirmed abnormal");

    // The dyspnea entry was a data-entry mistake: retract it. Retraction
    // never divides evidence back out — the dirty clique is rebuilt from
    // its initial potentials, so the result is bit-identical to a world
    // where the finding was never entered.
    live.apply(EvidenceDelta::retract(dysp)).unwrap();
    show(&mut live, "- dyspnea (retracted)");

    // Every read is bitwise identical to a from-scratch query with the
    // session's current findings, for every engine and thread count.
    let scratch = solver
        .session()
        .run(
            &Query::new()
                .evidence(live.evidence().clone())
                .virtual_evidence(live.virtual_evidence()),
        )
        .unwrap()
        .into_posteriors()
        .unwrap();
    let incremental = live.posteriors().unwrap();
    assert_eq!(
        incremental.prob_evidence.to_bits(),
        scratch.prob_evidence.to_bits()
    );
    assert_eq!(incremental.max_abs_diff(&scratch), 0.0);
    println!("\nbitwise check vs from-scratch query: identical");

    // Monitoring loop shape: `marginal_into` refreshes one watched
    // variable into a caller buffer — with `apply`, the whole
    // edit-then-read cycle performs zero heap allocations.
    let mut buf = [0.0f64; 2];
    live.marginal_into(tub, &mut buf).unwrap();
    println!(
        "steady-state read into caller buffer: P(tub) = {:.4}",
        buf[0]
    );

    // For one-shot queries keep using `Session`/`Query`; a `LiveSession`
    // pays off when evidence evolves finding-by-finding. A plain session
    // re-solves this stream from scratch:
    let mut session = solver.session();
    let _ = session.posteriors(&Evidence::from_pairs([(visit, 0), (xray, 0)]));
}
