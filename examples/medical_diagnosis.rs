//! Medical-diagnosis scenario walk-through on the Asia network — the kind
//! of interpretable what-if reasoning the paper's introduction motivates.
//!
//! Run with: `cargo run --release --example medical_diagnosis`

use fastbn::bayesnet::datasets;
use fastbn::{Evidence, Query, Solver};

fn main() {
    let net = datasets::asia();
    let solver = Solver::new(&net);
    let mut session = solver.session();

    let var = |name: &str| net.var_id(name).expect("known variable");
    let lung = var("LungCancer");
    let tub = var("Tuberculosis");
    let bronc = var("Bronchitis");

    let scenarios: Vec<(&str, Evidence)> = vec![
        ("no findings (priors)", Evidence::empty()),
        ("dyspnea only", Evidence::from_pairs([(var("Dyspnea"), 0)])),
        (
            "dyspnea + smoker",
            Evidence::from_pairs([(var("Dyspnea"), 0), (var("Smoker"), 0)]),
        ),
        (
            "dyspnea + smoker + positive x-ray",
            Evidence::from_pairs([(var("Dyspnea"), 0), (var("Smoker"), 0), (var("XRay"), 0)]),
        ),
        (
            "... + visited Asia (explains away toward TB)",
            Evidence::from_pairs([
                (var("Dyspnea"), 0),
                (var("Smoker"), 0),
                (var("XRay"), 0),
                (var("VisitAsia"), 0),
            ]),
        ),
        (
            "positive x-ray but non-smoker, no Asia visit",
            Evidence::from_pairs([(var("XRay"), 0), (var("Smoker"), 1), (var("VisitAsia"), 1)]),
        ),
    ];

    println!(
        "{:<48} {:>10} {:>10} {:>10} {:>12}",
        "scenario", "P(lung)", "P(tub)", "P(bronch)", "P(evidence)"
    );
    for (label, evidence) in scenarios {
        // Only the three disease marginals are needed — ask for exactly
        // those.
        let post = session
            .run(&Query::new().evidence(evidence).targets([lung, tub, bronc]))
            .expect("consistent evidence")
            .into_posteriors()
            .unwrap();
        println!(
            "{:<48} {:>10.4} {:>10.4} {:>10.4} {:>12.6}",
            label,
            post.marginal(lung)[0],
            post.marginal(tub)[0],
            post.marginal(bronc)[0],
            post.prob_evidence
        );
    }

    // Impossible evidence is reported, not silently mangled.
    let impossible = Evidence::from_pairs([(tub, 0), (var("TbOrCa"), 1)]);
    match session.posteriors(&impossible) {
        Err(e) => println!("\nimpossible scenario correctly rejected: {e}"),
        Ok(_) => unreachable!("TB with negative TbOrCa has probability 0"),
    }

    // Beyond marginals: the single most probable full explanation of the
    // sickest scenario — same session, same tree, MPE mode.
    let findings = Query::new()
        .observe(var("Dyspnea"), 0)
        .observe(var("Smoker"), 0)
        .observe(var("XRay"), 0)
        .mpe();
    let mpe = session
        .run(&findings)
        .expect("possible evidence")
        .into_mpe()
        .unwrap();
    println!("\nmost probable explanation of dyspnea + smoker + positive x-ray:");
    for v in 0..net.num_vars() {
        let id = fastbn::VarId::from_index(v);
        println!(
            "  {:<14} = {}",
            net.var(id).name(),
            net.var(id).state_name(mpe.assignment[v])
        );
    }
    println!("  joint probability {:.6}", mpe.probability);
}
