//! Multi-model serving quickstart: several networks behind one
//! `Registry` + `RoutedServer`, sharing a single worker pool — with
//! hot reload and unload while traffic is in flight.
//!
//! Run with: `cargo run --release --example multi_model`

use std::sync::Arc;
use std::time::Duration;

use fastbn::bayesnet::datasets;
use fastbn::{CacheConfig, ModelConfig, Query, Registry, RoutedServer, SubmitErrorKind};

fn main() {
    // 1. One registry, one shared worker pool. Every model loaded here
    //    compiles onto the same team — N models contend for the
    //    machine's cores instead of spawning N pools.
    let threads = fastbn::parallel::available_threads().max(2);
    let registry = Arc::new(Registry::builder().threads(threads).capacity(8).build());
    registry
        .load("asia", &datasets::asia(), &ModelConfig::new())
        .unwrap();
    registry
        .load("sprinkler", &datasets::sprinkler(), &ModelConfig::new())
        .unwrap();
    // Per-model cache config: only this model memoizes repeat queries.
    registry
        .load(
            "cancer",
            &datasets::cancer(),
            &ModelConfig::new().cache(CacheConfig::default()),
        )
        .unwrap();
    println!(
        "registry: {:?} on a shared pool of {} threads\n",
        registry.model_ids(),
        threads
    );

    // 2. One routed front end. Requests carry the model id; windows
    //    group by model before dispatching to the batch path.
    let server = RoutedServer::builder(Arc::clone(&registry))
        .workers(2)
        .max_batch(8)
        .max_delay(Duration::from_micros(300))
        .build();

    // 3. Mixed concurrent traffic across all three models.
    let models = ["asia", "sprinkler", "cancer"];
    std::thread::scope(|scope| {
        for c in 0..6 {
            let server = &server;
            scope.spawn(move || {
                for i in 0..25 {
                    let model = models[(c + i) % models.len()];
                    let pending = server.submit(model, Query::new()).expect("resident");
                    let result = pending.wait().expect("empty query succeeds");
                    assert!(result.posteriors().unwrap().prob_evidence > 0.0);
                }
            });
        }
    });

    // 4. Hot operations while the server keeps running:
    //    unknown ids are a typed error with the query handed back …
    let err = server.submit("nope", Query::new()).unwrap_err();
    assert_eq!(err.kind(), SubmitErrorKind::UnknownModel);
    println!("routing miss: {err}");
    let _query_back = err.into_query();

    //    … unload drops only the registry's reference (in-flight work
    //    on the model would finish untouched) …
    let unloaded = registry.remove("cancer").expect("was resident");
    assert!(server.submit("cancer", Query::new()).is_err());
    assert!(unloaded.query(&Query::new()).is_ok(), "handle still works");

    //    … and reload swaps a fresh model in under the same id.
    registry
        .load("cancer", &datasets::cancer(), &ModelConfig::new())
        .unwrap();
    let reloaded = server.submit("cancer", Query::new()).expect("reloaded");
    assert!(reloaded.wait().is_ok());

    // 5. Per-model accounting rides along with the global counters.
    server.shutdown();
    let stats = server.stats();
    println!(
        "\nglobal: {} submitted, {} completed, {} batches, {} dedups",
        stats.submitted, stats.completed, stats.batches, stats.dedups
    );
    for row in server.model_stats() {
        println!(
            "  {:<10} {:>4} submitted  {:>4} completed  {:>3} dedups  {:>3} batches",
            row.model, row.submitted, row.completed, row.dedups, row.batches
        );
        assert_eq!(row.submitted, row.completed + row.cancelled);
    }
}
