//! Quickstart: build a network, compile a solver, run Fast-BNI queries
//! through a session, print posteriors.
//!
//! Run with: `cargo run --release --example quickstart`

use fastbn::bayesnet::datasets;
use fastbn::{CacheConfig, EngineKind, Query, Solver, VarId};

fn main() {
    // The classic "Asia" chest-clinic network (8 binary variables).
    let net = datasets::asia();
    println!(
        "network: {} ({} variables, {} edges)\n",
        net.name(),
        net.num_vars(),
        net.num_edges()
    );

    // One-time compilation: moralize, triangulate, build the junction
    // tree, select the center root, assign CPTs to cliques, precompute
    // the engine's task plans. The solver is immutable and Send + Sync.
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid) // Fast-BNI-par
        .threads(2)
        .build();
    let prepared = solver.prepared();
    println!(
        "junction tree: {} cliques, {} separators, width {}, {} layers\n",
        prepared.num_cliques(),
        prepared.num_separators(),
        prepared.built.tree.width(),
        prepared.built.schedule.num_layers(),
    );

    // A per-caller session; repeated queries reuse its scratch.
    let mut session = solver.session();

    // A patient with dyspnea who recently visited Asia.
    let query = Query::new()
        .observe(net.var_id("Dyspnea").unwrap(), 0)
        .observe(net.var_id("VisitAsia").unwrap(), 0);
    let posteriors = session.run(&query).unwrap().into_posteriors().unwrap();

    println!("P(evidence) = {:.6}", posteriors.prob_evidence);
    println!("posterior marginals given dyspnea + Asia visit:");
    for v in 0..net.num_vars() {
        let id = VarId::from_index(v);
        let var = net.var(id);
        let m = posteriors.marginal(id);
        let states: Vec<String> = var
            .states()
            .iter()
            .zip(m)
            .map(|(s, p)| format!("{s}={p:.4}"))
            .collect();
        println!("  {:<14} {}", var.name(), states.join("  "));
    }

    // Targeted query: pay only for the marginal you need.
    let lung = net.var_id("LungCancer").unwrap();
    let targeted = session
        .run(
            &Query::new()
                .observe(net.var_id("Dyspnea").unwrap(), 0)
                .targets([lung]),
        )
        .unwrap()
        .into_posteriors()
        .unwrap();
    println!(
        "\ntargeted: P(LungCancer = yes | dyspnea) = {:.4} (only this marginal was extracted)",
        targeted.marginal(lung)[0]
    );

    // Repeated traffic? Enable the query-result cache: posteriors are
    // memoized per canonicalized query (the model is immutable, so
    // entries never go stale), and a hit is bit-identical to
    // recomputing. Proportional likelihood vectors and last-wins
    // re-observations canonicalize to the same entry.
    let cached = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(2)
        .cache(CacheConfig::default())
        .build();
    let repeat = Query::new().observe(net.var_id("Dyspnea").unwrap(), 0);
    let cold = cached.query(&repeat).unwrap(); // computed
    let warm = cached.query(&repeat).unwrap(); // replayed from the cache
    assert_eq!(cold, warm);
    let stats = cached.cache_stats().unwrap();
    println!(
        "\ncache: {} hit / {} miss ({} entries, ~{} bytes)",
        stats.hits, stats.misses, stats.entries, stats.bytes
    );

    // Got many independent queries instead of one? Don't loop — group
    // them into a `QueryBatch` (see the batch_serving example), and for
    // live traffic from many clients put a `Server` in front (see the
    // serving example; pair it with `.cache(..)` so repeated requests
    // are answered from memory and identical in-flight requests dedup).
}
