//! Quickstart: build a network, run Fast-BNI inference, print posteriors.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use fastbn::bayesnet::datasets;
use fastbn::{Evidence, HybridJt, InferenceEngine, Prepared, VarId};

fn main() {
    // The classic "Asia" chest-clinic network (8 binary variables).
    let net = datasets::asia();
    println!(
        "network: {} ({} variables, {} edges)\n",
        net.name(),
        net.num_vars(),
        net.num_edges()
    );

    // One-time preparation: moralize, triangulate, build the junction
    // tree, select the center root, assign CPTs to cliques.
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    println!(
        "junction tree: {} cliques, {} separators, width {}, {} layers\n",
        prepared.num_cliques(),
        prepared.num_separators(),
        prepared.built.tree.width(),
        prepared.built.schedule.num_layers(),
    );

    // The Fast-BNI-par hybrid engine on 2 threads.
    let mut engine = HybridJt::new(prepared, 2);

    // A patient with dyspnea who recently visited Asia.
    let evidence = Evidence::from_pairs([
        (net.var_id("Dyspnea").unwrap(), 0),
        (net.var_id("VisitAsia").unwrap(), 0),
    ]);
    let posteriors = engine.query(&evidence).unwrap();

    println!("P(evidence) = {:.6}", posteriors.prob_evidence);
    println!("posterior marginals given dyspnea + Asia visit:");
    for v in 0..net.num_vars() {
        let id = VarId::from_index(v);
        let var = net.var(id);
        let m = posteriors.marginal(id);
        let states: Vec<String> = var
            .states()
            .iter()
            .zip(m)
            .map(|(s, p)| format!("{s}={p:.4}"))
            .collect();
        println!("  {:<14} {}", var.name(), states.join("  "));
    }
}
