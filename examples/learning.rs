//! Parameter learning + soft evidence: sample data from a ground-truth
//! network, refit its CPTs by maximum likelihood, and query the fitted
//! model with a noisy-sensor (virtual evidence) finding.
//!
//! Run with: `cargo run --release --example learning`

use fastbn::bayesnet::learn::{fit_parameters, mean_log_likelihood};
use fastbn::bayesnet::{datasets, sampler};
use fastbn::{Evidence, Query, Solver};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let truth = datasets::asia();
    println!(
        "ground truth: {} ({} variables)",
        truth.name(),
        truth.num_vars()
    );

    // 1. Sample complete observations from the true model.
    let mut rng = StdRng::seed_from_u64(2024);
    let train: Vec<Vec<usize>> = (0..20_000)
        .map(|_| sampler::forward_sample(&truth, &mut rng))
        .collect();
    let test: Vec<Vec<usize>> = (0..5_000)
        .map(|_| sampler::forward_sample(&truth, &mut rng))
        .collect();

    // 2. Refit all CPTs on the same structure (Laplace smoothing 1.0).
    let fitted = fit_parameters(&truth, &train, 1.0).expect("valid data");
    println!(
        "mean test log-likelihood: true model {:.4}, fitted model {:.4}",
        mean_log_likelihood(&truth, &test),
        mean_log_likelihood(&fitted, &test)
    );

    // 3. Query the fitted model with a noisy sensor: an x-ray whose
    //    positive report is only 80% reliable.
    let solver = Solver::new(&fitted);
    let mut session = solver.session();
    let xray = fitted.var_id("XRay").unwrap();
    let lung = fitted.var_id("LungCancer").unwrap();
    let tub = fitted.var_id("Tuberculosis").unwrap();

    let hard = session
        .posteriors(&Evidence::from_pairs([(xray, 0)]))
        .expect("possible evidence");
    let soft = session
        .run(&Query::new().likelihood(xray, vec![0.8, 0.2]))
        .expect("possible evidence")
        .into_posteriors()
        .unwrap();
    let prior = session.posteriors(&Evidence::empty()).unwrap();

    println!("\nfitted-model posteriors for LungCancer / Tuberculosis (state = yes):");
    println!(
        "  prior:                 {:.4} / {:.4}",
        prior.marginal(lung)[0],
        prior.marginal(tub)[0]
    );
    println!(
        "  hard positive x-ray:   {:.4} / {:.4}",
        hard.marginal(lung)[0],
        hard.marginal(tub)[0]
    );
    println!(
        "  80%-reliable positive: {:.4} / {:.4}   (between prior and hard, as it must be)",
        soft.marginal(lung)[0],
        soft.marginal(tub)[0]
    );

    assert!(soft.marginal(lung)[0] > prior.marginal(lung)[0]);
    assert!(soft.marginal(lung)[0] < hard.marginal(lung)[0]);
}
