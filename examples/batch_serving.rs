//! Batched execution: run a mixed set of independent queries as one
//! `QueryBatch` and compare against the naive one-at-a-time loop.
//!
//! This shows the *offline* batch path — the caller assembles the batch
//! by hand. For live traffic (requests arriving one at a time from many
//! clients), don't hand-roll this: the `serving` example shows the
//! recommended front end, a `fastbn::Server` that coalesces queued
//! requests into these same batches with a deadline.
//!
//! Run with: `cargo run --release --example batch_serving`

use std::time::Instant;

use fastbn::bayesnet::{datasets, sampler};
use fastbn::{EngineKind, Evidence, Query, QueryBatch, Solver};

fn main() {
    let net = datasets::asia();
    let threads = fastbn::parallel::available_threads().max(2);
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid) // Fast-BNI-par
        .threads(threads)
        .build();
    println!(
        "solver: {} with {threads} worker threads on {} ({} variables)\n",
        solver.engine_name(),
        net.name(),
        net.num_vars()
    );

    // A mixed batch, like the ones the `Server` front end assembles from
    // queued requests: sampled-evidence marginals, a targeted query, a
    // virtual-evidence query, an MPE query — and one bad request, whose
    // typed error occupies its own slot without failing the batch.
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let mut batch: QueryBatch = sampler::generate_cases(&net, 60, 0.25, 7)
        .into_iter()
        .map(|case| Query::new().evidence(case.evidence))
        .collect();
    batch.push(Query::new().observe(dysp, 0).targets([lung]));
    batch.push(Query::new().likelihood(xray, vec![0.8, 0.2]));
    batch.push(Query::new().observe(dysp, 0).mpe());
    batch.push(Query::new().likelihood(xray, vec![0.0, 0.0])); // malformed

    // Naive loop: one query at a time through a session.
    let mut session = solver.session();
    let _ = session.posteriors(&Evidence::empty()); // warm-up
    let start = Instant::now();
    let sequential: Vec<_> = batch.iter().map(|q| session.run(q)).collect();
    let loop_time = start.elapsed();

    // Batched: same queries, one call; wide batches spread across the
    // engine's worker pool with pooled scratch.
    let start = Instant::now();
    let batched = session.run_batch(&batch);
    let batch_time = start.elapsed();

    let ok = batched.iter().filter(|r| r.is_ok()).count();
    let err = batched.len() - ok;
    println!("batch of {}: {ok} ok, {err} failed slots", batch.len());
    for (i, result) in batched.iter().enumerate() {
        if let Err(e) = result {
            println!("  slot {i}: {e}");
        }
    }
    assert_eq!(sequential, batched, "batch must match the loop exactly");

    println!(
        "\nnaive loop: {:>8.3} ms\nrun_batch:  {:>8.3} ms  ({:.2}x)",
        loop_time.as_secs_f64() * 1e3,
        batch_time.as_secs_f64() * 1e3,
        loop_time.as_secs_f64() / batch_time.as_secs_f64()
    );
}
