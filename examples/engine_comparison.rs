//! Runs all six engines on the same workload, verifying they agree
//! bit-for-bit and reporting their speeds — Table 1 in miniature.
//!
//! The one-query-at-a-time loop below is deliberate: it reproduces the
//! paper's repeated-inference timing methodology. When you just want N
//! independent queries answered fast, use `Session::run_batch` (see the
//! batch_serving example) or a `Server` (see the serving example)
//! instead of a loop like this.
//!
//! Run with: `cargo run --release --example engine_comparison`

use std::sync::Arc;
use std::time::Instant;

use fastbn::bayesnet::generators::{windowed_dag, ArityDist, CptStyle, WindowedDagSpec};
use fastbn::bayesnet::sampler::generate_cases;
use fastbn::{EngineKind, Prepared, Solver};

fn main() {
    // A mid-sized synthetic network (Pigs-like: uniform ternary).
    let net = windowed_dag(&WindowedDagSpec {
        name: "comparison-net".into(),
        nodes: 300,
        target_arcs: 400,
        max_parents: 2,
        window: 6,
        arity: ArityDist::Fixed(3),
        cpt: CptStyle { alpha: 0.7 },
        seed: 7,
    });
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    println!(
        "network: {} vars, {} edges -> {} cliques, width {}, {} layers",
        net.num_vars(),
        net.num_edges(),
        prepared.num_cliques(),
        prepared.built.tree.width(),
        prepared.built.schedule.num_layers()
    );

    let cases: Vec<_> = generate_cases(&net, 40, 0.2, 123)
        .into_iter()
        .map(|c| c.evidence)
        .collect();
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    println!("{} cases, 20% evidence, {} threads\n", cases.len(), threads);

    let mut baseline: Option<Vec<f64>> = None;
    println!("{:<14} {:>10} {:>12}", "engine", "total (s)", "vs Seq");
    let mut seq_time = None;
    for kind in EngineKind::all() {
        let t = if matches!(kind, EngineKind::Reference | EngineKind::Seq) {
            1
        } else {
            threads
        };
        // All six solvers share the one Prepared; only the engine differs.
        let solver = Solver::from_prepared(prepared.clone())
            .engine(kind)
            .threads(t)
            .build();
        let mut session = solver.session();
        let start = Instant::now();
        let mut checksums = Vec::with_capacity(cases.len());
        for ev in &cases {
            let post = session.posteriors(ev).expect("valid evidence");
            checksums.push(post.prob_evidence);
        }
        let elapsed = start.elapsed().as_secs_f64();
        // All engines must produce identical evidence probabilities.
        match &baseline {
            None => baseline = Some(checksums),
            Some(expected) => {
                assert_eq!(expected, &checksums, "{kind} disagrees with the baseline")
            }
        }
        if matches!(kind, EngineKind::Seq) {
            seq_time = Some(elapsed);
        }
        let vs_seq = seq_time.map_or(String::from("-"), |s| format!("{:.2}x", s / elapsed));
        println!("{:<14} {:>10.3} {:>12}", kind.to_string(), elapsed, vs_seq);
    }
    println!("\nall engines agreed bit-for-bit on P(evidence) for every case");
}
