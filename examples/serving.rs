//! End-to-end serving: concurrent clients submit single queries to a
//! `Server`, which coalesces them into deadline-bounded micro-batches
//! behind a bounded queue — the serving shape that `batch_serving.rs`
//! hand-rolls with an explicit `QueryBatch`.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use std::time::{Duration, Instant};

use fastbn::bayesnet::{datasets, sampler};
use fastbn::{EngineKind, Query, Server, Solver, SubmitErrorKind};

fn main() {
    let net = datasets::asia();
    let threads = fastbn::parallel::available_threads().max(2);
    let solver = Arc::new(
        Solver::builder(&net)
            .engine(EngineKind::Hybrid) // Fast-BNI-par
            .threads(threads)
            .build(),
    );

    // The serving front end: 2 workers, micro-batches of up to
    // `threads` requests (the width where the outer-parallel batch path
    // kicks in), each window held open at most 300µs.
    let server = Server::builder(Arc::clone(&solver))
        .workers(2)
        .max_batch(threads)
        .max_delay(Duration::from_micros(300))
        .build();
    println!(
        "serving {} ({} variables) with {} workers, micro-batch {} × {}µs window, queue {}\n",
        net.name(),
        net.num_vars(),
        server.workers(),
        server.max_batch(),
        server.max_delay().as_micros(),
        server.queue_capacity(),
    );

    // Concurrent clients, each firing its own little request stream —
    // the traffic pattern a web tier would generate. Every client keeps
    // its per-request latencies.
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let clients = 8;
    let per_client = 25;
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = &server;
                let cases = sampler::generate_cases(&net, per_client, 0.25, c as u64);
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_client);
                    for (i, case) in cases.into_iter().enumerate() {
                        // A mixed stream: marginals, one targeted query,
                        // one MPE, like batch_serving's hand-built batch.
                        let query = match i % 8 {
                            0 => Query::new().observe(dysp, 0).targets([lung]),
                            1 => Query::new().observe(dysp, 0).mpe(),
                            2 => Query::new().likelihood(xray, vec![0.8, 0.2]),
                            _ => Query::new().evidence(case.evidence),
                        };
                        let begin = Instant::now();
                        let pending = server.submit(query).expect("server accepting");
                        pending.wait().expect("well-formed request");
                        latencies.push(begin.elapsed());
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall = start.elapsed();

    let count = latencies.len();
    let summary = fastbn_bench::LatencySummary::from_samples(latencies);
    let stats = server.stats();
    println!(
        "{count} requests from {clients} clients in {:.1} ms  ({:.0} req/s)",
        wall.as_secs_f64() * 1e3,
        count as f64 / wall.as_secs_f64(),
    );
    println!(
        "latency p50 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        summary.p50.as_secs_f64() * 1e3,
        summary.p99.as_secs_f64() * 1e3,
        summary.max.as_secs_f64() * 1e3,
    );
    println!(
        "micro-batching: {} requests coalesced into {} batches ({:.1} per dispatch, \
         {} answered by in-window dedup)\n",
        stats.dequeued,
        stats.batches,
        stats.dequeued as f64 / stats.batches.max(1) as f64,
        stats.dedups,
    );

    // Backpressure is part of the contract: a fail-fast submitter sees
    // QueueFull (and gets its query back) instead of unbounded buffering.
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut pending = Vec::new();
    for _ in 0..4 * server.queue_capacity() {
        match server.try_submit(Query::new()) {
            Ok(p) => {
                accepted += 1;
                pending.push(p);
            }
            Err(e) if e.kind() == SubmitErrorKind::QueueFull => rejected += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    for p in pending {
        let _ = p.wait();
    }
    println!("fail-fast burst: {accepted} accepted, {rejected} rejected by the bounded queue");

    // Graceful shutdown: accepted work is drained, then intake closes.
    server.shutdown();
    assert!(server.submit(Query::new()).is_err(), "intake closed");
    println!("shut down cleanly: {:?}", server.stats());
}
