//! Micro-benchmarks of the paper's three dominant potential-table
//! operations — marginalization, extension, reduction — sequential vs
//! parallel, across table sizes (the intra-clique §2 claim that these ops
//! dominate and scale with table size).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bayesnet::VarId;
use fastbn_parallel::{Schedule, ThreadPool};
use fastbn_potential::{ops, ops_par, Domain, PotentialTable};

/// A domain of `k` ternary variables (size 3^k).
fn ternary_domain(k: usize) -> Arc<Domain> {
    Arc::new(Domain::new((0..k as u32).map(|v| (VarId(v), 3)).collect()))
}

fn primitives(c: &mut Criterion) {
    let pool = ThreadPool::new(fastbn_parallel::available_threads());
    let sched = Schedule::Static;
    let mut group = c.benchmark_group("primitives");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for k in [8usize, 10, 12] {
        let sup = ternary_domain(k);
        let sub = Arc::new(Domain::new(
            (0..k as u32 / 2).map(|v| (VarId(v), 3)).collect(),
        ));
        let src = PotentialTable::from_values(
            sup.clone(),
            (0..sup.size()).map(|i| 1.0 + (i % 7) as f64).collect(),
        );
        let msg = PotentialTable::from_values(
            sub.clone(),
            (0..sub.size()).map(|i| 0.5 + (i % 3) as f64).collect(),
        );
        let label = format!("3^{k}");

        let mut out = PotentialTable::zeros(sub.clone());
        group.bench_function(BenchmarkId::new("marginalize/seq", &label), |b| {
            b.iter(|| ops::marginalize_into(&src, &mut out))
        });
        group.bench_function(BenchmarkId::new("marginalize/par", &label), |b| {
            b.iter(|| ops_par::marginalize_into_par(&pool, sched, &src, &mut out))
        });

        let mut clique = src.clone();
        group.bench_function(BenchmarkId::new("extend/seq", &label), |b| {
            b.iter(|| ops::extend_multiply(&mut clique, &msg))
        });
        group.bench_function(BenchmarkId::new("extend/par", &label), |b| {
            b.iter(|| ops_par::extend_multiply_par(&pool, sched, &mut clique, &msg))
        });

        let mut red = src.clone();
        group.bench_function(BenchmarkId::new("reduce/seq", &label), |b| {
            b.iter(|| ops::reduce_evidence(&mut red, VarId(k as u32 / 2), 1))
        });
        group.bench_function(BenchmarkId::new("reduce/par", &label), |b| {
            b.iter(|| ops_par::reduce_evidence_par(&pool, sched, &mut red, VarId(k as u32 / 2), 1))
        });
    }
    group.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
