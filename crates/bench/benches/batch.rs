//! Batched vs naive serving — the throughput case for `run_batch`.
//!
//! One compiled solver, one fixed case set: the naive loop issues the
//! cases one `posteriors` call at a time (per-query inner parallelism
//! only), the batch path issues them as a single `QueryBatch` (outer
//! parallelism across queries, pooled scratch per chunk). The interesting
//! regime is small networks at high thread counts, where per-query
//! regions are too short to amortize their own fork-join overhead — the
//! workload the ROADMAP's million-user north star actually serves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bench::measure::{batch_of, prepare, solver_for};
use fastbn_bench::workloads::workload_by_name;
use fastbn_inference::EngineKind;

fn bench_batch_vs_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    for name in ["hailfinder", "pathfinder"] {
        let Some(w) = workload_by_name(name) else {
            continue;
        };
        let net = w.build();
        let prepared = prepare(&net);
        let cases = w.cases(&net, 32);
        let batch = batch_of(&cases);
        for threads in [4usize, 8] {
            let solver = solver_for(EngineKind::Hybrid, prepared.clone(), threads);
            group.bench_function(BenchmarkId::new(format!("{name}-loop"), threads), |b| {
                let mut session = solver.session();
                b.iter(|| {
                    for ev in &cases {
                        criterion::black_box(session.posteriors(ev).unwrap());
                    }
                });
            });
            group.bench_function(BenchmarkId::new(format!("{name}-batch"), threads), |b| {
                let mut session = solver.session();
                b.iter(|| criterion::black_box(session.run_batch(&batch)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_vs_loop);
criterion_main!(benches);
