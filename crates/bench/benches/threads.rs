//! Thread-scaling bench (the paper's in-text t = 1..32 sweep): every
//! parallel engine on the Pigs analogue across thread counts, including
//! oversubscription (the paper's t = 32 exceeded nothing on 52 cores, but
//! on this container anything above the core count oversubscribes — the
//! relative shape per engine is what matters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bench::measure::prepare;
use fastbn_bench::measure::solver_for;
use fastbn_bench::workloads::workload_by_name;
use fastbn_inference::EngineKind;
use std::time::Duration;

fn threads(c: &mut Criterion) {
    let w = workload_by_name("pigs").expect("pigs workload");
    let net = w.build();
    let prepared = prepare(&net);
    let cases = w.cases(&net, 4);
    let mut group = c.benchmark_group("threads/pigs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for kind in EngineKind::parallel() {
        for t in [1usize, 2, 4, 8] {
            let solver = solver_for(kind, prepared.clone(), t);
            let mut session = solver.session();
            let mut next = 0usize;
            group.bench_function(BenchmarkId::new(kind.name(), format!("t{t}")), |b| {
                b.iter(|| {
                    let post = session.posteriors(&cases[next % cases.len()]).unwrap();
                    next += 1;
                    post.prob_evidence
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, threads);
criterion_main!(benches);
