//! Structure-adaptivity bench (the paper's in-text claim): inter-clique
//! parallelism is weak on trees with few (large) cliques, intra-clique
//! parallelism is weak on trees with many small cliques, and the hybrid
//! engine adapts to both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bayesnet::sampler::generate_cases;
use fastbn_bench::measure::prepare;
use fastbn_bench::measure::solver_for;
use fastbn_bench::workloads::adaptivity_workloads;
use fastbn_inference::EngineKind;
use std::time::Duration;

fn adaptivity(c: &mut Criterion) {
    let threads = fastbn_parallel::available_threads();
    let mut group = c.benchmark_group("adaptivity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for (name, net) in adaptivity_workloads() {
        let prepared = prepare(&net);
        let cases: Vec<_> = generate_cases(&net, 4, 0.2, 99)
            .into_iter()
            .map(|c| c.evidence)
            .collect();
        for kind in EngineKind::parallel() {
            let solver = solver_for(kind, prepared.clone(), threads);
            let mut session = solver.session();
            let mut next = 0usize;
            group.bench_function(BenchmarkId::new(kind.name(), name), |b| {
                b.iter(|| {
                    let post = session.posteriors(&cases[next % cases.len()]).unwrap();
                    next += 1;
                    post.prob_evidence
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, adaptivity);
criterion_main!(benches);
