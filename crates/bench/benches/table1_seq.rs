//! Table 1, sequential half: UnBBayes-analogue (`Reference`) vs
//! Fast-BNI-seq on the six network analogues. One iteration = one full
//! inference query (reset + evidence + propagation + all marginals).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bench::measure::prepare;
use fastbn_bench::measure::solver_for;
use fastbn_bench::workloads::all_workloads;
use fastbn_inference::EngineKind;
use std::time::Duration;

fn table1_seq(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_seq");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for w in all_workloads() {
        let net = w.build();
        let prepared = prepare(&net);
        let cases = w.cases(&net, 4);
        for kind in [EngineKind::Reference, EngineKind::Seq] {
            let solver = solver_for(kind, prepared.clone(), 1);
            let mut session = solver.session();
            let mut next = 0usize;
            group.bench_function(BenchmarkId::new(kind.name(), w.name), |b| {
                b.iter(|| {
                    let post = session.posteriors(&cases[next % cases.len()]).unwrap();
                    next += 1;
                    post.prob_evidence
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, table1_seq);
criterion_main!(benches);
