//! Ablation of the paper's flattening: the hybrid engine (flattened
//! per-layer tasks; 2 regions/layer) against the two unflattened
//! decompositions it replaces — coarse-only (`Direct`) and fine-only
//! (`Primitive`, 3 regions/message) — on the Pigs analogue, whose many
//! mid-sized cliques are the structure flattening helps most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bench::measure::prepare;
use fastbn_bench::measure::solver_for;
use fastbn_bench::workloads::workload_by_name;
use fastbn_inference::EngineKind;
use std::time::Duration;

fn ablation_flatten(c: &mut Criterion) {
    let w = workload_by_name("pigs").expect("pigs workload");
    let net = w.build();
    let prepared = prepare(&net);
    let cases = w.cases(&net, 4);
    let threads = fastbn_parallel::available_threads();
    let mut group = c.benchmark_group("ablation_flatten/pigs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for (label, kind) in [
        ("flattened-hybrid", EngineKind::Hybrid),
        ("inter-only", EngineKind::Direct),
        ("intra-only", EngineKind::Primitive),
    ] {
        let solver = solver_for(kind, prepared.clone(), threads);
        let mut session = solver.session();
        let mut next = 0usize;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let post = session.posteriors(&cases[next % cases.len()]).unwrap();
                next += 1;
                post.prob_evidence
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_flatten);
criterion_main!(benches);
