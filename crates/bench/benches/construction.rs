//! Junction-tree construction cost: moralization + triangulation + MST +
//! rooting + layering for every benchmark network, and the three
//! elimination heuristics head-to-head on one network. Construction is
//! query-independent (paid once), but its output quality drives every
//! propagation — this bench pairs with the `structure` binary's quality
//! stats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bench::workloads::all_workloads;
use fastbn_jtree::{build_junction_tree, EliminationHeuristic, JtreeOptions, RootStrategy};
use std::time::Duration;

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for w in all_workloads() {
        let net = w.build();
        group.bench_function(BenchmarkId::new("min-fill", w.name), |b| {
            b.iter(|| {
                build_junction_tree(&net, &JtreeOptions::default())
                    .tree
                    .num_cliques()
            })
        });
    }
    // Heuristic comparison on one mid-sized network.
    let net = all_workloads()
        .into_iter()
        .find(|w| w.name == "pathfinder")
        .unwrap()
        .build();
    for (label, heuristic) in [
        ("min-fill", EliminationHeuristic::MinFill),
        ("min-degree", EliminationHeuristic::MinDegree),
        ("min-weight", EliminationHeuristic::MinWeight),
    ] {
        group.bench_function(BenchmarkId::new("heuristics/pathfinder", label), |b| {
            b.iter(|| {
                build_junction_tree(
                    &net,
                    &JtreeOptions {
                        heuristic,
                        root: RootStrategy::Center,
                    },
                )
                .tree
                .num_cliques()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
