//! Parallelization-overhead bench (the paper's in-text small-network
//! observation): on small BNs like Hailfinder, parallel-region overhead
//! is a large fraction of the short execution time, so parallel engines
//! gain little (or lose) versus their own t = 1 runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bench::measure::prepare;
use fastbn_bench::measure::solver_for;
use fastbn_bench::workloads::workload_by_name;
use fastbn_inference::EngineKind;
use std::time::Duration;

fn overhead(c: &mut Criterion) {
    let threads = fastbn_parallel::available_threads();
    let mut group = c.benchmark_group("overhead/hailfinder");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let w = workload_by_name("hailfinder").expect("hailfinder workload");
    let net = w.build();
    let prepared = prepare(&net);
    let cases = w.cases(&net, 8);
    // Sequential reference point.
    {
        let solver = solver_for(EngineKind::Seq, prepared.clone(), 1);
        let mut session = solver.session();
        let mut next = 0usize;
        group.bench_function(BenchmarkId::new("Fast-BNI-seq", "t1"), |b| {
            b.iter(|| {
                let post = session.posteriors(&cases[next % cases.len()]).unwrap();
                next += 1;
                post.prob_evidence
            })
        });
    }
    for kind in EngineKind::parallel() {
        for t in [1usize, threads] {
            let solver = solver_for(kind, prepared.clone(), t);
            let mut session = solver.session();
            let mut next = 0usize;
            group.bench_function(BenchmarkId::new(kind.name(), format!("t{t}")), |b| {
                b.iter(|| {
                    let post = session.posteriors(&cases[next % cases.len()]).unwrap();
                    next += 1;
                    post.prob_evidence
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, overhead);
criterion_main!(benches);
