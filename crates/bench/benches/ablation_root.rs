//! Ablation of the paper's root-selection strategy: Fast-BNI-par on the
//! Munin2 analogue with the tree rooted at the center (paper), at the
//! first clique (naive), and at a diameter endpoint (worst case). Center
//! rooting halves the layer count and thus the number of parallel-region
//! invocations per pass.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbn_bench::workloads::workload_by_name;
use fastbn_inference::{EngineKind, Prepared, Solver};
use fastbn_jtree::{EliminationHeuristic, JtreeOptions, RootStrategy};

fn ablation_root(c: &mut Criterion) {
    let w = workload_by_name("munin2").expect("munin2 workload");
    let net = w.build();
    let threads = fastbn_parallel::available_threads();
    let mut group = c.benchmark_group("ablation_root/munin2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for (label, strategy) in [
        ("center", RootStrategy::Center),
        ("first", RootStrategy::First),
        ("worst", RootStrategy::Worst),
    ] {
        let prepared = Arc::new(Prepared::new(
            &net,
            &JtreeOptions {
                heuristic: EliminationHeuristic::MinFill,
                root: strategy,
            },
        ));
        let layers = prepared.built.schedule.num_layers();
        let cases = w.cases(&net, 4);
        let solver = Solver::from_prepared(prepared)
            .engine(EngineKind::Hybrid)
            .threads(threads)
            .build();
        let mut session = solver.session();
        let mut next = 0usize;
        group.bench_function(
            BenchmarkId::new("hybrid", format!("{label}-{layers}layers")),
            |b| {
                b.iter(|| {
                    let post = session.posteriors(&cases[next % cases.len()]).unwrap();
                    next += 1;
                    post.prob_evidence
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_root);
criterion_main!(benches);
