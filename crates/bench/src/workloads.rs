//! The six paper-network analogues plus the structure-adaptivity stress
//! networks.
//!
//! Node/arc counts and arity ranges follow the published statistics of the
//! bnlearn repository networks; the `window` parameter bounds moral-graph
//! bandwidth so the triangulated width (and thus the clique-table sizes)
//! stays in the range a 2-core container can propagate in milliseconds —
//! preserving the *relative* clique-size distribution that drives the
//! paper's engine comparisons, not the absolute seconds (DESIGN.md §1).

use fastbn_bayesnet::generators::{windowed_dag, ArityDist, CptStyle, WindowedDagSpec};
use fastbn_bayesnet::sampler::generate_cases;
use fastbn_bayesnet::{BayesianNetwork, Evidence};

/// The paper's Table-1 row for one network (seconds and speedups), kept
/// verbatim for paper-vs-measured reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// UnBBayes sequential time (s).
    pub unbbayes: f64,
    /// Fast-BNI-seq time (s).
    pub seq: f64,
    /// Sequential speedup (UnBBayes / Fast-BNI-seq).
    pub seq_speedup: f64,
    /// Direct (Kozlov & Singh) best parallel time (s).
    pub direct: f64,
    /// Primitive (Xia & Prasanna) best parallel time (s).
    pub primitive: f64,
    /// Element (Zheng) best parallel time (s).
    pub element: f64,
    /// Fast-BNI-par best parallel time (s).
    pub hybrid: f64,
    /// Speedup of Fast-BNI-par over Direct.
    pub dir_speedup: f64,
    /// Speedup over Primitive.
    pub prim_speedup: f64,
    /// Speedup over Element.
    pub elem_speedup: f64,
}

/// One benchmark network: its generator spec plus the paper's numbers.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper network name.
    pub name: &'static str,
    /// Whether the paper classifies it as large-scale.
    pub large_scale: bool,
    /// Published Table-1 row.
    pub paper: PaperRow,
    /// Analogue generator spec.
    pub spec: WindowedDagSpec,
}

impl Workload {
    /// Generates the analogue network (deterministic per spec).
    pub fn build(&self) -> BayesianNetwork {
        windowed_dag(&self.spec)
    }

    /// Generates `n` seeded test cases with the paper's 20% evidence rate.
    pub fn cases(&self, net: &BayesianNetwork, n: usize) -> Vec<Evidence> {
        generate_cases(net, n, 0.2, self.spec.seed ^ 0x5eed)
            .into_iter()
            .map(|c| c.evidence)
            .collect()
    }
}

/// The paper's six evaluation networks, Table-1 order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "hailfinder",
            large_scale: false,
            paper: PaperRow {
                unbbayes: 28.3,
                seq: 4.0,
                seq_speedup: 7.1,
                direct: 3.0,
                primitive: 3.2,
                element: 4.0,
                hybrid: 2.5,
                dir_speedup: 1.2,
                prim_speedup: 1.3,
                elem_speedup: 1.6,
            },
            spec: WindowedDagSpec {
                name: "hailfinder-analogue".into(),
                nodes: 56,
                target_arcs: 66,
                max_parents: 4,
                window: 5,
                arity: ArityDist::Weighted(vec![
                    (2, 0.40),
                    (3, 0.25),
                    (4, 0.20),
                    (5, 0.07),
                    (11, 0.08),
                ]),
                cpt: CptStyle { alpha: 0.6 },
                seed: 0x0001,
            },
        },
        Workload {
            name: "pathfinder",
            large_scale: false,
            paper: PaperRow {
                unbbayes: 319.2,
                seq: 68.9,
                seq_speedup: 4.6,
                direct: 40.5,
                primitive: 23.6,
                element: 27.8,
                hybrid: 11.1,
                dir_speedup: 3.6,
                prim_speedup: 2.1,
                elem_speedup: 2.5,
            },
            spec: WindowedDagSpec {
                name: "pathfinder-analogue".into(),
                nodes: 109,
                target_arcs: 195,
                max_parents: 5,
                window: 6,
                arity: ArityDist::Weighted(vec![
                    (2, 0.50),
                    (3, 0.22),
                    (4, 0.18),
                    (8, 0.06),
                    (32, 0.02),
                    (63, 0.02),
                ]),
                cpt: CptStyle { alpha: 0.6 },
                seed: 0x0002,
            },
        },
        Workload {
            name: "diabetes",
            large_scale: true,
            paper: PaperRow {
                unbbayes: 90961.0,
                seq: 6944.0,
                seq_speedup: 13.1,
                direct: 3016.0,
                primitive: 2311.0,
                element: 3316.0,
                hybrid: 558.6,
                dir_speedup: 5.4,
                prim_speedup: 4.1,
                elem_speedup: 5.9,
            },
            spec: WindowedDagSpec {
                name: "diabetes-analogue".into(),
                nodes: 413,
                target_arcs: 602,
                max_parents: 2,
                window: 3,
                arity: ArityDist::Weighted(vec![
                    (3, 0.10),
                    (5, 0.15),
                    (8, 0.20),
                    (11, 0.25),
                    (13, 0.15),
                    (17, 0.10),
                    (21, 0.05),
                ]),
                cpt: CptStyle { alpha: 0.6 },
                seed: 0x0003,
            },
        },
        Workload {
            name: "pigs",
            large_scale: true,
            paper: PaperRow {
                unbbayes: 43714.0,
                seq: 3729.0,
                seq_speedup: 11.7,
                direct: 3353.0,
                primitive: 1068.0,
                element: 2380.0,
                hybrid: 221.7,
                dir_speedup: 15.1,
                prim_speedup: 4.8,
                elem_speedup: 10.7,
            },
            spec: WindowedDagSpec {
                name: "pigs-analogue".into(),
                nodes: 441,
                target_arcs: 592,
                max_parents: 2,
                window: 7,
                arity: ArityDist::Fixed(3),
                cpt: CptStyle { alpha: 0.5 },
                seed: 0x0004,
            },
        },
        Workload {
            name: "munin2",
            large_scale: true,
            paper: PaperRow {
                unbbayes: 3054.0,
                seq: 2643.0,
                seq_speedup: 1.2,
                direct: 1951.0,
                primitive: 934.7,
                element: 1638.0,
                hybrid: 241.7,
                dir_speedup: 8.1,
                prim_speedup: 3.9,
                elem_speedup: 6.8,
            },
            spec: WindowedDagSpec {
                name: "munin2-analogue".into(),
                nodes: 1003,
                target_arcs: 1244,
                max_parents: 3,
                window: 4,
                arity: ArityDist::Weighted(vec![
                    (2, 0.20),
                    (3, 0.20),
                    (4, 0.15),
                    (5, 0.15),
                    (7, 0.15),
                    (10, 0.10),
                    (21, 0.05),
                ]),
                cpt: CptStyle { alpha: 0.6 },
                seed: 0x0005,
            },
        },
        Workload {
            name: "munin4",
            large_scale: true,
            paper: PaperRow {
                unbbayes: 258194.0,
                seq: 34198.0,
                seq_speedup: 7.6,
                direct: 20364.0,
                primitive: 10348.0,
                element: 21398.0,
                hybrid: 3021.0,
                dir_speedup: 6.7,
                prim_speedup: 3.4,
                elem_speedup: 7.1,
            },
            spec: WindowedDagSpec {
                name: "munin4-analogue".into(),
                nodes: 1041,
                target_arcs: 1397,
                max_parents: 4,
                window: 5,
                arity: ArityDist::Weighted(vec![
                    (2, 0.20),
                    (3, 0.20),
                    (4, 0.15),
                    (5, 0.15),
                    (7, 0.15),
                    (10, 0.10),
                    (21, 0.05),
                ]),
                cpt: CptStyle { alpha: 0.6 },
                seed: 0x0006,
            },
        },
    ]
}

/// Looks up a workload by paper name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

/// The two structural extremes of the paper's adaptivity discussion:
///
/// * `few-large-cliques` — a short, fat tree where inter-clique
///   parallelism starves (few messages per layer) but each message is
///   heavy: the Direct engine's bad case;
/// * `many-small-cliques` — a bushy tree of tiny cliques where per-region
///   overhead dominates fine-grained engines: Primitive/Element's bad
///   case.
pub fn adaptivity_workloads() -> Vec<(&'static str, BayesianNetwork)> {
    let few_large = windowed_dag(&WindowedDagSpec {
        name: "few-large-cliques".into(),
        nodes: 24,
        target_arcs: 60,
        max_parents: 4,
        window: 8,
        arity: ArityDist::Fixed(5),
        cpt: CptStyle { alpha: 1.0 },
        seed: 0x00A1,
    });
    let many_small = windowed_dag(&WindowedDagSpec {
        name: "many-small-cliques".into(),
        nodes: 1200,
        target_arcs: 1199,
        max_parents: 1,
        window: 40,
        arity: ArityDist::Fixed(2),
        cpt: CptStyle { alpha: 1.0 },
        seed: 0x00A2,
    });
    vec![
        ("few-large-cliques", few_large),
        ("many-small-cliques", many_small),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_stats_match_published_counts() {
        for w in all_workloads() {
            let net = w.build();
            assert_eq!(net.num_vars(), w.spec.nodes, "{}", w.name);
            assert_eq!(net.num_edges(), w.spec.target_arcs, "{}", w.name);
            assert!(net.max_in_degree() <= w.spec.max_parents, "{}", w.name);
        }
    }

    #[test]
    fn cases_observe_twenty_percent() {
        let w = workload_by_name("hailfinder").unwrap();
        let net = w.build();
        let cases = w.cases(&net, 5);
        assert_eq!(cases.len(), 5);
        let expected = (net.num_vars() as f64 * 0.2).ceil() as usize;
        assert!(cases.iter().all(|c| c.len() == expected));
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("pigs").is_some());
        assert!(workload_by_name("nonexistent").is_none());
    }
}
