//! # fastbn-bench
//!
//! Workload definitions and measurement helpers reproducing the Fast-BNI
//! (PPoPP'23) evaluation. The paper's six bnlearn networks are replaced by
//! seeded analogues with matching node counts, arc counts and arity
//! distributions (DESIGN.md §1); the paper's published Table-1 numbers are
//! carried alongside each workload so harness output can print
//! paper-vs-measured side by side.
//!
//! Three measurement paths cover the three ways queries execute (see
//! `docs/ARCHITECTURE.md` at the repository root): [`measure::run_cases`]
//! (one session, one query at a time), [`measure::run_cases_batch`] (one
//! `run_batch` call), and [`measure::run_cases_serve`] (closed-loop
//! concurrent clients against a `fastbn_serve::Server`, with p50/p99
//! latency percentiles).
//!
//! The report binaries (`table1`, `sweep`, `serve`) additionally emit
//! their measurements as schema-versioned `BENCH_*.json` perf records
//! via `--json PATH` (the [`report`] module); committed baselines live
//! in `perf/` at the repository root, and the `gate` binary compares a
//! fresh run against a baseline — failing on a >30% throughput
//! regression — as CI's perf-trajectory check.

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

pub mod measure;
pub mod report;
pub mod workloads;

pub use measure::{
    batch_of, best_over_threads, percentile, prepare, run_cases, run_cases_batch, run_cases_serve,
    run_cases_serve_with, solver_for, EngineTiming, LatencySummary, ServeOpts, ServeRun,
};
pub use report::{compare, BenchReport, BenchRow, GateOutcome, MachineInfo, RowComparison};
pub use workloads::{adaptivity_workloads, all_workloads, workload_by_name, PaperRow, Workload};
