//! # fastbn-bench
//!
//! Workload definitions and measurement helpers reproducing the Fast-BNI
//! (PPoPP'23) evaluation. The paper's six bnlearn networks are replaced by
//! seeded analogues with matching node counts, arc counts and arity
//! distributions (DESIGN.md §1); the paper's published Table-1 numbers are
//! carried alongside each workload so harness output can print
//! paper-vs-measured side by side.

pub mod measure;
pub mod workloads;

pub use measure::{
    batch_of, best_over_threads, prepare, run_cases, run_cases_batch, solver_for, EngineTiming,
};
pub use workloads::{adaptivity_workloads, all_workloads, workload_by_name, PaperRow, Workload};
