//! Table-kernel microbenchmarks: precompiled [`KernelPlan`]s vs
//! per-call plan derivation, across the plan's layout taxonomy.
//!
//! Usage:
//! ```text
//! cargo run -p fastbn-bench --release --bin kernels -- \
//!     [--iters N] [--quick] [--json PATH]
//! ```
//!
//! Three synthetic (clique, separator) domain pairs exercise one layout
//! class each — `inner_block` (separator is a scope suffix: stride-1
//! fibers), `outer_block` (scope prefix: contiguous blocked sums) and
//! `generic` (scattered scope: odometer walk). For every pair, each hot
//! kernel runs in two modes:
//!
//! * `planned` — the plan is compiled once and reused, the steady-state
//!   cost the engines pay after [`Prepared`] compilation;
//! * `percall` — the plan is rebuilt every invocation, the cost the
//!   table-level compat entry points (and the pre-plan code) pay.
//!
//! The fused collect step is recorded as `multiply_marginalize` in mode
//! `fused` against the equivalent two-pass `two_pass`
//! (extend-multiply-then-marginalize) formulation, both precompiled.
//!
//! `--quick` sizes iteration counts so each row covers tens of
//! milliseconds; `--json PATH` writes the schema-v1 `BENCH_*.json`
//! record committed as `perf/BENCH_kernels_quick.json` and enforced by
//! the CI `perf-gate` job.
//!
//! [`KernelPlan`]: fastbn_potential::KernelPlan
//! [`Prepared`]: fastbn_inference::Prepared

use std::path::PathBuf;
use std::time::Instant;

use fastbn_bayesnet::VarId;
use fastbn_bench::report::{BenchReport, BenchRow};
use fastbn_potential::{multiply_marginalize, Domain, KernelPlan, Layout};

struct Args {
    iters: usize,
    quick: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 40_000,
        quick: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            // Sized so even the fastest planned kernel covers tens of
            // milliseconds on a small container — the regression gate
            // needs timings well clear of clock jitter.
            "--quick" => {
                args.quick = true;
                args.iters = 8_000;
            }
            "--iters" => {
                args.iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N");
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().expect("--json PATH")));
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

/// One synthetic (clique, separator) pair hitting a specific layout.
struct Case {
    name: &'static str,
    sup: Domain,
    sub: Domain,
}

fn cases() -> Vec<Case> {
    // A 6-variable card-4 clique (4096 entries) — mid-sized for the
    // evaluation networks — with 2-variable separators (16 entries)
    // placed to select each layout class.
    let pairs: Vec<(VarId, usize)> = (0..6).map(|v| (VarId(v), 4)).collect();
    let sup = || Domain::new(pairs.clone());
    vec![
        Case {
            name: "inner_block",
            sup: sup(),
            sub: Domain::new(vec![(VarId(4), 4), (VarId(5), 4)]),
        },
        Case {
            name: "outer_block",
            sup: sup(),
            sub: Domain::new(vec![(VarId(0), 4), (VarId(1), 4)]),
        },
        Case {
            name: "generic",
            sup: sup(),
            sub: Domain::new(vec![(VarId(1), 4), (VarId(4), 4)]),
        },
    ]
}

/// Times `body` for `iters` repetitions; returns seconds.
fn time(iters: usize, mut body: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        body();
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let args = parse_args();
    let mut report = BenchReport::new("kernels", args.quick);
    println!(
        "Kernel plan microbench: {} iters/row, clique 4^6 = 4096 entries, sep 16 entries",
        args.iters
    );
    println!(
        "{:<12} {:<22} {:<9} {:>12} {:>14}",
        "layout", "kernel", "mode", "total(ms)", "M entries/s"
    );

    for case in cases() {
        let plan = KernelPlan::new(&case.sup, &case.sub);
        let expected = match case.name {
            "inner_block" => Layout::InnerBlock,
            "outer_block" => matches!(plan.layout(), Layout::OuterBlock { .. })
                .then_some(plan.layout())
                .expect("outer_block case must classify as OuterBlock"),
            _ => Layout::Generic,
        };
        assert_eq!(plan.layout(), expected, "case {} layout drifted", case.name);

        let table: Vec<f64> = (0..case.sup.size())
            .map(|i| 1.0 + (i % 7) as f64 * 0.25)
            .collect();
        let msg: Vec<f64> = (0..case.sub.size())
            .map(|i| 0.5 + (i % 3) as f64 * 0.5)
            .collect();
        let mut out = vec![0.0; case.sub.size()];
        let mut scratch = table.clone();
        let iters = args.iters;

        let mut emit = |kernel: &str, mode: &str, seconds: f64, entries_per_iter: usize| {
            let entries = (entries_per_iter * iters) as f64;
            println!(
                "{:<12} {:<22} {:<9} {:>12.2} {:>14.1}",
                case.name,
                kernel,
                mode,
                seconds * 1e3,
                entries / seconds / 1e6
            );
            report.push(BenchRow::new(case.name, kernel, mode, 1, 0).timed(iters, seconds));
        };

        // marginalize: planned vs per-call compiled.
        let s = time(iters, || plan.marginalize(&table, &mut out));
        emit("marginalize", "planned", s, case.sup.size());
        let s = time(iters, || {
            KernelPlan::new(&case.sup, &case.sub).marginalize(&table, &mut out)
        });
        emit("marginalize", "percall", s, case.sup.size());

        // extend_multiply: planned vs per-call compiled.
        let s = time(iters, || plan.extend_multiply(&mut scratch, &msg));
        emit("extend_multiply", "planned", s, case.sup.size());
        scratch.copy_from_slice(&table);
        let s = time(iters, || {
            KernelPlan::new(&case.sup, &case.sub).extend_multiply(&mut scratch, &msg)
        });
        emit("extend_multiply", "percall", s, case.sup.size());

        // Fused collect step vs the two-pass formulation (both planned).
        scratch.copy_from_slice(&table);
        let s = time(iters, || {
            scratch.copy_from_slice(&table);
            multiply_marginalize(&plan, &plan, &mut scratch, &msg, &mut out);
        });
        emit("multiply_marginalize", "fused", s, 2 * case.sup.size());
        let s = time(iters, || {
            scratch.copy_from_slice(&table);
            plan.extend_multiply(&mut scratch, &msg);
            plan.marginalize(&scratch, &mut out);
        });
        emit("multiply_marginalize", "two_pass", s, 2 * case.sup.size());
    }

    if let Some(path) = &args.json {
        report.write(path).expect("write --json report");
        println!("\nwrote {} ({} rows)", path.display(), report.rows.len());
    }
}
