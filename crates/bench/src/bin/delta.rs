//! Incremental vs from-scratch re-propagation under a single-finding
//! edit stream.
//!
//! Usage:
//! ```text
//! cargo run -p fastbn-bench --release --bin delta -- \
//!     [--iters N] [--quick] [--json PATH]
//! ```
//!
//! Each network gets a deterministic edit stream that models a
//! monitoring dashboard: a small set of hot variables whose hard finding
//! changes one at a time, with one watched variable re-read after every
//! edit. Two modes process the identical stream:
//!
//! * `incremental` — a [`LiveSession`] applies each
//!   [`EvidenceDelta`] and serves the read from its saved-message state
//!   (collect re-runs only on the dirty path; distribute materializes
//!   lazily along the watched variable's path);
//! * `scratch` — a plain [`Session`] re-runs a full targeted query with
//!   the same cumulative evidence, the cost every update paid before
//!   live sessions existed.
//!
//! Before timing, both modes replay a prefix of the stream side by side
//! and every `P(e)` and watched marginal must agree **bitwise** — the
//! bench refuses to publish a number for a shortcut that changed the
//! answer.
//!
//! `--quick` sizes the stream so each row covers tens of milliseconds;
//! `--json PATH` writes the schema-v1 record committed as
//! `perf/BENCH_delta_quick.json` and enforced by the CI `perf-gate` job
//! (the committed baseline also locks in the headline: the hailfinder
//! incremental row must stay ≥ 3× the scratch row).
//!
//! [`LiveSession`]: fastbn_inference::LiveSession
//! [`EvidenceDelta`]: fastbn_inference::EvidenceDelta
//! [`Session`]: fastbn_inference::Session

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use fastbn_bayesnet::{datasets, BayesianNetwork, Evidence, VarId};
use fastbn_bench::report::{BenchReport, BenchRow};
use fastbn_bench::workloads::workload_by_name;
use fastbn_inference::{EvidenceDelta, Query, Solver};

struct Args {
    iters: usize,
    quick: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 20_000,
        quick: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            // Sized so the incremental rows still cover tens of
            // milliseconds — the regression gate needs timings well
            // clear of clock jitter.
            "--quick" => {
                args.quick = true;
                args.iters = 4_000;
            }
            "--iters" => {
                args.iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N");
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().expect("--json PATH")));
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

/// The monitored edit stream: `steps` single-finding changes rotating
/// through up to eight hot variables. Consecutive visits to the same
/// variable always pick a different state, so every edit is an effective
/// change, never a detected no-op.
fn edit_stream(net: &BayesianNetwork, steps: usize, exclude: &[VarId]) -> Vec<(VarId, usize)> {
    let n = net.num_vars();
    let mut hot: Vec<VarId> = Vec::new();
    for i in 0..n {
        let var = VarId::from_index((i * 7 + 3) % n);
        if !exclude.contains(&var) && !hot.contains(&var) {
            hot.push(var);
        }
        if hot.len() == 8 {
            break;
        }
    }
    (0..steps)
        .map(|i| {
            let var = hot[i % hot.len()];
            let state = (i / hot.len()) % net.cardinality(var);
            (var, state)
        })
        .collect()
}

/// The benchmark networks — the same trio the differential edit-script
/// tests sweep. Asia's deterministic or-gate is excluded from the
/// stream (observing it can zero the evidence, which is a correctness
/// case for the tests, not a throughput case).
fn networks() -> Vec<(&'static str, BayesianNetwork, Vec<VarId>)> {
    let asia = datasets::asia();
    let exclude = vec![asia.var_id("TbOrCa").unwrap()];
    vec![
        ("sprinkler", datasets::sprinkler(), Vec::new()),
        ("asia", asia, exclude),
        (
            "hailfinder",
            workload_by_name("hailfinder").unwrap().build(),
            Vec::new(),
        ),
    ]
}

fn main() {
    let args = parse_args();
    let mut report = BenchReport::new("delta", args.quick);
    println!(
        "Incremental re-propagation bench: {} edits/row, one watched marginal per edit",
        args.iters
    );
    println!(
        "{:<12} {:<12} {:>8} {:>12} {:>12}",
        "network", "mode", "edits", "total(ms)", "edits/s"
    );

    for (name, net, exclude) in networks() {
        let solver = Arc::new(Solver::new(&net));
        let watch = VarId::from_index(net.num_vars() - 1);
        let stream = edit_stream(&net, args.iters, &exclude);

        // Self-check: the first 200 steps side by side, bit for bit.
        {
            let mut live = solver.live_session();
            let mut session = solver.session();
            let mut evidence = Evidence::empty();
            let mut buf = vec![0.0; net.cardinality(watch)];
            for &(var, state) in stream.iter().take(200) {
                live.apply(EvidenceDelta::observe(var, state)).unwrap();
                evidence.set(var, state);
                let result = session
                    .run(&Query::new().evidence(evidence.clone()).targets([watch]))
                    .map(|r| r.into_posteriors().unwrap());
                match (live.marginal_into(watch, &mut buf), result) {
                    (Ok(()), Ok(posteriors)) => {
                        assert_eq!(
                            live.prob_evidence().to_bits(),
                            posteriors.prob_evidence.to_bits(),
                            "{name}: P(e) bits diverged"
                        );
                        for (x, y) in buf.iter().zip(posteriors.marginal(watch)) {
                            assert_eq!(x.to_bits(), y.to_bits(), "{name}: marginal bits diverged");
                        }
                    }
                    // Some full-observation combinations are impossible
                    // (deterministic CPT rows); both modes must agree on
                    // that, too.
                    (Err(live_err), Err(scratch_err)) => {
                        assert_eq!(live_err, scratch_err, "{name}: error mismatch")
                    }
                    (a, b) => panic!("{name}: incremental {a:?} but scratch {b:?}"),
                }
            }
        }

        let mut emit = |mode: &str, edits: usize, seconds: f64| {
            let per_edit = seconds / edits as f64;
            println!(
                "{:<12} {:<12} {:>8} {:>12.2} {:>12.1}",
                name,
                mode,
                edits,
                seconds * 1e3,
                1.0 / per_edit
            );
            report.push(BenchRow::new(name, "seq", mode, 1, 0).timed(edits, seconds));
            per_edit
        };

        // Incremental: apply the edit, refresh the watched marginal.
        let mut live = solver.live_session();
        let mut buf = vec![0.0; net.cardinality(watch)];
        let start = Instant::now();
        for &(var, state) in &stream {
            live.apply(EvidenceDelta::observe(var, state)).unwrap();
            // Impossible-evidence steps surface as an error and are part
            // of the stream for both modes alike.
            let _ = live.marginal_into(watch, &mut buf);
        }
        let incremental = emit("incremental", stream.len(), start.elapsed().as_secs_f64());

        // From scratch: full targeted query with the cumulative evidence.
        // A prefix of the same stream suffices — throughput is per edit,
        // and a full-length run would dominate the bench's wall clock.
        let scratch_stream = &stream[..(stream.len() / 8).max(250).min(stream.len())];
        let mut session = solver.session();
        let mut evidence = Evidence::empty();
        let start = Instant::now();
        for &(var, state) in scratch_stream {
            evidence.set(var, state);
            let _ = session.run(&Query::new().evidence(evidence.clone()).targets([watch]));
        }
        let scratch = emit(
            "scratch",
            scratch_stream.len(),
            start.elapsed().as_secs_f64(),
        );

        println!(
            "{:<12} single-finding speedup: {:.1}x",
            name,
            scratch / incremental
        );
    }

    if let Some(path) = &args.json {
        report.write(path).expect("write --json report");
        println!("\nwrote {} ({} rows)", path.display(), report.rows.len());
    }
}
