//! Trace replay and live-introspection smoke — the human-facing (and
//! CI-facing) end of the request-tracing pipeline.
//!
//! Drives a workload through a [`Server`] with a request tracer
//! sampling **every** request, then:
//!
//! 1. renders the most recent trace trees as indented text, one line
//!    per span with its start offset, duration, and **self time**
//!    (duration minus the direct children's durations — where a stage
//!    actually spent its time rather than waited on a child);
//! 2. starts the live [`Introspection`] endpoint over the server's
//!    metrics and tracer, scrapes its own `/healthz`, `/metrics`,
//!    `/metrics.json`, `/traces/recent`, and `/traces/slow`, and
//!    validates each response — Prometheus text exposition for
//!    `/metrics`, well-formed JSON with the documented fields for the
//!    trace endpoints.
//!
//! Any validation failure panics (non-zero exit), so `--quick` doubles
//! as the CI smoke step for the whole tracing + introspection stack.
//!
//! Usage:
//! ```text
//! cargo run --release -p fastbn-bench --bin trace -- \
//!     [--network hailfinder] [--engine hybrid] [--cases N] [--threads T] \
//!     [--workers W] [--width B] [--delay-us D] [--sample N] [--traces K] \
//!     [--quick]
//! ```
//! Defaults: 64 cases of hailfinder through the hybrid engine (2
//! threads, 2 serving workers), 1-in-1 sampling, 3 trees rendered. The
//! slow threshold is pinned to zero so every request lands in the
//! slow-query log — `/traces/slow` then has content to validate.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fastbn_bench::measure::{prepare, solver_for};
use fastbn_bench::workloads::workload_by_name;
use fastbn_inference::{layout_class_name, EngineKind, Query};
use fastbn_serve::Server;
use fastbn_telemetry::trace::{NameId, SpanRecord, TraceView, SPAN_KERNEL, SPAN_REQUEST};
use fastbn_telemetry::{Introspection, Json, TraceConfig, Tracer};

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// The span-kind-specific annotation for one rendered line.
fn annotate(tracer: &Tracer, span: &SpanRecord) -> String {
    match span.name {
        SPAN_REQUEST => format!(
            "  batch={} model={}",
            span.tag,
            tracer.name(NameId(span.aux as u32))
        ),
        SPAN_KERNEL => format!("  {} clique={}", layout_class_name(span.tag), span.aux),
        _ if span.tag != 0 => format!("  n={}", span.tag),
        _ => String::new(),
    }
}

/// Renders one trace as an indented tree. Spans are already
/// start-ordered; children attach by parent id, and orphans (parent
/// overwritten out of the ring) print at the root level.
fn render_trace(tracer: &Tracer, view: &TraceView) {
    println!("trace {}", view.trace);
    let t0 = view.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let known: Vec<u64> = view.spans.iter().map(|s| s.span).collect();
    let roots: Vec<&SpanRecord> = view
        .spans
        .iter()
        .filter(|s| s.parent == 0 || !known.contains(&s.parent))
        .collect();
    for root in roots {
        render_span(tracer, view, root, t0, 1);
    }
}

fn render_span(tracer: &Tracer, view: &TraceView, span: &SpanRecord, t0: u64, depth: usize) {
    let children: Vec<&SpanRecord> = view
        .spans
        .iter()
        .filter(|s| s.parent == span.span)
        .collect();
    let child_ns: u64 = children.iter().map(|c| c.dur_ns).sum();
    let self_ns = span.dur_ns.saturating_sub(child_ns);
    println!(
        "{:indent$}{:<12} +{:>8.3} ms  dur {:>8.3} ms  self {:>8.3} ms{}",
        "",
        tracer.name(span.name),
        ms(span.start_ns.saturating_sub(t0)),
        ms(span.dur_ns),
        ms(self_ns),
        annotate(tracer, span),
        indent = depth * 2,
    );
    for child in children {
        render_span(tracer, view, child, t0, depth + 1);
    }
}

/// One blocking GET against the introspection endpoint; returns
/// (status, body).
fn scrape(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("endpoint reachable");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    let mut network = "hailfinder".to_string();
    let mut engine = EngineKind::Hybrid;
    let mut cases_n = 64usize;
    let mut threads = 2usize;
    let mut workers = 2usize;
    let mut width: Option<usize> = None;
    let mut delay = Duration::from_micros(200);
    let mut sample = 1u64;
    let mut traces_max = 3usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => {
                cases_n = 32;
                traces_max = 2;
            }
            "--network" => network = it.next().expect("--network NAME"),
            "--engine" => {
                engine = it
                    .next()
                    .expect("--engine KIND")
                    .parse()
                    .unwrap_or_else(|err| panic!("{err}"))
            }
            "--cases" => cases_n = it.next().and_then(|v| v.parse().ok()).expect("--cases N"),
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).expect("--threads T"),
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).expect("--workers W"),
            "--width" => width = Some(it.next().and_then(|v| v.parse().ok()).expect("--width B")),
            "--delay-us" => {
                delay = Duration::from_micros(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--delay-us D"),
                )
            }
            "--sample" => sample = it.next().and_then(|v| v.parse().ok()).expect("--sample N"),
            "--traces" => traces_max = it.next().and_then(|v| v.parse().ok()).expect("--traces K"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    let width = width.unwrap_or(threads).max(1);

    let w = workload_by_name(&network).unwrap_or_else(|| panic!("unknown network {network:?}"));
    let net = w.build();
    let cases = w.cases(&net, cases_n);
    // Slow threshold zero: every completed request enters the slow log,
    // so the scrape below validates a *populated* document.
    let tracer = Arc::new(Tracer::new(TraceConfig {
        sample_every: sample,
        slow_threshold: Duration::ZERO,
        ring_capacity: 4096,
        slow_capacity: 64,
    }));
    let solver = Arc::new(solver_for(engine, prepare(&net), threads));
    let server = Server::builder(solver)
        .workers(workers)
        .max_batch(width)
        .max_delay(delay)
        .tracer(Arc::clone(&tracer))
        .build();
    println!(
        "replaying {} cases of {network} through {} (t={threads}, {workers} workers, \
         width {width}, 1-in-{sample} sampling)\n",
        cases.len(),
        engine.id(),
    );
    let pending: Vec<_> = cases
        .iter()
        .map(|ev| {
            server
                .submit(Query::new().evidence(ev.clone()))
                .expect("server accepting")
        })
        .collect();
    for p in pending {
        p.wait().expect("workload evidence has P(e) > 0");
    }

    // Render the most recent trace trees with per-stage self-times.
    let views = tracer.recent_traces(traces_max);
    assert!(
        sample != 1 || !views.is_empty(),
        "1-in-1 sampling must leave rendered traces"
    );
    for view in &views {
        render_trace(&tracer, view);
        println!();
    }

    // Live introspection: serve the real metrics + tracer, scrape
    // ourselves, and validate both exposition formats.
    let snapshot_server = Arc::new(server);
    let endpoint_server = Arc::clone(&snapshot_server);
    let endpoint = Introspection::builder()
        .metrics(Arc::new(move || endpoint_server.metrics_snapshot()))
        .tracer(Arc::clone(&tracer))
        .bind("127.0.0.1:0")
        .expect("loopback bind");
    let addr = endpoint.addr();
    println!("introspection endpoint at http://{addr}/ — self-scraping:");

    let (status, body) = scrape(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"), "/healthz");
    println!("  /healthz        ok");

    let (status, body) = scrape(addr, "/metrics");
    assert_eq!(status, 200, "/metrics status");
    assert!(body.contains("# TYPE"), "/metrics lacks TYPE comments");
    assert!(
        body.contains("serve_completed"),
        "/metrics lacks the traffic counters"
    );
    assert!(
        body.lines().any(|l| l.ends_with("_count")
            || l.split_whitespace()
                .next()
                .is_some_and(|n| n.ends_with("_count"))),
        "/metrics lacks histogram _count series"
    );
    println!(
        "  /metrics        ok ({} lines of Prometheus text)",
        body.lines().count()
    );

    let (status, body) = scrape(addr, "/metrics.json");
    assert_eq!(status, 200, "/metrics.json status");
    let parsed = Json::parse(&body).expect("/metrics.json parses");
    assert!(parsed.get("counters").is_some(), "/metrics.json counters");
    println!("  /metrics.json   ok");

    let (status, body) = scrape(addr, "/traces/recent");
    assert_eq!(status, 200, "/traces/recent status");
    let parsed = Json::parse(&body).expect("/traces/recent parses");
    let traces = parsed
        .get("traces")
        .and_then(Json::as_arr)
        .expect("/traces/recent has a traces array");
    if sample == 1 {
        assert!(!traces.is_empty(), "sampled run must expose traces");
        let spans = traces[0]
            .get("spans")
            .and_then(Json::as_arr)
            .expect("trace has spans");
        assert!(!spans.is_empty());
        assert!(
            spans.iter().all(|s| s.get("name").is_some()
                && s.get("start_ns").is_some()
                && s.get("dur_ns").is_some()),
            "span fields present"
        );
    }
    println!("  /traces/recent  ok ({} traces)", traces.len());

    let (status, body) = scrape(addr, "/traces/slow");
    assert_eq!(status, 200, "/traces/slow status");
    let parsed = Json::parse(&body).expect("/traces/slow parses");
    let total = parsed
        .get("total")
        .and_then(Json::as_u64)
        .expect("/traces/slow has a total");
    let entries = parsed
        .get("entries")
        .and_then(Json::as_arr)
        .expect("/traces/slow has entries");
    // Zero threshold: every completed request (warmup-free here) is a
    // slow entry, and the retained window carries the documented fields.
    assert!(total >= cases.len() as u64, "slow log counts every request");
    assert!(!entries.is_empty());
    assert!(
        entries.iter().all(|e| e.get("model").is_some()
            && e.get("total_ns").is_some()
            && e.get("queue_ns").is_some()
            && e.get("compute_ns").is_some()),
        "slow entry fields present"
    );
    println!(
        "  /traces/slow    ok (total {total}, {} retained)",
        entries.len()
    );

    snapshot_server.shutdown();
    println!("\nPASS: tracing + introspection smoke");
}
