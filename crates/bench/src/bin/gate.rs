//! The perf regression gate over `BENCH_*.json` files — the CI teeth
//! behind the committed baselines in `perf/`.
//!
//! Usage:
//! ```text
//! # Validate files against schema v1 (exit 1 on any violation):
//! cargo run --release -p fastbn-bench --bin gate -- --schema-only perf/*.json
//!
//! # Compare a fresh run against a committed baseline:
//! cargo run --release -p fastbn-bench --bin gate -- \
//!     --baseline perf/BENCH_serve_quick.json \
//!     --candidate /tmp/BENCH_serve_quick.json [--threshold 0.30]
//! ```
//!
//! The comparison matches rows by identity
//! (`network|engine|mode|threads|workers`) and **fails** (exit 1) when
//! any baseline row's throughput drops by more than `--threshold`
//! (default 0.30, the ">30% regression" gate), when a latency-carrying
//! row's p99 *grows* by more than the same threshold (tail blow-ups at
//! steady throughput fail too; baselines under
//! [`P99_FLOOR_US`](fastbn_bench::report::P99_FLOOR_US) are noise and
//! exempt), or when a baseline row is missing from the candidate —
//! silently dropping a slow configuration must not pass. Candidate-only rows are reported but
//! not gated; refresh the baseline to start trending them. A machine
//! mismatch (os/arch/cores) is called out loudly: absolute throughput
//! is only comparable on matching hardware, so cross-machine verdicts
//! are advisory.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fastbn_bench::report::{compare, BenchReport};

fn load_or_exit(path: &Path) -> Result<BenchReport, ExitCode> {
    match BenchReport::load(path) {
        Ok(report) => {
            println!(
                "ok: {} (bench {:?}, {} rows, schema v1)",
                path.display(),
                report.bench,
                report.rows.len()
            );
            Ok(report)
        }
        Err(err) => {
            eprintln!("SCHEMA FAIL: {err}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut candidate: Option<PathBuf> = None;
    let mut threshold = 0.30f64;
    let mut schema_only = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--schema-only" => schema_only = true,
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().expect("--baseline PATH")));
            }
            "--candidate" => {
                candidate = Some(PathBuf::from(it.next().expect("--candidate PATH")));
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold FRACTION");
                assert!(
                    (0.0..1.0).contains(&threshold),
                    "--threshold must be a fraction in [0, 1), got {threshold}"
                );
            }
            path if !path.starts_with("--") => files.push(PathBuf::from(path)),
            other => panic!("unknown flag {other:?}"),
        }
    }

    if schema_only {
        files.extend(baseline.into_iter().chain(candidate));
        assert!(!files.is_empty(), "--schema-only needs at least one file");
        let mut ok = true;
        for path in &files {
            ok &= load_or_exit(path).is_ok();
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let baseline = baseline.expect("--baseline PATH required (or use --schema-only)");
    let candidate = candidate.expect("--candidate PATH required (or use --schema-only)");
    let (Ok(baseline), Ok(candidate)) = (load_or_exit(&baseline), load_or_exit(&candidate)) else {
        return ExitCode::FAILURE;
    };
    if baseline.machine != candidate.machine {
        println!(
            "WARNING: machine mismatch (baseline {}/{}/{} cores vs candidate {}/{}/{} cores) — \
             absolute throughput is not comparable across machines; verdicts are advisory",
            baseline.machine.os,
            baseline.machine.arch,
            baseline.machine.cores,
            candidate.machine.os,
            candidate.machine.arch,
            candidate.machine.cores,
        );
    }

    let outcome = compare(&baseline, &candidate, threshold);
    println!(
        "\ngating {} candidate rows against {} baseline rows (threshold {:.0}%):",
        candidate.rows.len(),
        baseline.rows.len(),
        threshold * 100.0
    );
    for row in &outcome.rows {
        let p99 = match row.p99_change {
            Some(growth) => format!("  p99 {:>+6.1}%", growth * 100.0),
            None => String::new(),
        };
        println!(
            "  {} {:<44} {:>9.0} -> {:>9.0} req/s  ({:>+6.1}%){p99}",
            if row.regressed || row.p99_regressed {
                "FAIL"
            } else {
                "  ok"
            },
            row.key,
            row.baseline,
            row.candidate,
            row.change * 100.0,
        );
    }
    for key in &outcome.missing {
        println!("  FAIL {key:<44} missing from candidate");
    }
    let new_rows = candidate
        .rows
        .iter()
        .filter(|row| baseline.row(&row.key()).is_none())
        .count();
    if new_rows > 0 {
        println!("  note: {new_rows} candidate row(s) not in the baseline (ungated; refresh the baseline to trend them)");
    }
    if outcome.passed() {
        println!("PASS: no row regressed beyond {:.0}%", threshold * 100.0);
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {} regressed row(s), {} missing row(s)",
            outcome
                .rows
                .iter()
                .filter(|r| r.regressed || r.p99_regressed)
                .count(),
            outcome.missing.len()
        );
        ExitCode::FAILURE
    }
}
