//! Thread sweep — reproduces the paper's in-text methodology: "we varied
//! the number of OpenMP threads t from 1 to 32 and chose the one with the
//! shortest execution time", and its observation that "Fast-BNI always
//! achieves its shortest execution time when t = 32 on large BNs".
//!
//! Usage:
//! ```text
//! cargo run -p fastbn-bench --release --bin sweep -- \
//!     [--cases N] [--threads 1,2,4,8,16,32] [--networks pigs,...] \
//!     [--engines hybrid,direct]
//! ```
//! Defaults: 10 cases, threads {1, 2, 4, 8, 16, 32} (counts above the
//! core count oversubscribe, as the paper's 32 threads did on 52 cores),
//! the four parallel engines. `--engines` is parsed via
//! `EngineKind::from_str` (ids or display names, case-insensitive).

use fastbn_bench::measure::{prepare, run_cases};
use fastbn_bench::workloads::all_workloads;
use fastbn_inference::EngineKind;

fn main() {
    let mut cases_n = 10usize;
    let mut threads = vec![1usize, 2, 4, 8, 16, 32];
    let mut networks: Option<Vec<String>> = None;
    let mut engines: Vec<EngineKind> = EngineKind::parallel().to_vec();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cases" => cases_n = it.next().and_then(|v| v.parse().ok()).expect("--cases N"),
            "--threads" => {
                threads = it
                    .next()
                    .expect("--threads list")
                    .split(',')
                    .map(|t| t.parse().expect("thread count"))
                    .collect()
            }
            "--networks" => {
                networks = Some(
                    it.next()
                        .expect("--networks list")
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--engines" => {
                engines = it
                    .next()
                    .expect("--engines list")
                    .split(',')
                    .map(|e| {
                        e.parse::<EngineKind>()
                            .unwrap_or_else(|err| panic!("{err}"))
                    })
                    .collect()
            }
            other => panic!("unknown flag {other:?}"),
        }
    }

    println!("Thread sweep: {cases_n} cases/network, per-engine seconds by t\n");
    for w in all_workloads() {
        if let Some(filter) = &networks {
            if !filter.iter().any(|n| n == w.name) {
                continue;
            }
        }
        let net = w.build();
        let prepared = prepare(&net);
        let cases = w.cases(&net, cases_n);
        println!(
            "== {} ({}, {} nodes) ==",
            w.name,
            if w.large_scale { "large" } else { "small" },
            net.num_vars()
        );
        print!("{:<14}", "engine \\ t");
        for &t in &threads {
            print!(" {t:>9}");
        }
        println!();
        for &kind in &engines {
            print!("{kind:<14}");
            let mut best = (0usize, f64::INFINITY);
            for &t in &threads {
                let timing = run_cases(kind, prepared.clone(), t, &cases);
                let s = timing.total.as_secs_f64();
                if s < best.1 {
                    best = (t, s);
                }
                print!(" {s:>9.3}");
            }
            println!("   best: t={}", best.0);
        }
        println!();
    }
}
