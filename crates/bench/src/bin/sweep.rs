//! Thread sweep — reproduces the paper's in-text methodology: "we varied
//! the number of OpenMP threads t from 1 to 32 and chose the one with the
//! shortest execution time", and its observation that "Fast-BNI always
//! achieves its shortest execution time when t = 32 on large BNs".
//!
//! Usage:
//! ```text
//! cargo run -p fastbn-bench --release --bin sweep -- \
//!     [--cases N] [--threads 1,2,4,8,16,32] [--networks pigs,...] \
//!     [--engines hybrid,direct] [--batch] [--cache] [--distinct D] \
//!     [--quick] [--json PATH]
//! ```
//! Defaults: 10 cases, threads {1, 2, 4, 8, 16, 32} (counts above the
//! core count oversubscribe, as the paper's 32 threads did on 52 cores),
//! the four parallel engines. `--engines` is parsed via
//! `EngineKind::from_str` (ids or display names, case-insensitive).
//! With `--batch`, each engine prints two rows — the naive
//! one-query-at-a-time loop and the same cases through `run_batch` —
//! plus the per-thread-count batching speedup. With `--cache`, the case
//! stream cycles `--distinct` (default 8) evidence sets and each engine
//! prints the uncached loop against the cache-enabled loop (warm cache,
//! steady-state repeated traffic) plus the speedup and hit rate.
//! `--quick` is the CI smoke preset (a few cases, threads {1, 2}, the
//! smallest network, the hybrid and direct engines); `--json PATH`
//! additionally writes the measured rows as a schema-v1 `BENCH_*.json`
//! perf record (see `fastbn_bench::report`) for the committed baselines
//! in `perf/` and the CI regression gate.

use std::path::PathBuf;

use fastbn_bench::measure::{prepare, repeat_cases, run_cases, run_cases_batch, run_cases_cached};
use fastbn_bench::report::{BenchReport, BenchRow};
use fastbn_bench::workloads::all_workloads;
use fastbn_inference::EngineKind;

fn main() {
    let mut cases_n = 10usize;
    let mut threads = vec![1usize, 2, 4, 8, 16, 32];
    let mut networks: Option<Vec<String>> = None;
    let mut engines: Vec<EngineKind> = EngineKind::parallel().to_vec();
    let mut batch = false;
    let mut cache = false;
    let mut distinct = 8usize;
    let mut quick = false;
    let mut json: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--batch" => batch = true,
            "--cache" => cache = true,
            "--quick" => {
                // Enough cases that each cell covers tens of
                // milliseconds — the regression gate compares these
                // throughputs, so they must clear OS-jitter noise.
                quick = true;
                cases_n = 192;
                threads = vec![1, 2];
                networks = Some(vec!["hailfinder".into()]);
                engines = vec![EngineKind::Hybrid, EngineKind::Direct];
            }
            "--json" => json = Some(PathBuf::from(it.next().expect("--json PATH"))),
            "--distinct" => {
                distinct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--distinct D")
            }
            "--cases" => cases_n = it.next().and_then(|v| v.parse().ok()).expect("--cases N"),
            "--threads" => {
                threads = it
                    .next()
                    .expect("--threads list")
                    .split(',')
                    .map(|t| t.parse().expect("thread count"))
                    .collect()
            }
            "--networks" => {
                networks = Some(
                    it.next()
                        .expect("--networks list")
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--engines" => {
                engines = it
                    .next()
                    .expect("--engines list")
                    .split(',')
                    .map(|e| {
                        e.parse::<EngineKind>()
                            .unwrap_or_else(|err| panic!("{err}"))
                    })
                    .collect()
            }
            other => panic!("unknown flag {other:?}"),
        }
    }

    if batch {
        // run_batch only takes the outer-parallel path when the batch is
        // at least as wide as the pool; with fewer cases than threads the
        // "batch" row would silently re-measure the naive loop and print
        // a meaningless ~1.0x speedup. Widen the case set instead.
        let widest = threads.iter().copied().max().unwrap_or(1);
        if cases_n < widest {
            println!("(--batch: raising cases from {cases_n} to {widest} so every thread count exercises the batch path)");
            cases_n = widest;
        }
        println!("Thread sweep (batched): {cases_n} cases/network, naive loop vs run_batch seconds by t\n");
    } else if cache {
        println!(
            "Thread sweep (cached): {cases_n} cases/network cycling {distinct} distinct \
             evidence sets, uncached loop vs warm cache-enabled loop seconds by t\n"
        );
    } else {
        println!("Thread sweep: {cases_n} cases/network, per-engine seconds by t\n");
    }
    let mut report = BenchReport::new("sweep", quick);
    for w in all_workloads() {
        if let Some(filter) = &networks {
            if !filter.iter().any(|n| n == w.name) {
                continue;
            }
        }
        let net = w.build();
        let prepared = prepare(&net);
        let mut cases = w.cases(&net, cases_n);
        if cache {
            cases = repeat_cases(&cases, distinct);
        }
        println!(
            "== {} ({}, {} nodes) ==",
            w.name,
            if w.large_scale { "large" } else { "small" },
            net.num_vars()
        );
        print!("{:<14}", "engine \\ t");
        for &t in &threads {
            print!(" {t:>9}");
        }
        println!();
        for &kind in &engines {
            if batch {
                let naive: Vec<f64> = threads
                    .iter()
                    .map(|&t| {
                        run_cases(kind, prepared.clone(), t, &cases)
                            .total
                            .as_secs_f64()
                    })
                    .collect();
                let batched: Vec<f64> = threads
                    .iter()
                    .map(|&t| {
                        run_cases_batch(kind, prepared.clone(), t, &cases)
                            .total
                            .as_secs_f64()
                    })
                    .collect();
                print!("{:<14}", format!("{} loop", kind.id()));
                for s in &naive {
                    print!(" {s:>9.3}");
                }
                println!();
                print!("{:<14}", format!("{} batch", kind.id()));
                for s in &batched {
                    print!(" {s:>9.3}");
                }
                println!();
                print!("{:<14}", "  speedup");
                for (n, b) in naive.iter().zip(&batched) {
                    print!(" {:>8.2}x", n / b);
                }
                println!();
                for (i, &t) in threads.iter().enumerate() {
                    report.push(
                        BenchRow::new(w.name, kind.id(), "loop", t, 0).timed(cases.len(), naive[i]),
                    );
                    report.push(
                        BenchRow::new(w.name, kind.id(), "batch", t, 0)
                            .timed(cases.len(), batched[i]),
                    );
                }
            } else if cache {
                let uncached: Vec<f64> = threads
                    .iter()
                    .map(|&t| {
                        run_cases(kind, prepared.clone(), t, &cases)
                            .total
                            .as_secs_f64()
                    })
                    .collect();
                let cached: Vec<(f64, fastbn_inference::CacheStats)> = threads
                    .iter()
                    .map(|&t| {
                        let (timing, stats) = run_cases_cached(kind, prepared.clone(), t, &cases);
                        (timing.total.as_secs_f64(), stats)
                    })
                    .collect();
                print!("{:<14}", format!("{} loop", kind.id()));
                for s in &uncached {
                    print!(" {s:>9.3}");
                }
                println!();
                print!("{:<14}", format!("{} cache", kind.id()));
                for (s, _) in &cached {
                    print!(" {s:>9.3}");
                }
                println!();
                print!("{:<14}", "  speedup");
                for (u, (c, _)) in uncached.iter().zip(&cached) {
                    print!(" {:>8.2}x", u / c);
                }
                let stats = &cached[0].1;
                println!(
                    "   [{} hits / {} misses per timed pass, {} entries]",
                    stats.hits, stats.misses, stats.entries
                );
                for (i, &t) in threads.iter().enumerate() {
                    report.push(
                        BenchRow::new(w.name, kind.id(), "loop", t, 0)
                            .timed(cases.len(), uncached[i]),
                    );
                    let (s, stats) = &cached[i];
                    report.push(
                        BenchRow::new(w.name, kind.id(), "cache", t, 0)
                            .timed(cases.len(), *s)
                            .counter("cache.hits", stats.hits)
                            .counter("cache.misses", stats.misses),
                    );
                }
            } else {
                print!("{kind:<14}");
                let mut best = (0usize, f64::INFINITY);
                for &t in &threads {
                    let timing = run_cases(kind, prepared.clone(), t, &cases);
                    let s = timing.total.as_secs_f64();
                    if s < best.1 {
                        best = (t, s);
                    }
                    print!(" {s:>9.3}");
                    report
                        .push(BenchRow::new(w.name, kind.id(), "loop", t, 0).timed(cases.len(), s));
                }
                println!("   best: t={}", best.0);
            }
        }
        println!();
    }

    if let Some(path) = &json {
        report.write(path).expect("write --json report");
        println!("wrote {} ({} rows)", path.display(), report.rows.len());
    }
}
