//! Prints junction-tree structure statistics for every benchmark network —
//! the quantities (clique sizes, layer counts, entries per layer) that
//! explain the engine comparisons.
//!
//! Usage:
//! ```text
//! cargo run -p fastbn-bench --release --bin structure -- [--networks pigs,...]
//! ```

use fastbn_bench::workloads::all_workloads;
use fastbn_inference::EngineKind;
use fastbn_jtree::{root_tree, tree_stats, LayerSchedule, RootStrategy};

fn main() {
    let mut networks: Option<Vec<String>> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--networks" => {
                networks = Some(
                    it.next()
                        .expect("--networks list")
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    println!(
        "{:<12} {:>6} {:>6} {:>8} {:>6} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "network",
        "nodes",
        "arcs",
        "cliques",
        "width",
        "max-entries",
        "tot-entries",
        "layers",
        "lyr-1st",
        "lyr-wst"
    );
    for w in all_workloads() {
        if let Some(filter) = &networks {
            if !filter.iter().any(|n| n == w.name) {
                continue;
            }
        }
        let net = w.build();
        let built = fastbn_jtree::build_junction_tree(&net, &Default::default());
        let stats = tree_stats(&net, &built);
        // Layer counts under alternative root strategies (the ablation).
        let first = LayerSchedule::new(&built.tree, &root_tree(&built.tree, RootStrategy::First))
            .num_layers();
        let worst = LayerSchedule::new(&built.tree, &root_tree(&built.tree, RootStrategy::Worst))
            .num_layers();
        println!(
            "{:<12} {:>6} {:>6} {:>8} {:>6} {:>12} {:>12} {:>8} {:>8} {:>8}",
            w.name,
            net.num_vars(),
            net.num_edges(),
            stats.num_cliques,
            stats.width,
            stats.max_clique_entries,
            stats.total_clique_entries,
            stats.num_layers,
            first,
            worst
        );
    }
    println!(
        "\nlayer counts bound the parallel-region invocations per pass of {} and {}; \
         `lyr-1st`/`lyr-wst` show the first-clique and diameter-endpoint rootings \
         the paper's center rooting improves on",
        EngineKind::Direct,
        EngineKind::Hybrid,
    );
}
