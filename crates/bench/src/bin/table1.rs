//! Regenerates **Table 1** of the paper: sequential (UnBBayes-analogue vs
//! Fast-BNI-seq) and parallel (Direct / Primitive / Element vs
//! Fast-BNI-par) execution-time comparison on the six network analogues,
//! with the paper's published speedups printed alongside the measured
//! ones.
//!
//! Usage:
//! ```text
//! cargo run -p fastbn-bench --release --bin table1 -- \
//!     [--cases N] [--threads 1,2,4] [--networks hailfinder,pigs,...]
//! ```
//! Defaults: 20 cases (the paper uses 2,000 — scale up with `--cases`),
//! thread sweep {1, 2, 4}, all six networks.

use fastbn_bench::measure::{best_over_threads, prepare, run_cases};
use fastbn_bench::workloads::all_workloads;
use fastbn_inference::EngineKind;

struct Args {
    cases: usize,
    threads: Vec<usize>,
    networks: Option<Vec<String>>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 20,
        threads: vec![1, 2, 4],
        networks: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cases" => {
                args.cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cases N");
            }
            "--threads" => {
                let list = it.next().expect("--threads 1,2,4");
                args.threads = list
                    .split(',')
                    .map(|t| t.parse().expect("thread count"))
                    .collect();
            }
            "--networks" => {
                let list = it.next().expect("--networks a,b");
                args.networks = Some(list.split(',').map(str::to_string).collect());
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "Table 1 reproduction: {} cases/network, 20% evidence, threads {:?}",
        args.cases, args.threads
    );
    println!("(paper speedups in parentheses; absolute seconds are not comparable — see EXPERIMENTS.md)\n");
    println!(
        "{:<12} | {:>9} {:>9} {:>16} | {:>9} {:>9} {:>9} {:>9} {:>14} {:>14} {:>14}",
        "BN",
        "Ref(s)",
        "Seq(s)",
        "SeqSpdup",
        "Dir(s)",
        "Prim(s)",
        "Elem(s)",
        "Par(s)",
        "vs Dir",
        "vs Prim",
        "vs Elem"
    );

    for w in all_workloads() {
        if let Some(filter) = &args.networks {
            if !filter.iter().any(|n| n == w.name) {
                continue;
            }
        }
        let net = w.build();
        let prepared = prepare(&net);
        let cases = w.cases(&net, args.cases);

        let reference = run_cases(EngineKind::Reference, prepared.clone(), 1, &cases);
        let seq = run_cases(EngineKind::Seq, prepared.clone(), 1, &cases);
        let direct =
            best_over_threads(EngineKind::Direct, prepared.clone(), &args.threads, &cases);
        let primitive = best_over_threads(
            EngineKind::Primitive,
            prepared.clone(),
            &args.threads,
            &cases,
        );
        let element =
            best_over_threads(EngineKind::Element, prepared.clone(), &args.threads, &cases);
        let hybrid =
            best_over_threads(EngineKind::Hybrid, prepared.clone(), &args.threads, &cases);

        let secs = |t: &fastbn_bench::EngineTiming| t.total.as_secs_f64();
        let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { f64::NAN };
        println!(
            "{:<12} | {:>9.3} {:>9.3} {:>7.1}x ({:>4.1}x) | {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.1}x ({:>4.1}x) {:>6.1}x ({:>4.1}x) {:>6.1}x ({:>4.1}x)",
            w.name,
            secs(&reference),
            secs(&seq),
            ratio(secs(&reference), secs(&seq)),
            w.paper.seq_speedup,
            secs(&direct),
            secs(&primitive),
            secs(&element),
            secs(&hybrid),
            ratio(secs(&direct), secs(&hybrid)),
            w.paper.dir_speedup,
            ratio(secs(&primitive), secs(&hybrid)),
            w.paper.prim_speedup,
            ratio(secs(&element), secs(&hybrid)),
            w.paper.elem_speedup,
        );
    }
}
