//! Regenerates **Table 1** of the paper: sequential (UnBBayes-analogue vs
//! Fast-BNI-seq) and parallel (Direct / Primitive / Element vs
//! Fast-BNI-par) execution-time comparison on the six network analogues,
//! with the paper's published speedups printed alongside the measured
//! ones.
//!
//! Usage:
//! ```text
//! cargo run -p fastbn-bench --release --bin table1 -- \
//!     [--cases N] [--threads 1,2,4] [--networks hailfinder,pigs,...] \
//!     [--engines direct,hybrid] [--quick] [--json PATH]
//! ```
//! Defaults: 20 cases (the paper uses 2,000 — scale up with `--cases`),
//! thread sweep {1, 2, 4}, all six networks, all four parallel engines.
//! `--engines` accepts the canonical ids (`direct`, `primitive`,
//! `element`, `hybrid`) or display names (`Fast-BNI-par`), parsed via
//! `EngineKind::from_str`; skipped columns print `-`. `--quick` is the
//! CI smoke preset — 48 cases, threads {1, 2}, the smallest network
//! only (later flags still override it) — sized so every timing covers
//! tens of milliseconds, enough for the regression gate to compare
//! without drowning in jitter. `--json PATH` additionally writes
//! the measured rows as a schema-v1 `BENCH_*.json` perf record (see
//! `fastbn_bench::report`) for the committed baselines in `perf/` and
//! the CI regression gate.

use std::path::PathBuf;

use fastbn_bench::measure::{best_over_threads, prepare, run_cases, EngineTiming};
use fastbn_bench::report::{BenchReport, BenchRow};
use fastbn_bench::workloads::all_workloads;
use fastbn_inference::EngineKind;

struct Args {
    cases: usize,
    threads: Vec<usize>,
    networks: Option<Vec<String>>,
    engines: Vec<EngineKind>,
    quick: bool,
    json: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 20,
        threads: vec![1, 2, 4],
        networks: None,
        engines: EngineKind::parallel().to_vec(),
        quick: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => {
                // Enough cases that the slow reference engine still
                // covers tens of milliseconds: these timings feed the
                // `gate` regression check, which a sub-millisecond
                // measurement would turn into a coin flip.
                args.quick = true;
                args.cases = 48;
                args.threads = vec![1, 2];
                args.networks = Some(vec!["hailfinder".to_string()]);
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().expect("--json PATH")));
            }
            "--cases" => {
                args.cases = it.next().and_then(|v| v.parse().ok()).expect("--cases N");
            }
            "--threads" => {
                let list = it.next().expect("--threads 1,2,4");
                args.threads = list
                    .split(',')
                    .map(|t| t.parse().expect("thread count"))
                    .collect();
            }
            "--networks" => {
                let list = it.next().expect("--networks a,b");
                args.networks = Some(list.split(',').map(str::to_string).collect());
            }
            "--engines" => {
                let list = it.next().expect("--engines direct,hybrid");
                args.engines = list
                    .split(',')
                    .map(|e| {
                        e.parse::<EngineKind>()
                            .unwrap_or_else(|err| panic!("{err}"))
                    })
                    .collect();
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "Table 1 reproduction: {} cases/network, 20% evidence, threads {:?}, parallel engines: {}",
        args.cases,
        args.threads,
        args.engines
            .iter()
            .map(EngineKind::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("(paper speedups in parentheses; absolute seconds are not comparable — see EXPERIMENTS.md)\n");
    println!(
        "{:<12} | {:>9} {:>9} {:>16} | {:>9} {:>9} {:>9} {:>9} {:>14} {:>14} {:>14}",
        "BN",
        "Ref(s)",
        "Seq(s)",
        "SeqSpdup",
        "Dir(s)",
        "Prim(s)",
        "Elem(s)",
        "Par(s)",
        "vs Dir",
        "vs Prim",
        "vs Elem"
    );

    let mut report = BenchReport::new("table1", args.quick);
    let selected = |kind: EngineKind| args.engines.contains(&kind);
    for w in all_workloads() {
        if let Some(filter) = &args.networks {
            if !filter.iter().any(|n| n == w.name) {
                continue;
            }
        }
        let net = w.build();
        let prepared = prepare(&net);
        let cases = w.cases(&net, args.cases);

        let reference = run_cases(EngineKind::Reference, prepared.clone(), 1, &cases);
        let seq = run_cases(EngineKind::Seq, prepared.clone(), 1, &cases);
        let run_parallel = |kind: EngineKind| -> Option<EngineTiming> {
            selected(kind).then(|| best_over_threads(kind, prepared.clone(), &args.threads, &cases))
        };
        let direct = run_parallel(EngineKind::Direct);
        let primitive = run_parallel(EngineKind::Primitive);
        let element = run_parallel(EngineKind::Element);
        let hybrid = run_parallel(EngineKind::Hybrid);

        let secs =
            |t: &Option<EngineTiming>| -> Option<f64> { t.as_ref().map(|t| t.total.as_secs_f64()) };
        let cell = |v: Option<f64>| match v {
            Some(s) => format!("{s:>9.3}"),
            None => format!("{:>9}", "-"),
        };
        let speedup = |num: Option<f64>, den: Option<f64>, paper: f64| match (num, den) {
            // Populated cells are 15 chars (6+1 ratio, 2+4+2 paper
            // annotation); the placeholder must match for alignment.
            (Some(n), Some(d)) if d > 0.0 => format!("{:>6.1}x ({paper:>4.1}x)", n / d),
            _ => format!("{:>15}", "-"),
        };
        let ref_s = reference.total.as_secs_f64();
        let seq_s = seq.total.as_secs_f64();
        println!(
            "{:<12} | {:>9.3} {:>9.3} {:>7.1}x ({:>4.1}x) | {} {} {} {} {} {} {}",
            w.name,
            ref_s,
            seq_s,
            if seq_s > 0.0 { ref_s / seq_s } else { f64::NAN },
            w.paper.seq_speedup,
            cell(secs(&direct)),
            cell(secs(&primitive)),
            cell(secs(&element)),
            cell(secs(&hybrid)),
            speedup(secs(&direct), secs(&hybrid), w.paper.dir_speedup),
            speedup(secs(&primitive), secs(&hybrid), w.paper.prim_speedup),
            speedup(secs(&element), secs(&hybrid), w.paper.elem_speedup),
        );

        // Perf-trajectory rows: the two sequential loops at t=1, and
        // each parallel engine under the paper's best-over-threads
        // methodology. Best rows are keyed at t=0 — the winning thread
        // count may differ run to run, and a varying key would read as
        // a vanished row to the regression gate — with the winner
        // recorded as a counter instead.
        report.push(BenchRow::new(w.name, "reference", "loop", 1, 0).timed(cases.len(), ref_s));
        report.push(BenchRow::new(w.name, "seq", "loop", 1, 0).timed(cases.len(), seq_s));
        for (kind, timing) in [
            (EngineKind::Direct, &direct),
            (EngineKind::Primitive, &primitive),
            (EngineKind::Element, &element),
            (EngineKind::Hybrid, &hybrid),
        ] {
            if let Some(t) = timing {
                report.push(
                    BenchRow::new(w.name, kind.id(), "best", 0, 0)
                        .timed(cases.len(), t.total.as_secs_f64())
                        .counter("best_threads", t.threads as u64),
                );
            }
        }
    }

    if let Some(path) = &args.json {
        report.write(path).expect("write --json report");
        println!("\nwrote {} ({} rows)", path.display(), report.rows.len());
    }
}
