//! Serving sweep — measures the micro-batching front end against the
//! PR 2 batch path it wraps, at equal batch width.
//!
//! For each network × engine it reports:
//! * the **batch path**: the cases split into `QueryBatch`es of exactly
//!   the micro-batch width, run back-to-back through one session — the
//!   throughput ceiling a perfectly coalesced offline caller gets;
//! * the **server**: the same cases submitted by closed-loop concurrent
//!   clients through a `fastbn_serve::Server` at each worker count,
//!   with requests/second and the p50/p99 round-trip latency a client
//!   actually observes.
//!
//! Usage:
//! ```text
//! cargo run --release -p fastbn-bench --bin serve -- \
//!     [--cases N] [--threads T] [--width W] [--workers 1,2] \
//!     [--delay-us D] [--repeat R] [--networks pigs,...] [--engines hybrid,...] \
//!     [--cache] [--distinct D] [--models] [--workers-total N] [--quick] \
//!     [--json PATH]
//! ```
//! Defaults: 256 cases, best of 3 repetitions, engine threads = available cores, micro-batch
//! width = engine threads (the narrowest batch that takes the
//! outer-parallel path), worker counts {1, 2}, 200µs window, the hybrid
//! engine, all six networks. `--quick` shrinks everything to a smoke
//! run for CI.
//!
//! `--cache` switches to the **repeated-query** benchmark: the case
//! stream cycles through only `--distinct` (default 16) evidence sets —
//! the serving traffic shape the query-result cache exists for — and
//! each engine prints a cache-off row (no solver cache, no in-window
//! dedup) against a cache-on row (solver cache + dedup) with the
//! speedup and the hit/miss/dedup counters.
//!
//! `--models` switches to the **multi-model** benchmark: mixed traffic
//! over several networks (default 3) driven through one `RoutedServer`
//! whose models share a single worker pool, against N separate
//! single-model `Server`s (each solver with its own pool) at equal
//! total serve-worker count — with per-model p50/p99 on both sides.
//! `--workers-total` overrides the worker budget (default: one per
//! model). `--models --cache` gives every model a query-result cache,
//! cycles each model's traffic through `--distinct` evidence sets, and
//! prints per-model cache counters read through
//! `Registry::cache_stats_for`.
//!
//! `--json PATH` additionally writes the measured rows as a schema-v1
//! `BENCH_*.json` perf record (see `fastbn_bench::report`) for the
//! committed baselines in `perf/` and the CI regression gate. In the
//! default mode this also measures each serve configuration with
//! telemetry *disabled* (`serve_telem_off` rows) and with a request
//! tracer at default 1-in-16 head sampling (`serve_trace` rows): the
//! three interleaved repetitions in one file are the record that stage
//! timing costs ≈ nothing and sampled tracing stays under a few
//! percent.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fastbn_bayesnet::Evidence;
use fastbn_bench::measure::{
    cached_solver_for, prepare, repeat_cases, run_cases_serve_on, run_cases_serve_with,
    run_mixed_traffic, solver_for, MixedRun, ServeOpts, ServeRun,
};
use fastbn_bench::report::{BenchReport, BenchRow};
use fastbn_bench::workloads::all_workloads;
use fastbn_inference::{CacheConfig, CacheStats, EngineKind, Query, QueryBatch, Solver};
use fastbn_registry::{Registry, RoutedServer};
use fastbn_serve::Server;
use fastbn_telemetry::{TraceConfig, Tracer};

/// Microseconds, for the JSON rows (`Duration` has no lossless float).
fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// A serving measurement as a perf-trajectory row.
fn serve_row(
    network: &str,
    engine: &str,
    mode: &str,
    threads: usize,
    workers: usize,
    run: &ServeRun,
) -> BenchRow {
    BenchRow::new(network, engine, mode, threads, workers)
        .timed(run.stats.completed as usize, run.total.as_secs_f64())
        .latency_us(us(run.latency.p50), us(run.latency.p99))
        .counter("serve.batches", run.stats.batches)
        .counter("serve.dedups", run.stats.dedups)
}

/// The PR 2 batch path at fixed width: cases chopped into batches of
/// exactly `width`, run back-to-back through one session (untimed
/// warm-up pass first, like every other measurement in this crate).
fn run_cases_batch_width(
    kind: EngineKind,
    prepared: Arc<fastbn_inference::Prepared>,
    threads: usize,
    width: usize,
    cases: &[Evidence],
) -> Duration {
    let solver = solver_for(kind, prepared, threads);
    let batches: Vec<QueryBatch> = cases
        .chunks(width)
        .map(|chunk| {
            chunk
                .iter()
                .map(|ev| Query::new().evidence(ev.clone()))
                .collect()
        })
        .collect();
    let mut session = solver.session();
    for batch in &batches {
        let _ = session.run_batch(batch);
    }
    let start = Instant::now();
    for batch in &batches {
        let results = session.run_batch(batch);
        assert!(results.iter().all(Result::is_ok));
    }
    start.elapsed()
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// The repeated-query cache comparison: cache-off (no solver cache, no
/// in-window dedup) vs cache-on (both), best of `repeat`, with the
/// cache's hit/miss counters and the server's dedup counter reported.
#[allow(clippy::too_many_arguments)]
fn run_cache_rows(
    network: &str,
    kind: EngineKind,
    prepared: Arc<fastbn_inference::Prepared>,
    threads: usize,
    workers: usize,
    width: usize,
    delay: Duration,
    repeat: usize,
    cases: &[Evidence],
    report: &mut BenchReport,
) {
    let off = (0..repeat)
        .map(|_| {
            let solver = Arc::new(solver_for(kind, prepared.clone(), threads));
            run_cases_serve_on(solver, workers, width, delay, false, cases)
        })
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .expect("at least one repetition");
    println!(
        "{:<26} {:>9.0} req/s  p50 {} ms  p99 {} ms",
        format!("{} cache-off wk={workers}", kind.id()),
        off.throughput,
        fmt_ms(off.latency.p50),
        fmt_ms(off.latency.p99),
    );
    let on = (0..repeat)
        .map(|_| {
            // A fresh solver per repetition keeps the counters clean;
            // the warm-up pass inside the runner fills the cache, so
            // the timed window measures steady-state repeated traffic.
            let solver = Arc::new(cached_solver_for(kind, prepared.clone(), threads));
            run_cases_serve_on(Arc::clone(&solver), workers, width, delay, true, cases)
        })
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .expect("at least one repetition");
    println!(
        "{:<26} {:>9.0} req/s  p50 {} ms  p99 {} ms  ({:.2}x cache-off)",
        format!("  cache-on  wk={workers}"),
        on.throughput,
        fmt_ms(on.latency.p50),
        fmt_ms(on.latency.p99),
        on.throughput / off.throughput,
    );
    // Both counters below cover the timed window only (warm-up pass
    // baselined away), so the hit rate describes steady-state traffic.
    let stats = on.cache.expect("cached solver reports cache stats");
    println!(
        "{:<26} timed window: {} hits / {} misses ({:.1}% hit rate, {} entries), {} dedups",
        "",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries,
        on.stats.dedups,
    );
    report.push(serve_row(
        network,
        kind.id(),
        "cache_off",
        threads,
        workers,
        &off,
    ));
    report.push(
        serve_row(network, kind.id(), "cache_on", threads, workers, &on)
            .counter("cache.hits", stats.hits)
            .counter("cache.misses", stats.misses),
    );
}

/// Prints one side of the multi-model comparison.
fn print_mixed(label: &str, run: &MixedRun) {
    println!(
        "{:<34} {:>9.0} req/s  ({} ms total)",
        label,
        run.throughput,
        fmt_ms(run.total),
    );
    for m in &run.per_model {
        println!(
            "{:<34} {:>6} req   p50 {} ms  p99 {} ms",
            format!("    {}", m.model),
            m.requests,
            fmt_ms(m.latency.p50),
            fmt_ms(m.latency.p99),
        );
    }
}

/// The `--models` mode: mixed traffic over several networks through
/// one `RoutedServer` (models sharing a single worker pool) vs N
/// separate single-model `Server`s (one private pool each) at equal
/// total serve-worker count, with per-model p50/p99. With `cache`,
/// every model gets a query-result cache, each model's traffic cycles
/// `distinct` evidence sets, and the routed side reports per-model
/// cache counters read through `Registry::cache_stats_for`.
#[allow(clippy::too_many_arguments)]
fn run_models_mode(
    names: &[String],
    kind: EngineKind,
    threads: usize,
    workers_total: usize,
    width: usize,
    delay: Duration,
    repeat: usize,
    cases_per_model: usize,
    cache: bool,
    distinct: usize,
    report: &mut BenchReport,
) {
    let workloads: Vec<_> = names
        .iter()
        .map(|name| {
            all_workloads()
                .into_iter()
                .find(|w| w.name == *name)
                .unwrap_or_else(|| panic!("unknown network {name:?}"))
        })
        .collect();
    assert!(
        workloads.len() >= 2,
        "--models needs at least two networks (got {names:?})"
    );
    let prepared: Vec<_> = workloads
        .iter()
        .map(|w| {
            let net = w.build();
            let mut cases = w.cases(&net, cases_per_model);
            if cache {
                cases = repeat_cases(&cases, distinct);
            }
            (w.name, prepare(&net), cases)
        })
        .collect();
    // The interleaved stream: round-robin across models, so every
    // micro-batch window sees mixed traffic.
    let mut traffic: Vec<(String, Query)> = Vec::with_capacity(names.len() * cases_per_model);
    for i in 0..cases_per_model {
        for (name, _, cases) in &prepared {
            traffic.push((name.to_string(), Query::new().evidence(cases[i].clone())));
        }
    }
    let clients = 2 * workers_total * width;
    println!(
        "Multi-model serving: {} networks × {cases_per_model} cases (interleaved), engine {}, \
         t={threads}, width {width}, {}µs window, {workers_total} total workers, \
         {clients} clients, best of {repeat}\n",
        names.len(),
        kind.id(),
        delay.as_micros(),
    );

    // One RoutedServer: every model compiled onto one shared pool.
    let (routed_best, routed_caches) = (0..repeat)
        .map(|_| {
            let registry = Arc::new(Registry::builder().threads(threads).build());
            for (name, prep, _) in &prepared {
                let mut builder = Solver::from_prepared(Arc::clone(prep))
                    .engine(kind)
                    .pool(registry.pool_handle());
                if cache {
                    builder = builder.cache(CacheConfig::default());
                }
                registry
                    .insert(*name, Arc::new(builder.build()))
                    .expect("unbounded registry");
            }
            let server = RoutedServer::builder(Arc::clone(&registry))
                .workers(workers_total)
                .max_batch(width)
                .max_delay(delay)
                .dedup(false)
                .build();
            let run = run_mixed_traffic(&traffic, clients, |model, query| {
                server.submit(model, query).expect("model resident")
            });
            server.shutdown();
            // Observed, not used: `cache_stats_for` reads a resident
            // model's counters without bumping its LRU recency.
            let caches: Vec<(String, Option<CacheStats>)> = names
                .iter()
                .map(|name| (name.clone(), registry.cache_stats_for(name)))
                .collect();
            (run, caches)
        })
        .max_by(|(a, _), (b, _)| a.throughput.total_cmp(&b.throughput))
        .expect("at least one repetition");
    print_mixed(
        &format!("routed  (1 shared pool, {workers_total} wk)"),
        &routed_best,
    );
    if cache {
        for (name, stats) in &routed_caches {
            let stats = stats.as_ref().expect("--models --cache builds caches");
            println!(
                "{:<34} cache: {} hits / {} misses ({:.1}% hit rate, {} entries)",
                format!("    {name}"),
                stats.hits,
                stats.misses,
                stats.hit_rate() * 100.0,
                stats.entries,
            );
        }
    }

    // N separate single-model servers: each solver spawns its own
    // engine pool, and the worker budget is split across the servers.
    let per_server = (workers_total / names.len()).max(1);
    let separate_best = (0..repeat)
        .map(|_| {
            let servers: std::collections::HashMap<String, Server> = prepared
                .iter()
                .map(|(name, prep, _)| {
                    let solver = Arc::new(if cache {
                        cached_solver_for(kind, Arc::clone(prep), threads)
                    } else {
                        solver_for(kind, Arc::clone(prep), threads)
                    });
                    let server = Server::builder(solver)
                        .workers(per_server)
                        .max_batch(width)
                        .max_delay(delay)
                        .dedup(false)
                        .build();
                    (name.to_string(), server)
                })
                .collect();
            let run = run_mixed_traffic(&traffic, clients, |model, query| {
                servers[model].submit(query).expect("server accepting")
            });
            for server in servers.values() {
                server.shutdown();
            }
            run
        })
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .expect("at least one repetition");
    print_mixed(
        &format!("separate ({} pools, {per_server} wk each)", names.len()),
        &separate_best,
    );
    println!(
        "\nrouted vs separate at equal total workers: {:.2}x",
        routed_best.throughput / separate_best.throughput
    );

    // Perf-trajectory rows: one per side, the whole interleaved stream
    // as a unit (the network field names the mix).
    let mix = names.join("+");
    let mode = |side: &str| {
        if cache {
            format!("{side}_cache")
        } else {
            side.to_string()
        }
    };
    let mut routed_row = BenchRow::new(&mix, kind.id(), &mode("routed"), threads, workers_total)
        .timed(traffic.len(), routed_best.total.as_secs_f64());
    if cache {
        for (name, stats) in &routed_caches {
            let stats = stats.as_ref().expect("--models --cache builds caches");
            routed_row = routed_row.counter(&format!("cache.{name}.hits"), stats.hits);
        }
    }
    report.push(routed_row);
    report.push(
        BenchRow::new(&mix, kind.id(), &mode("separate"), threads, per_server)
            .timed(traffic.len(), separate_best.total.as_secs_f64()),
    );
}

fn main() {
    let mut cases_n = 256usize;
    let mut threads = fastbn_parallel::available_threads().max(2);
    let mut width: Option<usize> = None;
    let mut worker_counts = vec![1usize, 2];
    let mut delay = Duration::from_micros(200);
    let mut repeat = 3usize;
    let mut networks: Option<Vec<String>> = None;
    let mut engines: Vec<EngineKind> = vec![EngineKind::Hybrid];
    let mut cache = false;
    let mut models = false;
    let mut workers_total: Option<usize> = None;
    let mut distinct = 16usize;
    let mut quick = false;
    let mut json: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cache" => cache = true,
            "--models" => models = true,
            "--json" => json = Some(PathBuf::from(it.next().expect("--json PATH"))),
            "--workers-total" => {
                workers_total = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--workers-total N"),
                )
            }
            "--distinct" => {
                distinct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--distinct D")
            }
            "--quick" => {
                // Each measurement must cover tens of milliseconds or OS
                // jitter swamps the batch-vs-serve comparison; 384 cases
                // of the smallest network keep the whole smoke run ~1s.
                quick = true;
                cases_n = 384;
                threads = 2;
                worker_counts = vec![1, 2];
                networks = Some(vec!["hailfinder".into()]);
            }
            "--cases" => cases_n = it.next().and_then(|v| v.parse().ok()).expect("--cases N"),
            "--repeat" => repeat = it.next().and_then(|v| v.parse().ok()).expect("--repeat R"),
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).expect("--threads T"),
            "--width" => width = Some(it.next().and_then(|v| v.parse().ok()).expect("--width W")),
            "--delay-us" => {
                delay = Duration::from_micros(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--delay-us D"),
                )
            }
            "--workers" => {
                worker_counts = it
                    .next()
                    .expect("--workers list")
                    .split(',')
                    .map(|w| w.parse().expect("worker count"))
                    .collect()
            }
            "--networks" => {
                networks = Some(
                    it.next()
                        .expect("--networks list")
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--engines" => {
                engines = it
                    .next()
                    .expect("--engines list")
                    .split(',')
                    .map(|e| {
                        e.parse::<EngineKind>()
                            .unwrap_or_else(|err| panic!("{err}"))
                    })
                    .collect()
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    let width = width.unwrap_or(threads).max(1);
    // Fewer cases than the width would never exercise the outer batch
    // path (same guard as sweep --batch).
    let cases_n = cases_n.max(width);

    let mut report = BenchReport::new("serve", quick);
    let write_report = |report: &BenchReport| {
        if let Some(path) = &json {
            report.write(path).expect("write --json report");
            println!("wrote {} ({} rows)", path.display(), report.rows.len());
        }
    };

    if models {
        // `--quick` pinned networks to hailfinder for the single-model
        // sweep; the multi-model comparison needs ≥ 3 of them.
        let names = networks
            .filter(|list| !quick || list.len() >= 2)
            .unwrap_or_else(|| {
                vec![
                    "hailfinder".to_string(),
                    "pathfinder".to_string(),
                    "diabetes".to_string(),
                ]
            });
        let workers_total = workers_total.unwrap_or(names.len()).max(1);
        let cases_per_model = if quick {
            16
        } else {
            (cases_n / names.len()).max(width)
        };
        run_models_mode(
            &names,
            engines[0],
            threads,
            workers_total,
            width,
            delay,
            if quick { 1 } else { repeat },
            cases_per_model,
            cache,
            distinct,
            &mut report,
        );
        write_report(&report);
        return;
    }

    if cache {
        println!(
            "Repeated-query cache sweep: {cases_n} cases/network cycling {distinct} distinct \
             evidence sets, engine threads t={threads}, micro-batch width {width}, {}µs window\n",
            delay.as_micros()
        );
    } else {
        println!(
            "Serving sweep: {cases_n} cases/network, engine threads t={threads}, \
             micro-batch width {width}, {}µs window\n",
            delay.as_micros()
        );
    }
    for w in all_workloads() {
        if let Some(filter) = &networks {
            if !filter.iter().any(|n| n == w.name) {
                continue;
            }
        }
        let net = w.build();
        let prepared = prepare(&net);
        let cases = w.cases(&net, cases_n);
        println!(
            "== {} ({}, {} nodes) ==",
            w.name,
            if w.large_scale { "large" } else { "small" },
            net.num_vars()
        );
        if cache {
            let repeated = repeat_cases(&cases, distinct);
            for &kind in &engines {
                for &workers in &worker_counts {
                    run_cache_rows(
                        w.name,
                        kind,
                        prepared.clone(),
                        threads,
                        workers,
                        width,
                        delay,
                        repeat,
                        &repeated,
                        &mut report,
                    );
                }
            }
            println!();
            continue;
        }
        for &kind in &engines {
            // Best of `repeat` for both sides, the paper's best-over-runs
            // methodology: OS jitter hits each measurement independently.
            let batch_total = (0..repeat)
                .map(|_| run_cases_batch_width(kind, prepared.clone(), threads, width, &cases))
                .min()
                .expect("at least one repetition");
            let batch_thru = cases.len() as f64 / batch_total.as_secs_f64();
            println!(
                "{:<24} {:>9.0} req/s  ({} ms total, best of {repeat})",
                format!("{} batch path w={width}", kind.id()),
                batch_thru,
                fmt_ms(batch_total),
            );
            report.push(
                BenchRow::new(w.name, kind.id(), "batch", threads, 0)
                    .timed(cases.len(), batch_total.as_secs_f64()),
            );
            // Dedup off, as in `run_cases_serve`: the batch-vs-serve
            // comparison measures raw per-request serving overhead.
            // With `--json`, every telemetry-on repetition is followed
            // immediately by a telemetry-off one and a traced one
            // (fresh tracer, default 1-in-16 head sampling) — machine-
            // speed drift over the seconds of a sweep then hits all
            // sides alike instead of masquerading as instrumentation
            // overhead.
            let run_serve = |workers: usize, with_variants: bool| {
                let run_one = |telemetry: bool, tracer: Option<Arc<Tracer>>| {
                    let opts = ServeOpts {
                        workers,
                        max_batch: width,
                        max_delay: delay,
                        dedup: false,
                        telemetry,
                        tracer,
                    };
                    let solver = Arc::new(solver_for(kind, prepared.clone(), threads));
                    run_cases_serve_with(solver, &opts, &cases)
                };
                let faster = |best: &Option<ServeRun>, run: &ServeRun| {
                    best.as_ref().is_none_or(|b| run.throughput > b.throughput)
                };
                let mut best_on: Option<ServeRun> = None;
                let mut best_off: Option<ServeRun> = None;
                let mut best_trace: Option<ServeRun> = None;
                for _ in 0..repeat {
                    let on = run_one(true, None);
                    if faster(&best_on, &on) {
                        best_on = Some(on);
                    }
                    if with_variants {
                        let off = run_one(false, None);
                        if faster(&best_off, &off) {
                            best_off = Some(off);
                        }
                        let traced =
                            run_one(true, Some(Arc::new(Tracer::new(TraceConfig::default()))));
                        if faster(&best_trace, &traced) {
                            best_trace = Some(traced);
                        }
                    }
                }
                (
                    best_on.expect("at least one repetition"),
                    best_off,
                    best_trace,
                )
            };
            let mut best_thru = 0.0f64;
            let runs: Vec<(usize, ServeRun, Option<ServeRun>, Option<ServeRun>)> = worker_counts
                .iter()
                .map(|&workers| {
                    let (on, off, traced) = run_serve(workers, json.is_some());
                    (workers, on, off, traced)
                })
                .collect();
            for (workers, run, _, _) in &runs {
                println!(
                    "{:<24} {:>9.0} req/s  ({:.2}x batch)  p50 {} ms  p99 {} ms  \
                     [{} batches, mean {} ms]",
                    format!("  serve workers={workers}"),
                    run.throughput,
                    run.throughput / batch_thru,
                    fmt_ms(run.latency.p50),
                    fmt_ms(run.latency.p99),
                    run.stats.batches,
                    fmt_ms(run.latency.mean),
                );
                best_thru = best_thru.max(run.throughput);
                report.push(serve_row(
                    w.name,
                    kind.id(),
                    "serve",
                    threads,
                    *workers,
                    run,
                ));
            }
            println!(
                "{:<24} {:>9.0} req/s  ({:.2}x batch path at equal width)",
                "  serve best",
                best_thru,
                best_thru / batch_thru
            );
            // The instrumentation overhead record: the same
            // configurations with stage timing disabled and with a
            // sampling tracer installed, in the same file, so both
            // ratios are part of the committed trajectory.
            for (workers, on, off, traced) in &runs {
                let Some(off) = off else { continue };
                println!(
                    "{:<24} {:>9.0} req/s  (telemetry on: {:>+5.1}%)",
                    format!("  telem-off workers={workers}"),
                    off.throughput,
                    (on.throughput / off.throughput - 1.0) * 100.0,
                );
                report.push(serve_row(
                    w.name,
                    kind.id(),
                    "serve_telem_off",
                    threads,
                    *workers,
                    off,
                ));
                let Some(traced) = traced else { continue };
                println!(
                    "{:<24} {:>9.0} req/s  (vs untraced: {:>+5.1}%)",
                    format!("  traced    workers={workers}"),
                    traced.throughput,
                    (traced.throughput / on.throughput - 1.0) * 100.0,
                );
                report.push(serve_row(
                    w.name,
                    kind.id(),
                    "serve_trace",
                    threads,
                    *workers,
                    traced,
                ));
            }
        }
        println!();
    }
    write_report(&report);
}
