//! Timing helpers shared by the report binaries and the Criterion benches.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fastbn_bayesnet::{BayesianNetwork, Evidence};
use fastbn_inference::{CacheConfig, CacheStats, EngineKind, Prepared, Query, QueryBatch, Solver};
use fastbn_jtree::JtreeOptions;

/// Builds the shared prepared structures for a network.
pub fn prepare(net: &BayesianNetwork) -> Arc<Prepared> {
    Arc::new(Prepared::new(net, &JtreeOptions::default()))
}

/// Compiles a solver of `kind` over shared prepared structures.
pub fn solver_for(kind: EngineKind, prepared: Arc<Prepared>, threads: usize) -> Solver {
    Solver::from_prepared(prepared)
        .engine(kind)
        .threads(threads)
        .build()
}

/// [`solver_for`] with the query-result cache enabled (default
/// [`CacheConfig`]).
pub fn cached_solver_for(kind: EngineKind, prepared: Arc<Prepared>, threads: usize) -> Solver {
    Solver::from_prepared(prepared)
        .engine(kind)
        .threads(threads)
        .cache(CacheConfig::default())
        .build()
}

/// The repeated-query serving workload: the first `distinct` cases of
/// `cases`, cycled to the original length. Models traffic dominated by
/// recurring evidence sets (the Fast-PGM observation the cache exists
/// for); `distinct >= cases.len()` returns the cases unchanged.
pub fn repeat_cases(cases: &[Evidence], distinct: usize) -> Vec<Evidence> {
    if cases.is_empty() {
        return Vec::new();
    }
    let pool = &cases[..distinct.clamp(1, cases.len())];
    pool.iter().cycle().take(cases.len()).cloned().collect()
}

/// A measured engine run.
#[derive(Debug, Clone, Copy)]
pub struct EngineTiming {
    /// Thread count used.
    pub threads: usize,
    /// Total wall time for all cases.
    pub total: Duration,
}

impl EngineTiming {
    /// Seconds per case.
    pub fn per_case(&self, cases: usize) -> f64 {
        self.total.as_secs_f64() / cases.max(1) as f64
    }
}

/// Runs every case through one session of a fresh solver of `kind` and
/// returns the wall time of the query loop (solver construction excluded,
/// matching how the paper times repeated inference).
pub fn run_cases(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    threads: usize,
    cases: &[Evidence],
) -> EngineTiming {
    let solver = solver_for(kind, prepared, threads);
    let mut session = solver.session();
    // One untimed warm-up query faults in all working memory.
    if let Some(first) = cases.first() {
        let _ = session.posteriors(first);
    }
    let start = Instant::now();
    for evidence in cases {
        session
            .posteriors(evidence)
            .expect("workload evidence is sampled from the joint, so P(e) > 0");
    }
    EngineTiming {
        threads,
        total: start.elapsed(),
    }
}

/// Builds the all-marginals [`QueryBatch`] equivalent of `cases` (what
/// [`run_cases`] executes one call at a time).
pub fn batch_of(cases: &[Evidence]) -> QueryBatch {
    cases
        .iter()
        .map(|ev| Query::new().evidence(ev.clone()))
        .collect()
}

/// Times the same cases as [`run_cases`], but executed as one
/// `run_batch` call — the batched serving path the naive loop is
/// measured against. Batch construction and an untimed warm-up batch
/// are excluded from the timing, mirroring `run_cases`: the warm-up
/// must itself be a batch so the *per-chunk* pool scratch the outer
/// path draws is faulted in, not just the session's own state.
pub fn run_cases_batch(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    threads: usize,
    cases: &[Evidence],
) -> EngineTiming {
    let solver = solver_for(kind, prepared, threads);
    let batch = batch_of(cases);
    let mut session = solver.session();
    let _ = session.run_batch(&batch);
    let start = Instant::now();
    let results = session.run_batch(&batch);
    let total = start.elapsed();
    assert!(
        results.iter().all(Result::is_ok),
        "workload evidence is sampled from the joint, so every item succeeds"
    );
    EngineTiming { threads, total }
}

/// [`run_cases`] on a cache-enabled solver
/// ([`cached_solver_for`]). The untimed warm-up pass both faults in
/// scratch and fills the cache, so the timed loop measures steady-state
/// repeated traffic; the returned [`CacheStats`] covers the timed loop
/// only (hit/miss/insertion/eviction are deltas, occupancy is final).
pub fn run_cases_cached(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    threads: usize,
    cases: &[Evidence],
) -> (EngineTiming, CacheStats) {
    let solver = cached_solver_for(kind, prepared, threads);
    let mut session = solver.session();
    for evidence in cases {
        let _ = session.posteriors(evidence);
    }
    let warm = solver.cache_stats().expect("solver built with a cache");
    let start = Instant::now();
    for evidence in cases {
        session
            .posteriors(evidence)
            .expect("workload evidence is sampled from the joint, so P(e) > 0");
    }
    let total = start.elapsed();
    let end = solver.cache_stats().expect("solver built with a cache");
    (EngineTiming { threads, total }, end.delta_since(&warm))
}

/// Latency distribution of one serving run (nearest-rank percentiles
/// over the per-request submit→result round trips).
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Median round-trip latency.
    pub p50: Duration,
    /// 99th-percentile round-trip latency (the serving tail).
    pub p99: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Worst observed request.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarizes raw round-trip samples; panics on an empty set.
    pub fn from_samples(mut samples: Vec<Duration>) -> LatencySummary {
        assert!(!samples.is_empty(), "latency summary needs samples");
        samples.sort_unstable();
        let total: Duration = samples.iter().sum();
        LatencySummary {
            p50: percentile(&samples, 50.0),
            p99: percentile(&samples, 99.0),
            mean: total / samples.len() as u32,
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted sample set.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentile needs samples");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One measured serving run: wall time, per-request latency
/// distribution, and the server's own traffic counters.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Wall time from the clients' synchronized start to the last
    /// result.
    pub total: Duration,
    /// Requests completed per second.
    pub throughput: f64,
    /// Round-trip latency distribution.
    pub latency: LatencySummary,
    /// Server counters at the end of the run.
    pub stats: fastbn_serve::ServerStats,
    /// Solver cache counters for the **timed window only** (warm-up
    /// baselined away, like `stats`); `None` when the solver has no
    /// cache. Occupancy fields are final, not deltas.
    pub cache: Option<CacheStats>,
}

/// Times the same cases as [`run_cases`] / [`run_cases_batch`], but
/// served through a [`fastbn_serve::Server`] under closed-loop
/// concurrent submitters (each client submits one request, waits for
/// its result, repeats). Client count is `2 × workers × max_batch`,
/// enough in-flight requests to fill every worker's micro-batching
/// window with the next window already queued. An untimed full pass
/// warms each worker's scratch, mirroring the other measurement paths.
pub fn run_cases_serve(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    threads: usize,
    workers: usize,
    max_batch: usize,
    max_delay: Duration,
    cases: &[Evidence],
) -> ServeRun {
    let solver = Arc::new(solver_for(kind, prepared, threads));
    // Dedup off: this wrapper backs the serve-vs-batch-path comparison,
    // which measures raw per-request serving overhead — colliding
    // sampled cases must cost the server exactly what they cost the
    // batch baseline. The cache benchmark enables dedup explicitly.
    run_cases_serve_on(solver, workers, max_batch, max_delay, false, cases)
}

/// Server-shape knobs for [`run_cases_serve_with`], bundled so a
/// telemetry on/off comparison cannot accidentally vary anything else.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Serving worker threads.
    pub workers: usize,
    /// Micro-batch width.
    pub max_batch: usize,
    /// Micro-batching window deadline.
    pub max_delay: Duration,
    /// In-window duplicate collapsing.
    pub dedup: bool,
    /// Stage-histogram/timing telemetry on the server. Counters stay
    /// live either way ([`fastbn_serve::ServerStats`] depends on them);
    /// `false` measures the opt-out overhead floor.
    pub telemetry: bool,
    /// Request tracer installed on the server
    /// ([`fastbn_serve::Tracer`]): every request gets the slow-query
    /// accounting, head-sampled ones record span trees. `None` measures
    /// the no-tracer hot path.
    pub tracer: Option<Arc<fastbn_telemetry::Tracer>>,
}

/// The [`run_cases_serve`] core over a caller-built solver — the entry
/// point for cache-on / cache-off comparisons (pass a
/// [`cached_solver_for`] solver, or disable the server's in-window
/// `dedup` to measure raw per-request engine throughput).
pub fn run_cases_serve_on(
    solver: Arc<Solver>,
    workers: usize,
    max_batch: usize,
    max_delay: Duration,
    dedup: bool,
    cases: &[Evidence],
) -> ServeRun {
    let opts = ServeOpts {
        workers,
        max_batch,
        max_delay,
        dedup,
        telemetry: true,
        tracer: None,
    };
    run_cases_serve_with(solver, &opts, cases)
}

/// [`run_cases_serve_on`] with every server knob explicit — the runner
/// behind the telemetry-on vs telemetry-off overhead rows in
/// `serve --json`.
pub fn run_cases_serve_with(solver: Arc<Solver>, opts: &ServeOpts, cases: &[Evidence]) -> ServeRun {
    use std::sync::{Barrier, Mutex};

    let ServeOpts {
        workers,
        max_batch,
        max_delay,
        dedup,
        telemetry,
        ref tracer,
    } = *opts;
    let mut builder = fastbn_serve::Server::builder(Arc::clone(&solver))
        .workers(workers)
        .max_batch(max_batch)
        .max_delay(max_delay)
        .dedup(dedup)
        .telemetry(telemetry);
    if let Some(tracer) = tracer {
        builder = builder.tracer(Arc::clone(tracer));
    }
    let server = builder.build();
    let queries: Vec<Query> = cases
        .iter()
        .map(|ev| Query::new().evidence(ev.clone()))
        .collect();
    // Untimed warm-up pass through the server itself, so every worker's
    // pooled scratch (and the batch path's per-chunk states) is faulted
    // in before the clock starts.
    let warmup: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.clone()).expect("server accepting"))
        .collect();
    for pending in warmup {
        pending.wait().expect("workload evidence has P(e) > 0");
    }
    // Counters are bumped by workers *after* delivering each reply, so
    // give the warm-up's trailing increments a moment to land, then
    // baseline them away — the reported stats must describe the timed
    // run only.
    let warm_deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().completed < queries.len() as u64 && Instant::now() < warm_deadline {
        std::thread::yield_now();
    }
    let warm = server.stats();
    let warm_cache = solver.cache_stats();

    // Twice the windows' worth of in-flight clients keeps the queue
    // primed: while one window executes, the next window's requests are
    // already waiting, so workers never idle between dispatches (the
    // bounded queue caps actual buffering).
    let clients = (2 * workers * max_batch).min(queries.len()).max(1);
    let barrier = Barrier::new(clients + 1);
    let samples: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(queries.len()));
    let start = std::thread::scope(|scope| {
        for c in 0..clients {
            let server = &server;
            let queries = &queries;
            let barrier = &barrier;
            let samples = &samples;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(queries.len() / clients + 1);
                barrier.wait();
                // Closed loop over this client's share, round-robin by
                // index so every client sees the full evidence mix.
                for query in queries.iter().skip(c).step_by(clients) {
                    let begin = Instant::now();
                    let pending = server.submit(query.clone()).expect("server accepting");
                    pending.wait().expect("workload evidence has P(e) > 0");
                    mine.push(begin.elapsed());
                }
                samples.lock().expect("client panicked").extend(mine);
            });
        }
        // Time from the moment every client is at the barrier — spawn
        // and arrival laggards must not count against the server.
        barrier.wait();
        Instant::now()
        // Scope exit joins every client: all requests completed.
    });
    let total = start.elapsed();
    // Shutdown joins the workers, making the counters final; subtract
    // the warm-up baseline so the stats cover the timed run alone.
    server.shutdown();
    let end = server.stats();
    let stats = fastbn_serve::ServerStats {
        submitted: end.submitted - warm.submitted,
        rejected: end.rejected - warm.rejected,
        dequeued: end.dequeued - warm.dequeued,
        completed: end.completed - warm.completed,
        cancelled: end.cancelled - warm.cancelled,
        batches: end.batches - warm.batches,
        dedups: end.dedups - warm.dedups,
        worker_panics: end.worker_panics - warm.worker_panics,
    };
    let cache = solver
        .cache_stats()
        .map(|end| end.delta_since(&warm_cache.expect("cache present before and after")));
    let samples = samples.into_inner().expect("client panicked");
    assert_eq!(samples.len(), queries.len(), "every request measured");
    ServeRun {
        total,
        throughput: queries.len() as f64 / total.as_secs_f64(),
        latency: LatencySummary::from_samples(samples),
        stats,
        cache,
    }
}

/// One model's share of a mixed-traffic run.
#[derive(Debug, Clone)]
pub struct ModelLatency {
    /// The model id.
    pub model: String,
    /// Requests this model answered.
    pub requests: usize,
    /// Round-trip latency distribution for this model's requests.
    pub latency: LatencySummary,
}

/// One measured mixed-traffic (multi-model) serving run.
#[derive(Debug, Clone)]
pub struct MixedRun {
    /// Wall time from the clients' synchronized start to the last
    /// result.
    pub total: Duration,
    /// Requests completed per second, all models together.
    pub throughput: f64,
    /// Per-model latency breakdown, in first-appearance order of the
    /// traffic stream.
    pub per_model: Vec<ModelLatency>,
}

/// Drives an interleaved multi-model traffic stream through any
/// serving front end — `submit` is called as `submit(model_id, query)`
/// and must return the request's [`Pending`](fastbn_registry::Pending)
/// handle. Used for both sides of the `serve --models` comparison: a
/// `RoutedServer` (one shared pool) and a fleet of per-model `Server`s
/// (the closure routes to the right one).
///
/// Mirrors [`run_cases_serve`]: an untimed warm-up pass first, then
/// closed-loop concurrent clients each striding the stream, with
/// per-request round trips collected per model.
pub fn run_mixed_traffic<F>(traffic: &[(String, Query)], clients: usize, submit: F) -> MixedRun
where
    F: Fn(&str, Query) -> fastbn_registry::Pending + Sync,
{
    use std::sync::{Barrier, Mutex};

    assert!(!traffic.is_empty(), "mixed run needs traffic");
    // Stable per-model slots in first-appearance order.
    let mut order: Vec<String> = Vec::new();
    let model_slot: std::collections::HashMap<&str, usize> = traffic
        .iter()
        .map(|(model, _)| {
            if !order.contains(model) {
                order.push(model.clone());
            }
            let slot = order.iter().position(|m| m == model).expect("just pushed");
            (model.as_str(), slot)
        })
        .collect();

    let warmup: Vec<_> = traffic
        .iter()
        .map(|(model, query)| submit(model, query.clone()))
        .collect();
    for pending in warmup {
        pending.wait().expect("workload evidence has P(e) > 0");
    }

    let clients = clients.min(traffic.len()).max(1);
    let barrier = Barrier::new(clients + 1);
    let samples: Mutex<Vec<(usize, Duration)>> = Mutex::new(Vec::with_capacity(traffic.len()));
    let start = std::thread::scope(|scope| {
        for c in 0..clients {
            let submit = &submit;
            let barrier = &barrier;
            let samples = &samples;
            let model_slot = &model_slot;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(traffic.len() / clients + 1);
                barrier.wait();
                for (model, query) in traffic.iter().skip(c).step_by(clients) {
                    let begin = Instant::now();
                    let pending = submit(model, query.clone());
                    pending.wait().expect("workload evidence has P(e) > 0");
                    mine.push((model_slot[model.as_str()], begin.elapsed()));
                }
                samples.lock().expect("client panicked").extend(mine);
            });
        }
        barrier.wait();
        Instant::now()
    });
    let total = start.elapsed();
    let samples = samples.into_inner().expect("client panicked");
    assert_eq!(samples.len(), traffic.len(), "every request measured");
    let mut buckets: Vec<Vec<Duration>> = vec![Vec::new(); order.len()];
    for (slot, duration) in samples {
        buckets[slot].push(duration);
    }
    let per_model = order
        .into_iter()
        .zip(buckets)
        .map(|(model, samples)| ModelLatency {
            model,
            requests: samples.len(),
            latency: LatencySummary::from_samples(samples),
        })
        .collect();
    MixedRun {
        total,
        throughput: traffic.len() as f64 / total.as_secs_f64(),
        per_model,
    }
}

/// The paper's methodology: run each thread count, report the best.
pub fn best_over_threads(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    thread_counts: &[usize],
    cases: &[Evidence],
) -> EngineTiming {
    thread_counts
        .iter()
        .map(|&t| run_cases(kind, prepared.clone(), t, cases))
        .min_by(|a, b| a.total.cmp(&b.total))
        .expect("at least one thread count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::workload_by_name;

    #[test]
    fn timings_are_positive_and_best_is_min() {
        let w = workload_by_name("hailfinder").unwrap();
        let net = w.build();
        let prepared = prepare(&net);
        let cases = w.cases(&net, 2);
        let seq = run_cases(EngineKind::Seq, prepared.clone(), 1, &cases);
        assert!(seq.total > Duration::ZERO);
        let best = best_over_threads(EngineKind::Hybrid, prepared, &[1, 2], &cases);
        assert!(best.threads == 1 || best.threads == 2);
        assert!(best.per_case(2) > 0.0);
    }
}
