//! Timing helpers shared by the report binaries and the Criterion benches.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fastbn_bayesnet::{BayesianNetwork, Evidence};
use fastbn_inference::{EngineKind, Prepared, Query, QueryBatch, Solver};
use fastbn_jtree::JtreeOptions;

/// Builds the shared prepared structures for a network.
pub fn prepare(net: &BayesianNetwork) -> Arc<Prepared> {
    Arc::new(Prepared::new(net, &JtreeOptions::default()))
}

/// Compiles a solver of `kind` over shared prepared structures.
pub fn solver_for(kind: EngineKind, prepared: Arc<Prepared>, threads: usize) -> Solver {
    Solver::from_prepared(prepared)
        .engine(kind)
        .threads(threads)
        .build()
}

/// A measured engine run.
#[derive(Debug, Clone, Copy)]
pub struct EngineTiming {
    /// Thread count used.
    pub threads: usize,
    /// Total wall time for all cases.
    pub total: Duration,
}

impl EngineTiming {
    /// Seconds per case.
    pub fn per_case(&self, cases: usize) -> f64 {
        self.total.as_secs_f64() / cases.max(1) as f64
    }
}

/// Runs every case through one session of a fresh solver of `kind` and
/// returns the wall time of the query loop (solver construction excluded,
/// matching how the paper times repeated inference).
pub fn run_cases(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    threads: usize,
    cases: &[Evidence],
) -> EngineTiming {
    let solver = solver_for(kind, prepared, threads);
    let mut session = solver.session();
    // One untimed warm-up query faults in all working memory.
    if let Some(first) = cases.first() {
        let _ = session.posteriors(first);
    }
    let start = Instant::now();
    for evidence in cases {
        session
            .posteriors(evidence)
            .expect("workload evidence is sampled from the joint, so P(e) > 0");
    }
    EngineTiming {
        threads,
        total: start.elapsed(),
    }
}

/// Builds the all-marginals [`QueryBatch`] equivalent of `cases` (what
/// [`run_cases`] executes one call at a time).
pub fn batch_of(cases: &[Evidence]) -> QueryBatch {
    cases
        .iter()
        .map(|ev| Query::new().evidence(ev.clone()))
        .collect()
}

/// Times the same cases as [`run_cases`], but executed as one
/// `run_batch` call — the batched serving path the naive loop is
/// measured against. Batch construction and an untimed warm-up batch
/// are excluded from the timing, mirroring `run_cases`: the warm-up
/// must itself be a batch so the *per-chunk* pool scratch the outer
/// path draws is faulted in, not just the session's own state.
pub fn run_cases_batch(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    threads: usize,
    cases: &[Evidence],
) -> EngineTiming {
    let solver = solver_for(kind, prepared, threads);
    let batch = batch_of(cases);
    let mut session = solver.session();
    let _ = session.run_batch(&batch);
    let start = Instant::now();
    let results = session.run_batch(&batch);
    let total = start.elapsed();
    assert!(
        results.iter().all(Result::is_ok),
        "workload evidence is sampled from the joint, so every item succeeds"
    );
    EngineTiming { threads, total }
}

/// The paper's methodology: run each thread count, report the best.
pub fn best_over_threads(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    thread_counts: &[usize],
    cases: &[Evidence],
) -> EngineTiming {
    thread_counts
        .iter()
        .map(|&t| run_cases(kind, prepared.clone(), t, cases))
        .min_by(|a, b| a.total.cmp(&b.total))
        .expect("at least one thread count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::workload_by_name;

    #[test]
    fn timings_are_positive_and_best_is_min() {
        let w = workload_by_name("hailfinder").unwrap();
        let net = w.build();
        let prepared = prepare(&net);
        let cases = w.cases(&net, 2);
        let seq = run_cases(EngineKind::Seq, prepared.clone(), 1, &cases);
        assert!(seq.total > Duration::ZERO);
        let best = best_over_threads(EngineKind::Hybrid, prepared, &[1, 2], &cases);
        assert!(best.threads == 1 || best.threads == 2);
        assert!(best.per_case(2) > 0.0);
    }
}
