//! The `BENCH_*.json` **perf-trajectory schema (v1)** and its
//! reader/writer: every report binary can emit its measurements as one
//! machine-readable file (`--json <path>`), committed baselines live in
//! `perf/`, and the `gate` binary compares a fresh run against a
//! baseline and fails CI on a throughput regression or — for rows with
//! per-request latency — a p99 tail-latency blow-up.
//!
//! # Schema v1
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "serve",
//!   "quick": true,
//!   "machine": { "os": "linux", "arch": "x86_64", "cores": 2 },
//!   "rows": [
//!     {
//!       "network": "hailfinder", "engine": "hybrid", "mode": "serve",
//!       "threads": 2, "workers": 1, "cases": 384,
//!       "seconds": 0.41, "throughput": 937.1,
//!       "p50_us": 980.2, "p99_us": 4113.0,
//!       "counters": { "serve.batches": 55, "serve.dedups": 0 }
//!     }
//!   ]
//! }
//! ```
//!
//! Row identity for baseline comparison is
//! `network|engine|mode|threads|workers` ([`BenchRow::key`]); `cases`
//! and the measurements are payload. `p50_us`/`p99_us` are omitted for
//! modes with no per-request latency (plain loops), `counters` carries
//! whatever telemetry counters the mode exposes. Absolute numbers are
//! only comparable on the same machine — the `machine` block is there
//! so a cross-machine diff is recognizable as apples-to-oranges.

use std::io;
use std::path::Path;

use fastbn_telemetry::Json;

/// The schema version this crate writes and the `gate` bin accepts.
pub const SCHEMA_VERSION: u64 = 1;

/// Where the measurement ran; recorded so baselines from a different
/// machine are visibly non-comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// `std::env::consts::OS` (`linux`, `macos`, …).
    pub os: String,
    /// `std::env::consts::ARCH` (`x86_64`, `aarch64`, …).
    pub arch: String,
    /// Logical CPUs visible to the process.
    pub cores: usize,
}

impl MachineInfo {
    /// The current machine.
    pub fn current() -> MachineInfo {
        MachineInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cores: fastbn_parallel::available_threads(),
        }
    }
}

/// One measured configuration: a (network, engine, mode, threads,
/// workers) point and its numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Workload network name (`hailfinder`, …).
    pub network: String,
    /// Engine id (`hybrid`, `seq`, …), or `-` where the mode has none.
    pub engine: String,
    /// Execution mode: `loop`, `batch`, `cache`, `serve`,
    /// `serve_telem_off`, `routed`, `separate`, `reference`, `best`, …
    pub mode: String,
    /// Engine worker threads inside each query.
    pub threads: usize,
    /// Serving workers (0 for non-serving modes).
    pub workers: usize,
    /// Requests/cases measured.
    pub cases: usize,
    /// Wall seconds for the timed window.
    pub seconds: f64,
    /// Cases per second (the gated quantity).
    pub throughput: f64,
    /// Median round-trip latency in microseconds (serving modes).
    pub p50_us: Option<f64>,
    /// p99 round-trip latency in microseconds (serving modes).
    pub p99_us: Option<f64>,
    /// Telemetry counters worth trending, by metric name.
    pub counters: Vec<(String, u64)>,
}

impl BenchRow {
    /// A row with the five identity fields set and everything else
    /// zero/empty — fill in the measurements with the builder methods.
    pub fn new(
        network: &str,
        engine: &str,
        mode: &str,
        threads: usize,
        workers: usize,
    ) -> BenchRow {
        BenchRow {
            network: network.to_string(),
            engine: engine.to_string(),
            mode: mode.to_string(),
            threads,
            workers,
            cases: 0,
            seconds: 0.0,
            throughput: 0.0,
            p50_us: None,
            p99_us: None,
            counters: Vec::new(),
        }
    }

    /// Sets the timed window: `cases` completed in `seconds`; derives
    /// throughput.
    pub fn timed(mut self, cases: usize, seconds: f64) -> BenchRow {
        self.cases = cases;
        self.seconds = seconds;
        self.throughput = if seconds > 0.0 {
            cases as f64 / seconds
        } else {
            0.0
        };
        self
    }

    /// Attaches round-trip latency percentiles (microseconds).
    pub fn latency_us(mut self, p50: f64, p99: f64) -> BenchRow {
        self.p50_us = Some(p50);
        self.p99_us = Some(p99);
        self
    }

    /// Attaches one named counter.
    pub fn counter(mut self, name: &str, value: u64) -> BenchRow {
        self.counters.push((name.to_string(), value));
        self
    }

    /// The identity a baseline comparison matches rows by.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|t{}|w{}",
            self.network, self.engine, self.mode, self.threads, self.workers
        )
    }

    fn to_json(&self) -> Json {
        let mut row = Json::obj()
            .set("network", self.network.as_str())
            .set("engine", self.engine.as_str())
            .set("mode", self.mode.as_str())
            .set("threads", self.threads as u64)
            .set("workers", self.workers as u64)
            .set("cases", self.cases as u64)
            .set("seconds", self.seconds)
            .set("throughput", self.throughput);
        if let (Some(p50), Some(p99)) = (self.p50_us, self.p99_us) {
            row = row.set("p50_us", p50).set("p99_us", p99);
        }
        if !self.counters.is_empty() {
            let mut counters = Json::obj();
            for (name, value) in &self.counters {
                counters = counters.set(name, *value);
            }
            row = row.set("counters", counters);
        }
        row
    }

    fn from_json(row: &Json, index: usize) -> Result<BenchRow, String> {
        let field = |name: &str| {
            row.get(name)
                .ok_or_else(|| format!("row {index}: missing field {name:?}"))
        };
        let string = |name: &str| {
            field(name)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("row {index}: field {name:?} must be a string"))
        };
        let number = |name: &str| {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("row {index}: field {name:?} must be a number"))
        };
        let counters = match row.get("counters") {
            None => Vec::new(),
            Some(Json::Obj(entries)) => entries
                .iter()
                .map(|(name, value)| {
                    value
                        .as_u64()
                        .map(|v| (name.clone(), v))
                        .ok_or_else(|| format!("row {index}: counter {name:?} must be a u64"))
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err(format!("row {index}: \"counters\" must be an object")),
        };
        let seconds = number("seconds")?;
        let throughput = number("throughput")?;
        if !(seconds.is_finite() && throughput.is_finite()) {
            return Err(format!("row {index}: non-finite measurement"));
        }
        Ok(BenchRow {
            network: string("network")?,
            engine: string("engine")?,
            mode: string("mode")?,
            threads: number("threads")? as usize,
            workers: number("workers")? as usize,
            cases: number("cases")? as usize,
            seconds,
            throughput,
            p50_us: row.get("p50_us").and_then(Json::as_f64),
            p99_us: row.get("p99_us").and_then(Json::as_f64),
            counters,
        })
    }
}

/// One emitted `BENCH_<name>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Which binary produced it (`sweep`, `serve`, `table1`, …).
    pub bench: String,
    /// Whether the quick (CI smoke) preset was active.
    pub quick: bool,
    /// Where it ran.
    pub machine: MachineInfo,
    /// The measurements.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report for the current machine.
    pub fn new(bench: &str, quick: bool) -> BenchReport {
        BenchReport {
            bench: bench.to_string(),
            quick,
            machine: MachineInfo::current(),
            rows: Vec::new(),
        }
    }

    /// Appends a measured row.
    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// The row with `key`, if measured.
    pub fn row(&self, key: &str) -> Option<&BenchRow> {
        self.rows.iter().find(|row| row.key() == key)
    }

    /// Serializes to schema v1.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("bench", self.bench.as_str())
            .set("quick", self.quick)
            .set(
                "machine",
                Json::obj()
                    .set("os", self.machine.os.as_str())
                    .set("arch", self.machine.arch.as_str())
                    .set("cores", self.machine.cores as u64),
            )
            .set(
                "rows",
                Json::Arr(self.rows.iter().map(BenchRow::to_json).collect()),
            )
    }

    /// Validates and deserializes a schema-v1 document. Every error
    /// names the offending field — this is the `gate` bin's schema
    /// check, so messages must stand alone in CI logs.
    pub fn from_json(json: &Json) -> Result<BenchReport, String> {
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing or non-integer \"schema_version\"")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} unsupported (this reader understands {SCHEMA_VERSION})"
            ));
        }
        let bench = json
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing \"bench\" name")?
            .to_string();
        let quick = match json.get("quick") {
            Some(Json::Bool(quick)) => *quick,
            _ => return Err("missing or non-boolean \"quick\"".to_string()),
        };
        let machine = json.get("machine").ok_or("missing \"machine\" block")?;
        let machine = MachineInfo {
            os: machine
                .get("os")
                .and_then(Json::as_str)
                .ok_or("machine.os must be a string")?
                .to_string(),
            arch: machine
                .get("arch")
                .and_then(Json::as_str)
                .ok_or("machine.arch must be a string")?
                .to_string(),
            cores: machine
                .get("cores")
                .and_then(Json::as_u64)
                .ok_or("machine.cores must be an integer")? as usize,
        };
        let rows = match json.get("rows") {
            Some(Json::Arr(rows)) => rows
                .iter()
                .enumerate()
                .map(|(index, row)| BenchRow::from_json(row, index))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing \"rows\" array".to_string()),
        };
        if rows.is_empty() {
            return Err("\"rows\" must not be empty".to_string());
        }
        let mut keys: Vec<String> = rows.iter().map(BenchRow::key).collect();
        keys.sort_unstable();
        if let Some(dup) = keys.windows(2).find(|pair| pair[0] == pair[1]) {
            return Err(format!("duplicate row key {:?}", dup[0]));
        }
        Ok(BenchReport {
            bench,
            quick,
            machine,
            rows,
        })
    }

    /// Writes the report as pretty JSON (schema v1) to `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }

    /// Reads and validates a report file.
    pub fn load(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
        let json =
            Json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
        BenchReport::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Tail latencies below this (microseconds) are not gated: at
/// micro-batching window scale, a couple hundred microseconds of p99 is
/// scheduler noise, and a ratio over it flags nothing real.
pub const P99_FLOOR_US: f64 = 200.0;

/// One row's baseline-vs-candidate verdict from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowComparison {
    /// The matched row identity.
    pub key: String,
    /// Baseline throughput (cases/s).
    pub baseline: f64,
    /// Candidate throughput (cases/s).
    pub candidate: f64,
    /// `candidate / baseline - 1`: negative is a slowdown.
    pub change: f64,
    /// Whether the row breaches the throughput threshold.
    pub regressed: bool,
    /// `candidate_p99 / baseline_p99 - 1`: positive is a latency
    /// *growth*. `None` when either side lacks latency or the baseline
    /// p99 sits under [`P99_FLOOR_US`].
    pub p99_change: Option<f64>,
    /// Whether the p99 growth breaches the threshold.
    pub p99_regressed: bool,
}

/// The outcome of gating `candidate` against `baseline`.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Per-row verdicts for every baseline row found in the candidate.
    pub rows: Vec<RowComparison>,
    /// Baseline row keys the candidate no longer measures — a gate
    /// failure (silently dropping a slow configuration must not pass).
    pub missing: Vec<String>,
}

impl GateOutcome {
    /// True when no row regressed (throughput *or* p99) and none went
    /// missing.
    pub fn passed(&self) -> bool {
        self.missing.is_empty()
            && self
                .rows
                .iter()
                .all(|row| !row.regressed && !row.p99_regressed)
    }
}

/// Gates `candidate` against `baseline`: every baseline row must be
/// present in the candidate with throughput no worse than
/// `(1 - threshold) ×` its baseline value, and — where both rows carry
/// per-request latency and the baseline p99 clears [`P99_FLOOR_US`] —
/// p99 latency no worse than `(1 + threshold) ×` the baseline (tail
/// growth fails even when throughput holds, e.g. one straggler worker
/// in an otherwise fast run). Candidate-only rows (new configurations)
/// are ignored — they become gated once the baseline is refreshed.
pub fn compare(baseline: &BenchReport, candidate: &BenchReport, threshold: f64) -> GateOutcome {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for base in &baseline.rows {
        let key = base.key();
        match candidate.row(&key) {
            None => missing.push(key),
            Some(cand) => {
                let change = if base.throughput > 0.0 {
                    cand.throughput / base.throughput - 1.0
                } else {
                    0.0
                };
                let p99_change = match (base.p99_us, cand.p99_us) {
                    (Some(base_p99), Some(cand_p99)) if base_p99 >= P99_FLOOR_US => {
                        Some(cand_p99 / base_p99 - 1.0)
                    }
                    _ => None,
                };
                rows.push(RowComparison {
                    key,
                    baseline: base.throughput,
                    candidate: cand.throughput,
                    change,
                    regressed: change < -threshold,
                    p99_change,
                    p99_regressed: p99_change.is_some_and(|growth| growth > threshold),
                });
            }
        }
    }
    GateOutcome { rows, missing }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut report = BenchReport::new("serve", true);
        report.push(
            BenchRow::new("hailfinder", "hybrid", "serve", 2, 1)
                .timed(384, 0.4)
                .latency_us(950.0, 4100.0)
                .counter("serve.batches", 55),
        );
        report.push(BenchRow::new("hailfinder", "hybrid", "batch", 2, 0).timed(384, 0.3));
        report
    }

    #[test]
    fn report_round_trips_through_schema_v1() {
        let report = sample();
        let text = report.to_json().to_pretty();
        let back = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.rows[0].key(), "hailfinder|hybrid|serve|t2|w1");
        assert!(back.rows[0].throughput > 900.0);
    }

    #[test]
    fn schema_violations_are_named() {
        let mut json = sample().to_json();
        assert!(BenchReport::from_json(&json).is_ok());
        json = json.set("schema_version", 2u64);
        let err = BenchReport::from_json(&json).unwrap_err();
        assert!(err.contains("schema_version 2"), "{err}");

        let no_rows = Json::parse(
            r#"{"schema_version":1,"bench":"x","quick":false,
                "machine":{"os":"linux","arch":"x86_64","cores":2},"rows":[]}"#,
        )
        .unwrap();
        let err = BenchReport::from_json(&no_rows).unwrap_err();
        assert!(err.contains("must not be empty"), "{err}");

        let mut dup = sample();
        let row = dup.rows[0].clone();
        dup.push(row);
        let err = BenchReport::from_json(&dup.to_json()).unwrap_err();
        assert!(err.contains("duplicate row key"), "{err}");
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let baseline = sample();
        let mut candidate = sample();
        // 20% slower: inside a 30% threshold, outside a 10% one.
        candidate.rows[0].throughput *= 0.8;
        let outcome = compare(&baseline, &candidate, 0.30);
        assert!(outcome.passed(), "{outcome:?}");
        let outcome = compare(&baseline, &candidate, 0.10);
        assert!(!outcome.passed());
        assert_eq!(
            outcome.rows.iter().filter(|row| row.regressed).count(),
            1,
            "only the slowed row regresses"
        );

        // A dropped row fails the gate even when every present row is fine.
        candidate.rows.remove(1);
        candidate.rows[0].throughput *= 2.0;
        let outcome = compare(&baseline, &candidate, 0.30);
        assert!(!outcome.passed());
        assert_eq!(outcome.missing, vec!["hailfinder|hybrid|batch|t2|w0"]);
    }

    #[test]
    fn gate_fails_on_p99_growth_even_at_equal_throughput() {
        let baseline = sample();
        let mut candidate = sample();
        // Throughput identical, tail 40% worse: a straggler, not a
        // slowdown — the latency gate must still catch it.
        candidate.rows[0].p99_us = Some(4100.0 * 1.4);
        let outcome = compare(&baseline, &candidate, 0.30);
        assert!(!outcome.passed());
        let row = &outcome.rows[0];
        assert!(!row.regressed, "throughput did not move");
        assert!(row.p99_regressed);
        assert!((row.p99_change.unwrap() - 0.4).abs() < 1e-9);

        // 20% growth passes a 30% threshold.
        candidate.rows[0].p99_us = Some(4100.0 * 1.2);
        assert!(compare(&baseline, &candidate, 0.30).passed());

        // Rows without latency (the batch row) are never latency-gated,
        // and a baseline p99 under the floor is noise, not a gate.
        let mut tiny = sample();
        tiny.rows[0].p99_us = Some(P99_FLOOR_US / 2.0);
        let mut blown = tiny.clone();
        blown.rows[0].p99_us = Some(P99_FLOOR_US * 10.0);
        let outcome = compare(&tiny, &blown, 0.30);
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(outcome.rows[0].p99_change, None);
    }
}
