//! Loop schedules, modelled on OpenMP's `schedule(static)` and
//! `schedule(dynamic, grain)` clauses.

/// How a `parallel_for` iteration space is divided into chunks.
///
/// The Fast-BNI engines are distinguished by *which* loops they
/// parallelize; the schedule controls how each such loop is carved up:
///
/// * [`Schedule::Static`] splits the range into one contiguous chunk per
///   pool thread (OpenMP `schedule(static)`). Chunks are still *claimed*
///   atomically, so correctness never depends on every worker showing up,
///   but when all threads participate each executes exactly one chunk.
/// * [`Schedule::Dynamic`] carves the range into fixed-size chunks claimed
///   on demand (OpenMP `schedule(dynamic, grain)`), trading claim traffic
///   for load balance — important for the skewed potential-table sizes the
///   paper highlights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One near-equal contiguous chunk per thread.
    Static,
    /// Fixed-size chunks of `grain` iterations, claimed dynamically.
    Dynamic {
        /// Iterations per chunk; clamped to at least 1.
        grain: usize,
    },
}

impl Schedule {
    /// A dynamic schedule with a grain targeting roughly `chunks_per_thread`
    /// chunks per pool thread — the idiom used by the hybrid engine to pick
    /// a grain from a flattened layer's total entry count.
    pub fn dynamic_for(len: usize, threads: usize, chunks_per_thread: usize) -> Self {
        let denom = threads.max(1) * chunks_per_thread.max(1);
        Schedule::Dynamic {
            grain: (len / denom).max(1),
        }
    }

    /// Number of chunks this schedule produces for `len` iterations on a
    /// pool of `threads` threads.
    pub fn chunk_count(&self, len: usize, threads: usize) -> usize {
        if len == 0 {
            return 0;
        }
        match *self {
            Schedule::Static => threads.max(1).min(len),
            Schedule::Dynamic { grain } => {
                let g = grain.max(1);
                len.div_ceil(g)
            }
        }
    }

    /// Half-open bounds of chunk `chunk` for `len` iterations on `threads`
    /// threads. `chunk` must be `< chunk_count(len, threads)`.
    pub fn chunk_bounds(&self, chunk: usize, len: usize, threads: usize) -> (usize, usize) {
        match *self {
            Schedule::Static => {
                let n = threads.max(1).min(len);
                debug_assert!(chunk < n);
                // Distribute the remainder over the first `rem` chunks so
                // chunk sizes differ by at most one.
                let base = len / n;
                let rem = len % n;
                let start = chunk * base + chunk.min(rem);
                let size = base + usize::from(chunk < rem);
                (start, start + size)
            }
            Schedule::Dynamic { grain } => {
                let g = grain.max(1);
                let start = chunk * g;
                debug_assert!(start < len);
                (start, (start + g).min(len))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(sched: Schedule, len: usize, threads: usize) {
        let mut seen = vec![false; len];
        let chunks = sched.chunk_count(len, threads);
        let mut prev_end = 0;
        for c in 0..chunks {
            let (s, e) = sched.chunk_bounds(c, len, threads);
            assert!(s < e, "empty chunk {c} for {sched:?} len={len} t={threads}");
            assert_eq!(s, prev_end, "chunks must be contiguous");
            prev_end = e;
            for (i, slot) in seen.iter_mut().enumerate().take(e).skip(s) {
                assert!(!*slot, "index {i} covered twice");
                *slot = true;
            }
        }
        assert_eq!(prev_end, len);
        assert!(seen.iter().all(|&b| b), "all indices covered");
    }

    #[test]
    fn static_covers_exactly() {
        for len in [1usize, 2, 3, 7, 64, 1000, 1001] {
            for t in [1usize, 2, 3, 4, 7, 32, 2000] {
                cover(Schedule::Static, len, t);
            }
        }
    }

    #[test]
    fn dynamic_covers_exactly() {
        for len in [1usize, 2, 63, 64, 65, 1000] {
            for grain in [1usize, 2, 7, 64, 4096] {
                cover(Schedule::Dynamic { grain }, len, 4);
            }
        }
    }

    #[test]
    fn static_chunk_sizes_differ_by_at_most_one() {
        let sched = Schedule::Static;
        let (len, t) = (103, 8);
        let sizes: Vec<usize> = (0..sched.chunk_count(len, t))
            .map(|c| {
                let (s, e) = sched.chunk_bounds(c, len, t);
                e - s
            })
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn zero_len_has_zero_chunks() {
        assert_eq!(Schedule::Static.chunk_count(0, 4), 0);
        assert_eq!(Schedule::Dynamic { grain: 8 }.chunk_count(0, 4), 0);
    }

    #[test]
    fn grain_zero_is_clamped() {
        let sched = Schedule::Dynamic { grain: 0 };
        assert_eq!(sched.chunk_count(5, 4), 5);
        cover(sched, 5, 4);
    }

    #[test]
    fn dynamic_for_targets_chunks_per_thread() {
        let sched = Schedule::dynamic_for(1024, 4, 4);
        match sched {
            Schedule::Dynamic { grain } => assert_eq!(grain, 64),
            _ => unreachable!(),
        }
        // Degenerate inputs never panic and never produce grain 0.
        match Schedule::dynamic_for(3, 64, 8) {
            Schedule::Dynamic { grain } => assert_eq!(grain, 1),
            _ => unreachable!(),
        }
    }

    #[test]
    fn dynamic_grain_exceeding_len_is_one_clamped_chunk() {
        let sched = Schedule::Dynamic { grain: 100 };
        assert_eq!(sched.chunk_count(7, 4), 1);
        assert_eq!(sched.chunk_bounds(0, 7, 4), (0, 7));
        cover(sched, 7, 4);
    }

    #[test]
    fn dynamic_final_chunk_is_clamped_to_len() {
        // len not a multiple of grain: the last chunk must end exactly at
        // `len`, never past it.
        let sched = Schedule::Dynamic { grain: 8 };
        let len = 21;
        let last = sched.chunk_count(len, 4) - 1;
        assert_eq!(sched.chunk_bounds(last, len, 4), (16, 21));
        cover(sched, len, 4);
    }

    #[test]
    fn static_more_threads_than_items() {
        let sched = Schedule::Static;
        assert_eq!(sched.chunk_count(3, 16), 3);
        cover(sched, 3, 16);
    }
}
