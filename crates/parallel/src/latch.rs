//! A one-shot completion latch.
//!
//! The caller of a parallel region blocks on the latch until the last unit
//! of work has been retired. Parallel regions in junction-tree propagation
//! are often microseconds long, so `wait` spins briefly on an atomic flag
//! before falling back to a `parking_lot` mutex/condvar sleep — the
//! spin-then-block pattern of Rust Atomics & Locks ch. 9. The flag is the
//! single source of truth; the mutex exists only to park late waiters.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::{Condvar, Mutex};

/// Iterations of the spin fast path before parking. Regions shorter than
/// a few microseconds complete well within this budget.
const SPIN_LIMIT: u32 = 4096;

/// One-shot latch: `wait` blocks until `set` has been called once.
///
/// The latch is the synchronization point that makes the pool's
/// lifetime-erasure sound: a region's borrowed closure is guaranteed to be
/// live until the latch is set, and the latch is set only after the final
/// chunk of work has returned (see `region.rs`).
#[derive(Default)]
pub struct CompletionLatch {
    flag: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CompletionLatch {
    /// Creates an unset latch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the latch as set and wakes all parked waiters.
    pub fn set(&self) {
        // ORDERING: Release pairs with the Acquire loads in `wait`/
        // `is_set`; taking
        // the lock before notifying closes the race with a waiter that
        // checked the flag and is about to park.
        self.flag.store(true, Ordering::Release);
        let _guard = self.lock.lock();
        self.cond.notify_all();
    }

    /// Blocks the calling thread until `set` is called (returns
    /// immediately if it already was). Spins briefly first.
    pub fn wait(&self) {
        for _ in 0..SPIN_LIMIT {
            // ORDERING: Acquire pairs with the Release store in `set`.
            if self.flag.load(Ordering::Acquire) {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock();
        // ORDERING: Acquire — same pairing as the spin loop above.
        while !self.flag.load(Ordering::Acquire) {
            self.cond.wait(&mut guard);
        }
    }

    /// Non-blocking probe, used by tests.
    pub fn is_set(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in `set`.
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn set_then_wait_returns_immediately() {
        let latch = CompletionLatch::new();
        latch.set();
        latch.wait();
        assert!(latch.is_set());
    }

    #[test]
    fn wait_blocks_until_set() {
        let latch = Arc::new(CompletionLatch::new());
        let l2 = Arc::clone(&latch);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            l2.set();
        });
        latch.wait();
        assert!(latch.is_set());
        handle.join().unwrap();
    }

    #[test]
    fn many_waiters_are_all_released() {
        let latch = Arc::new(CompletionLatch::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&latch);
            handles.push(std::thread::spawn(move || l.wait()));
        }
        std::thread::sleep(Duration::from_millis(10));
        latch.set();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stress_set_wait_pairs() {
        // Many short-lived latches across two threads: exercises both the
        // spin path and the park path.
        for _ in 0..2000 {
            let latch = Arc::new(CompletionLatch::new());
            let l2 = Arc::clone(&latch);
            let h = std::thread::spawn(move || l2.set());
            latch.wait();
            h.join().unwrap();
            assert!(latch.is_set());
        }
    }
}
