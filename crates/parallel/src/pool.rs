//! The persistent worker pool.
//!
//! fastbn: audited-raw-ptr

use std::ops::Range;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{Receiver, Sender};
use fastbn_telemetry::{Counter, MetricsRegistry};
use parking_lot::Mutex;

use crate::region::Region;
use crate::schedule::Schedule;

/// A snapshot of a pool's region traffic — how many parallel regions
/// tenants have issued and how busy the team is right now.
///
/// `regions_started - regions_finished` is the **occupancy**: regions
/// in flight at the snapshot instant (0 on a quiescent pool). The
/// counters use the telemetry staging discipline (`finished` read
/// before `started`), so occupancy can never appear negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool width, including the participating caller.
    pub threads: usize,
    /// Parallel regions entered (every `parallel_for`-family call over
    /// a non-empty range, including degenerate single-thread/inline
    /// executions; empty ranges run nothing and count nothing).
    pub regions_started: u64,
    /// Regions fully retired.
    pub regions_finished: u64,
    /// Total items covered by all regions (the `len` of each range).
    pub items: u64,
}

impl PoolStats {
    /// Regions in flight when the snapshot was taken.
    pub fn occupancy(&self) -> u64 {
        self.regions_started - self.regions_finished
    }
}

/// A fixed-width fork-join pool with OpenMP-like `parallel for` entry
/// points.
///
/// A pool of width `t` owns `t - 1` background workers; the thread calling
/// [`ThreadPool::parallel_for`] participates as the `t`-th member, exactly
/// like an OpenMP parallel region's encountering thread. `t = 1` therefore
/// degenerates to inline sequential execution with no synchronization —
/// matching how the paper's `t = 1` OpenMP measurements behave.
///
/// All entry points take `&self`; concurrent regions from multiple threads
/// are permitted and simply interleave on the worker team. Nested
/// `parallel_for` calls from inside a body are also permitted (the nested
/// caller drains its own region, so progress is guaranteed), though the
/// Fast-BNI engines never need them — avoiding nesting is precisely the
/// point of the paper's flattening.
///
/// # Sharing one pool between tenants
///
/// Because every entry point takes `&self` and regions interleave
/// safely, a single pool can back any number of independent tenants —
/// multiple engine instances, multiple compiled models, batch chunks —
/// instead of each spawning its own worker team. Construct one with
/// [`ThreadPool::shared`] and hand the `Arc` to each tenant: N models
/// then contend for `t` workers (the machine's cores) rather than
/// oversubscribing the host with `N × t` threads. Determinism is
/// unaffected: a region's chunk layout depends only on its schedule and
/// the pool width, never on which other tenants' regions are in flight
/// (asserted by `shared_pool_tenants_do_not_perturb_each_other` below).
pub struct ThreadPool {
    sender: Option<Sender<Arc<Region>>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    regions_started: Counter,
    regions_finished: Counter,
    items: Counter,
}

impl ThreadPool {
    /// Spawns a pool of `threads` total members (`threads - 1` background
    /// workers). `threads` is clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = crossbeam_channel::unbounded::<Arc<Region>>();
        let workers = (1..threads)
            .map(|i| {
                let rx: Receiver<Arc<Region>> = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("fastbn-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("failed to spawn fastbn worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            threads,
            regions_started: Counter::new(),
            regions_finished: Counter::new(),
            items: Counter::new(),
        }
    }

    /// Spawns a pool wrapped in an [`Arc`], ready to be **shared** by
    /// several tenants (engines, compiled models, serving workers). This
    /// is the constructor the multi-model registry hands to every model
    /// it compiles, so mixed traffic across many networks runs on one
    /// worker team instead of one team per model.
    pub fn shared(threads: usize) -> Arc<Self> {
        Arc::new(ThreadPool::new(threads))
    }

    /// Pool width, including the participating caller.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A snapshot of the pool's region traffic. Reads `finished` before
    /// `started`, so [`PoolStats::occupancy`] never underflows even
    /// while tenants race through regions.
    pub fn stats(&self) -> PoolStats {
        let regions_finished = self.regions_finished.get_seq();
        let regions_started = self.regions_started.get_seq();
        PoolStats {
            threads: self.threads,
            regions_started,
            regions_finished,
            items: self.items.get(),
        }
    }

    /// Writes the pool's traffic counters into `metrics` as gauges
    /// under `{scope}.…` — how the serving stack folds pool occupancy
    /// into one metrics snapshot alongside its own families.
    pub fn export_metrics(&self, metrics: &MetricsRegistry, scope: &str) {
        let stats = self.stats();
        metrics.set_gauge(&format!("{scope}.threads"), stats.threads as u64);
        metrics.set_gauge(&format!("{scope}.regions_started"), stats.regions_started);
        metrics.set_gauge(&format!("{scope}.regions_finished"), stats.regions_finished);
        metrics.set_gauge(&format!("{scope}.occupancy"), stats.occupancy());
        metrics.set_gauge(&format!("{scope}.items"), stats.items);
    }

    /// Runs `body(start, end)` over every chunk of `range` under `sched`.
    ///
    /// This is the primitive the table operations build on: a chunk body
    /// can set up incremental index-mapping state once per chunk (the
    /// paper's "index mapping computations") and then stream through the
    /// chunk.
    pub fn parallel_for_chunks<F>(&self, range: Range<usize>, sched: Schedule, body: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        self.regions_started.inc_seq();
        self.items.add(len as u64);
        // Retire the region even if a chunk body panics (the panic
        // propagates to the caller; occupancy must not leak).
        let _retire = RetireRegion(&self.regions_finished);
        let offset = range.start;
        let shifted = move |s: usize, e: usize| body(offset + s, offset + e);
        if self.threads == 1 {
            // Still honour the schedule's chunk layout so per-chunk state
            // (and fold order, for `parallel_reduce`) is identical to the
            // multi-threaded execution.
            for c in 0..sched.chunk_count(len, 1) {
                let (s, e) = sched.chunk_bounds(c, len, 1);
                shifted(s, e);
            }
            return;
        }
        // SAFETY: `region` (and thus the borrow of `shifted`) is kept alive
        // by this frame until `region.wait()` returns, which per the region
        // protocol happens only after every body invocation has completed.
        let region = Arc::new(unsafe { Region::new(&shifted, len, self.threads, sched) });
        let sender = self
            .sender
            .as_ref()
            .expect("pool sender alive while pool exists");
        // One wake-up per background worker; extras are cheap no-ops.
        for _ in 1..self.threads {
            sender
                .send(Arc::clone(&region))
                .expect("worker channel closed while pool exists");
        }
        region.work();
        region.wait();
    }

    /// Runs `body(i)` for every `i` in `range` under `sched`.
    pub fn parallel_for<F>(&self, range: Range<usize>, sched: Schedule, body: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for_chunks(range, sched, |s, e| {
            for i in s..e {
                body(i);
            }
        });
    }

    /// Parallel map-reduce: `map(start, end)` produces one partial value per
    /// chunk; partials are folded with `fold` in **chunk order**, starting
    /// from `identity`.
    ///
    /// Folding in chunk order makes the result deterministic for a fixed
    /// schedule; with a `Dynamic` schedule the chunking is independent of
    /// the pool width, so results are bit-identical across thread counts —
    /// the determinism policy of DESIGN.md §6.
    pub fn parallel_reduce<T, M, F>(
        &self,
        range: Range<usize>,
        sched: Schedule,
        identity: T,
        map: M,
        fold: F,
    ) -> T
    where
        T: Send,
        M: Fn(usize, usize) -> T + Sync,
        F: Fn(T, T) -> T,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return identity;
        }
        if self.threads == 1 {
            // The multi-threaded path counts its region in the inner
            // `parallel_for_chunks` call; mirror that accounting here.
            self.regions_started.inc_seq();
            self.items.add(len as u64);
            let _retire = RetireRegion(&self.regions_finished);
            let offset = range.start;
            let mut acc = identity;
            for c in 0..sched.chunk_count(len, 1) {
                let (s, e) = sched.chunk_bounds(c, len, 1);
                acc = fold(acc, map(offset + s, offset + e));
            }
            return acc;
        }
        let offset = range.start;
        let partials: Mutex<Vec<(usize, T)>> =
            Mutex::new(Vec::with_capacity(sched.chunk_count(len, self.threads)));
        self.parallel_for_chunks(0..len, sched, |s, e| {
            let value = map(offset + s, offset + e);
            // Key partials by chunk start so the final fold order is the
            // chunk order, independent of which thread ran which chunk.
            partials.lock().push((s, value));
        });
        let mut partials = partials.into_inner();
        partials.sort_by_key(|&(start, _)| start);
        partials
            .into_iter()
            .fold(identity, |acc, (_, v)| fold(acc, v))
    }

    /// Fills `out[i] = f(i)` in parallel. A convenience over
    /// `parallel_for_chunks` for the common "compute a fresh table" case,
    /// where disjoint chunks give each task exclusive access to its slice.
    pub fn parallel_fill<T, F>(&self, out: &mut [T], sched: Schedule, f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let ptr = SendPtr(out.as_mut_ptr());
        let len = out.len();
        self.parallel_for_chunks(0..len, sched, |s, e| {
            for i in s..e {
                // SAFETY: chunks are disjoint, so each element is written by
                // exactly one task; `ptr` stays valid for the region's
                // lifetime because `out` is borrowed for the whole call.
                unsafe { ptr.get().add(i).write(f(i)) };
            }
        });
    }

    /// Runs `body(start, chunk)` over every chunk of `out` under `sched`,
    /// handing each invocation an exclusive `&mut` slice of that chunk's
    /// elements (`start` is the chunk's offset within `out`, for callers
    /// indexing side tables).
    ///
    /// This is the entry point for *batched* work: a chunk body can set up
    /// shared per-chunk state once — e.g. draw one scratch buffer from a
    /// pool — and then fill its slice item by item. Bodies may issue
    /// nested `parallel_for` calls on the same pool (nested-region
    /// batches); the nested caller drains its own region, so progress is
    /// guaranteed even when every pool member is busy with an outer chunk.
    pub fn parallel_chunks_mut<T, F>(&self, out: &mut [T], sched: Schedule, body: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let ptr = SendPtr(out.as_mut_ptr());
        let len = out.len();
        self.parallel_for_chunks(0..len, sched, |s, e| {
            // SAFETY: chunks are disjoint half-open subranges of `0..len`,
            // so each element is exclusively borrowed by exactly one task;
            // `ptr` stays valid for the region's lifetime because `out` is
            // borrowed for the whole call.
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
            body(s, chunk);
        });
    }
}

/// Background worker: spin briefly between regions before parking on the
/// channel. Junction-tree layers issue microsecond-scale regions
/// back-to-back, so a short spin keeps wake-up latency off the critical
/// path; the bounded budget avoids burning a core during long sequential
/// phases.
fn worker_loop(rx: Receiver<Arc<Region>>) {
    const SPIN_LIMIT: u32 = 16_384;
    let mut spin_budget = SPIN_LIMIT;
    loop {
        match rx.try_recv() {
            Ok(region) => {
                region.work();
                spin_budget = SPIN_LIMIT;
            }
            Err(crossbeam_channel::TryRecvError::Empty) => {
                if spin_budget > 0 {
                    spin_budget -= 1;
                    std::hint::spin_loop();
                } else {
                    match rx.recv() {
                        Ok(region) => {
                            region.work();
                            spin_budget = SPIN_LIMIT;
                        }
                        Err(_) => return,
                    }
                }
            }
            Err(crossbeam_channel::TryRecvError::Disconnected) => return,
        }
    }
}

/// Bumps the regions-finished counter on scope exit — including
/// unwinds, so a panicking chunk body can't leak pool occupancy.
struct RetireRegion<'a>(&'a Counter);

impl Drop for RetireRegion<'_> {
    fn drop(&mut self) {
        self.0.inc_seq();
    }
}

/// Raw pointer wrapper so disjoint-chunk writers can be dispatched to the
/// team. Soundness is argued at each use site.
struct SendPtr<T>(*mut T);
// SAFETY: `SendPtr` only ferries the pointer to the team; every
// dereference happens inside a dispatched closure that receives a
// provably disjoint chunk (soundness argued at each use site).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper itself, not the raw pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel stops the workers' recv loops.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_once_dynamic() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..10_000, Schedule::Dynamic { grain: 17 }, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn covers_every_index_once_static() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..1003).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..1003, Schedule::Static, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn respects_range_offset() {
        let pool = ThreadPool::new(2);
        let sum = AtomicU64::new(0);
        pool.parallel_for(100..200, Schedule::Static, |i| {
            assert!((100..200).contains(&i));
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), (100..200u64).sum());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicU64::new(0);
        pool.parallel_for(0..1000, Schedule::Dynamic { grain: 8 }, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 999 * 1000 / 2);
    }

    #[test]
    fn empty_range_is_a_noop() {
        let pool = ThreadPool::new(4);
        pool.parallel_for(5..5, Schedule::Static, |_| panic!("must not run"));
        #[allow(clippy::reversed_empty_ranges)]
        pool.parallel_for(5..2, Schedule::Static, |_| panic!("must not run"));
    }

    #[test]
    fn reduce_matches_sequential_sum() {
        let pool = ThreadPool::new(4);
        let data: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
        let par = pool.parallel_reduce(
            0..data.len(),
            Schedule::Dynamic { grain: 64 },
            0.0,
            |s, e| data[s..e].iter().sum::<f64>(),
            |a, b| a + b,
        );
        let chunked_seq: f64 = (0..data.len())
            .step_by(64)
            .map(|s| data[s..(s + 64).min(data.len())].iter().sum::<f64>())
            .sum();
        assert_eq!(par, chunked_seq, "chunk-ordered fold must be deterministic");
    }

    #[test]
    fn reduce_is_deterministic_across_pool_widths() {
        let data: Vec<f64> = (0..10_001).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let run = |t: usize| {
            let pool = ThreadPool::new(t);
            pool.parallel_reduce(
                0..data.len(),
                Schedule::Dynamic { grain: 128 },
                0.0,
                |s, e| data[s..e].iter().sum::<f64>(),
                |a, b| a + b,
            )
        };
        let r1 = run(1);
        for t in [2, 3, 4, 8] {
            assert_eq!(r1.to_bits(), run(t).to_bits(), "width {t}");
        }
    }

    #[test]
    fn parallel_fill_writes_every_slot() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0u64; 5000];
        pool.parallel_fill(&mut out, Schedule::Dynamic { grain: 33 }, |i| i as u64 * 3);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn fewer_items_than_threads_static() {
        // A Static schedule on a wide pool must produce `len` one-element
        // chunks, not empty chunks or double coverage.
        let pool = ThreadPool::new(8);
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..3, Schedule::Static, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn fewer_items_than_threads_dynamic() {
        // A grain larger than the range collapses to one chunk; the spare
        // workers' wake-ups must retire as no-ops.
        let pool = ThreadPool::new(8);
        let hits: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..3, Schedule::Dynamic { grain: 64 }, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_item_range_runs_once() {
        for sched in [Schedule::Static, Schedule::Dynamic { grain: 4 }] {
            let pool = ThreadPool::new(4);
            let count = AtomicUsize::new(0);
            pool.parallel_for(7..8, sched, |i| {
                assert_eq!(i, 7);
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.into_inner(), 1);
        }
    }

    #[test]
    fn offset_range_boundary_chunks_stay_in_range() {
        // Chunk layout at the boundaries of a shifted range: every chunk
        // must stay within [start, end) and cover it exactly.
        let pool = ThreadPool::new(4);
        for (lo, hi) in [(100usize, 103usize), (99, 100), (1, 9)] {
            let len = hi - lo;
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for_chunks(lo..hi, Schedule::Static, |s, e| {
                assert!(
                    lo <= s && s < e && e <= hi,
                    "chunk [{s}, {e}) escapes [{lo}, {hi})"
                );
                for i in s..e {
                    hits[i - lo].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_chunks_mut_covers_every_slot_with_correct_offsets() {
        let pool = ThreadPool::new(4);
        for sched in [Schedule::Static, Schedule::Dynamic { grain: 7 }] {
            let mut out = vec![usize::MAX; 1001];
            pool.parallel_chunks_mut(&mut out, sched, |start, chunk| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = start + off;
                }
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i, "slot {i} under {sched:?}");
            }
        }
    }

    #[test]
    fn parallel_chunks_mut_single_thread_and_empty() {
        let pool = ThreadPool::new(1);
        let mut out = vec![0u32; 10];
        pool.parallel_chunks_mut(&mut out, Schedule::Dynamic { grain: 3 }, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = (start + off) as u32 * 2;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
        let mut empty: Vec<u32> = Vec::new();
        pool.parallel_chunks_mut(&mut empty, Schedule::Static, |_, _| {
            panic!("must not run on an empty slice")
        });
        let wide = ThreadPool::new(8);
        let mut tiny = vec![0u8; 2];
        wide.parallel_chunks_mut(&mut tiny, Schedule::Static, |_, chunk| {
            for slot in chunk {
                *slot += 1;
            }
        });
        assert_eq!(tiny, vec![1, 1]);
    }

    #[test]
    fn drop_joins_cleanly_with_stale_queued_wakeups() {
        // Every region sends one wake-up per background worker even when
        // the region completes before the workers pick them up; dropping
        // the pool right after must close the channel and join without a
        // stale handle ever touching a dead region body.
        for _ in 0..50 {
            let pool = ThreadPool::new(4);
            let count = AtomicUsize::new(0);
            for _ in 0..8 {
                pool.parallel_for(0..2, Schedule::Static, |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            assert_eq!(count.into_inner(), 16);
            drop(pool); // must not hang or crash
        }
    }

    #[test]
    fn drop_of_idle_pool_terminates() {
        for threads in [1, 2, 8] {
            drop(ThreadPool::new(threads));
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for(0..64, Schedule::Dynamic { grain: 4 }, |i| {
                if i == 33 {
                    panic!("injected failure");
                }
            });
        }));
        assert!(
            result.is_err(),
            "panic in a chunk body must reach the caller"
        );
        // The pool must remain usable after a panicked region.
        let sum = AtomicU64::new(0);
        pool.parallel_for(0..100, Schedule::Static, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 99 * 100 / 2);
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        pool.parallel_for(0..8, Schedule::Dynamic { grain: 1 }, |_| {
            pool.parallel_for(0..100, Schedule::Dynamic { grain: 10 }, |j| {
                total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.into_inner(), 8 * (99 * 100 / 2));
    }

    #[test]
    fn many_small_regions_stress() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..2000 {
            pool.parallel_for(0..16, Schedule::Dynamic { grain: 2 }, |i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 2000 * (15 * 16 / 2));
    }

    #[test]
    fn pool_stats_count_regions_and_items() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.stats().regions_started, 0);
        pool.parallel_for(0..100, Schedule::Static, |_| {});
        pool.parallel_for(0..50, Schedule::Dynamic { grain: 8 }, |_| {});
        pool.parallel_for(5..5, Schedule::Static, |_| unreachable!()); // empty: uncounted
        let reduced: u64 = pool.parallel_reduce(
            0..10,
            Schedule::Static,
            0,
            |s, e| (s..e).map(|i| i as u64).sum(),
            |a, b| a + b,
        );
        assert_eq!(reduced, 45);
        let stats = pool.stats();
        assert_eq!(stats.regions_started, 3);
        assert_eq!(stats.regions_finished, 3);
        assert_eq!(stats.occupancy(), 0);
        assert_eq!(stats.items, 160);
        assert_eq!(stats.threads, 4);

        // Occupancy retires even through a panicking region.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for(0..8, Schedule::Static, |i| {
                if i == 3 {
                    panic!("injected");
                }
            });
        }));
        assert_eq!(pool.stats().occupancy(), 0, "panicked region still retires");

        // The single-thread inline paths count identically.
        let inline = ThreadPool::new(1);
        inline.parallel_for(0..10, Schedule::Static, |_| {});
        let _: u64 = inline.parallel_reduce(0..10, Schedule::Static, 0, |_, _| 0, |a, b| a + b);
        assert_eq!(inline.stats().regions_started, 2);
        assert_eq!(inline.stats().regions_finished, 2);

        // And the gauge export lands under the requested scope.
        let metrics = fastbn_telemetry::MetricsRegistry::new();
        pool.export_metrics(&metrics, "pool");
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("pool.threads"), Some(4));
        assert_eq!(snap.gauge("pool.occupancy"), Some(0));
        assert_eq!(snap.gauge("pool.regions_started"), Some(4));
    }

    #[test]
    fn shared_pool_tenants_do_not_perturb_each_other() {
        // The multi-model contract: a tenant's reduction over a shared
        // pool is bit-identical to the same reduction run alone on a
        // private pool of the same width, no matter what other tenants
        // are doing concurrently. Chunk layout depends only on
        // (schedule, len), and the fold is chunk-ordered.
        let data_a: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
        let data_b: Vec<f64> = (0..2999).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let reduce = |pool: &ThreadPool, data: &[f64]| {
            pool.parallel_reduce(
                0..data.len(),
                Schedule::Dynamic { grain: 64 },
                0.0,
                |s, e| data[s..e].iter().sum::<f64>(),
                |a, b| a + b,
            )
        };
        let private = ThreadPool::new(4);
        let solo_a = reduce(&private, &data_a);
        let solo_b = reduce(&private, &data_b);
        let shared = ThreadPool::shared(4);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let shared = Arc::clone(&shared);
                let (a, b) = (&data_a, &data_b);
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(reduce(&shared, a).to_bits(), solo_a.to_bits());
                        assert_eq!(reduce(&shared, b).to_bits(), solo_b.to_bits());
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_regions_from_multiple_threads() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let total = std::sync::Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            let total = std::sync::Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    pool.parallel_for(0..64, Schedule::Dynamic { grain: 8 }, |i| {
                        total.fetch_add(i as u64, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 100 * (63 * 64 / 2));
    }
}
