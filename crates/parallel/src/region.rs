//! A single fork-join parallel region.
//!
//! A region is one `parallel_for` invocation: an iteration space, a
//! schedule, a type-erased loop body, and the bookkeeping that lets any
//! number of threads (including only the caller) retire every chunk exactly
//! once.
//!
//! Regions are self-contained: all coordination state lives in the
//! region itself, never in the pool, which is what makes one pool safe
//! to share between arbitrarily many concurrent callers (the
//! multi-model registry leans on this — every compiled model's regions
//! interleave on one worker team). A worker that picks a region off the
//! queue after it has completed simply retires zero chunks.
//!
//! fastbn: audited-raw-ptr

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::latch::CompletionLatch;
use crate::schedule::Schedule;

/// Type-erased pointer to the chunk body `fn(start, end)`.
///
/// The pointee is a closure borrowed from the `parallel_for` caller's stack
/// frame, with its lifetime erased. See the safety argument on
/// [`Region::new`].
struct BodyPtr(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (required at construction), so sharing the
// pointer across threads is sound as long as it is only dereferenced while
// the pointee is alive — which the region protocol guarantees (see
// `Region::new`).
unsafe impl Send for BodyPtr {}
unsafe impl Sync for BodyPtr {}

/// Shared state of one parallel region. Workers and the caller all hold an
/// `Arc<Region>`; the caller blocks on `latch` until the last iteration has
/// been retired.
pub(crate) struct Region {
    body: BodyPtr,
    len: usize,
    threads: usize,
    sched: Schedule,
    /// Next chunk id to claim. Claims beyond `chunk_count` are no-ops, so a
    /// stale worker that shows up after completion never touches `body`.
    next_chunk: AtomicUsize,
    chunk_count: usize,
    /// Iterations retired so far; reaching `len` sets the latch.
    completed: AtomicUsize,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    latch: CompletionLatch,
}

impl Region {
    /// Builds a region over `len` iterations of `body`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that `body` outlives the region's
    /// *execution*, i.e. that it does not return from the stack frame owning
    /// `body` until [`Region::wait`] has returned. The protocol that makes
    /// this sufficient:
    ///
    /// 1. `body` is only dereferenced inside [`Region::work`], for chunks
    ///    claimed from `next_chunk` while `next_chunk < chunk_count`.
    /// 2. Every claimed chunk increments `completed` by its size *after*
    ///    the body call returns; the increment that reaches `len` sets the
    ///    latch. Hence when the latch is set, every body invocation has
    ///    returned and no further invocation can start (all chunks claimed).
    /// 3. [`Region::wait`] blocks until the latch is set, so the caller's
    ///    frame — and `body` — remain alive for every dereference.
    ///
    /// Stale `Arc<Region>` handles held by workers after completion only
    /// touch the atomics, never `body`.
    pub(crate) unsafe fn new(
        body: &(dyn Fn(usize, usize) + Sync),
        len: usize,
        threads: usize,
        sched: Schedule,
    ) -> Self {
        // SAFETY: erases the borrow's lifetime; soundness is argued in
        // the `# Safety` section above.
        let body: *const (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(body) };
        Region {
            body: BodyPtr(body),
            len,
            threads,
            sched,
            next_chunk: AtomicUsize::new(0),
            chunk_count: sched.chunk_count(len, threads),
            completed: AtomicUsize::new(0),
            panic_payload: Mutex::new(None),
            latch: CompletionLatch::new(),
        }
    }

    /// Claims and executes chunks until none remain. Called by workers and
    /// by the `parallel_for` caller itself (caller participation gives
    /// OpenMP's "the encountering thread is part of the team" semantics).
    pub(crate) fn work(&self) {
        loop {
            let chunk = self.next_chunk.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.chunk_count {
                return;
            }
            let (start, end) = self.sched.chunk_bounds(chunk, self.len, self.threads);
            // SAFETY: chunk was claimed before completion, so the body is
            // still alive (see `Region::new`).
            let body = unsafe { &*self.body.0 };
            let result = catch_unwind(AssertUnwindSafe(|| body(start, end)));
            if let Err(payload) = result {
                let mut slot = self.panic_payload.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // Retire the chunk *after* the body returned; the final retirer
            // releases the caller.
            // ORDERING: AcqRel — the Release half publishes this body's
            // writes to whoever observes completion; the Acquire half
            // makes earlier chunks' writes visible to the final retirer
            // before it opens the latch.
            let done = self.completed.fetch_add(end - start, Ordering::AcqRel) + (end - start);
            debug_assert!(done <= self.len);
            if done == self.len {
                self.latch.set();
            }
        }
    }

    /// Blocks until every iteration is retired, then re-raises the first
    /// worker panic, if any, on the calling thread.
    pub(crate) fn wait(&self) {
        if self.len == 0 {
            return;
        }
        self.latch.wait();
        if let Some(payload) = self.panic_payload.lock().take() {
            std::panic::resume_unwind(payload);
        }
    }
}
