//! # fastbn-parallel
//!
//! An OpenMP-analogue data-parallel runtime used by every Fast-BNI inference
//! engine.
//!
//! The PPoPP'23 Fast-BNI paper distinguishes its engines *by schedule*:
//! coarse per-clique tasks ("Direct"), one parallel region per table
//! operation ("Primitive"), element-wise two-pass regions ("Element"), and
//! flattened per-layer regions (the Fast-BNI hybrid). Reproducing those
//! distinctions requires a runtime with
//!
//! * an exact, per-pool thread count (the paper sweeps `t = 1..32`),
//! * OpenMP-like `parallel for` semantics with **static** and **dynamic**
//!   chunk schedules, and
//! * a measurable, realistic per-region invocation overhead (the paper's
//!   "parallelization overhead" is a first-class quantity).
//!
//! A work-stealing runtime would blur all three, so this crate implements a
//! persistent fork-join pool from scratch on top of `crossbeam-channel` and
//! `parking_lot` (see DESIGN.md §2.3). Concurrent regions from multiple
//! threads and nested regions from inside a body are both supported —
//! the batch and serving layers above rely on them (see
//! `docs/ARCHITECTURE.md` at the repository root).
//!
//! ## Quick example
//!
//! ```
//! use fastbn_parallel::{ThreadPool, Schedule};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let total = AtomicU64::new(0);
//! pool.parallel_for(0..1000, Schedule::Dynamic { grain: 64 }, |i| {
//!     total.fetch_add(i as u64, Ordering::Relaxed);
//! });
//! assert_eq!(total.into_inner(), 999 * 1000 / 2);
//! ```

// Every unsafe operation inside an `unsafe fn` must sit in its own
// `unsafe {}` block with a SAFETY comment (enforced by fastbn-analyze
// FB-L1 plus this lint).
#![deny(unsafe_op_in_unsafe_fn)]

mod latch;
mod pool;
mod region;
mod schedule;

pub use latch::CompletionLatch;
pub use pool::{PoolStats, ThreadPool};
pub use schedule::Schedule;

/// Convenience: number of logical CPUs, used as the default pool width.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
