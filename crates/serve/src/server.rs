//! The single-model [`Server`]: a thin compatibility wrapper over a
//! **one-entry registry**.
//!
//! The queue/window/cancellation machinery that used to live here was
//! generalized to carry a model id per request and now lives in
//! `fastbn-registry` ([`RoutedServer`]); this module keeps the
//! original single-model surface — `Server::builder(solver)`,
//! `submit(query)` without an id — by registering the solver under
//! [`SINGLE_MODEL_ID`] and routing every submission to it. Semantics
//! are unchanged: same backpressure, micro-batching windows, in-window
//! dedup, cancellation, drain-then-join shutdown, and
//! [`ServerStats`] accounting invariant (`tests/serve.rs` runs against
//! this wrapper verbatim).
//!
//! New code serving **several** networks should use
//! [`Registry`](fastbn_registry::Registry) + [`RoutedServer`]
//! directly — see `examples/multi_model.rs`.

use std::sync::Arc;
use std::time::Duration;

use fastbn_inference::{Query, Solver};
use fastbn_registry::{Registry, RoutedServer};
use fastbn_telemetry::{MetricsRegistry, MetricsSnapshot};

pub use fastbn_registry::{
    ModelStats, Pending, ServeError, ServerStats, SubmitError, SubmitErrorKind,
};

/// The model id a single-model [`Server`] registers its solver under.
/// Visible through [`Server::model_stats`] rows and
/// [`SubmitError::model`].
pub const SINGLE_MODEL_ID: &str = "default";

/// Configures and starts a [`Server`]; see the field setters for the
/// micro-batching knobs.
pub struct ServerBuilder {
    solver: Arc<Solver>,
    inner: fastbn_registry::RoutedServerBuilder,
}

impl ServerBuilder {
    /// Number of worker threads (default 1). Workers dispatch
    /// independent micro-batches concurrently; their inner `run_batch`
    /// calls interleave on the engine's shared pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.inner = self.inner.workers(workers);
        self
    }

    /// Largest micro-batch a worker dispatches (default 16). A window
    /// closes as soon as it holds this many requests, without waiting
    /// out the delay.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.inner = self.inner.max_batch(max_batch);
        self
    }

    /// Longest a worker waits, measured from the first request it pops,
    /// for more requests before dispatching a partial batch (default
    /// 500µs). Zero still coalesces whatever is already queued.
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.inner = self.inner.max_delay(max_delay);
        self
    }

    /// Bounded queue capacity (default `2 × workers × max_batch`). When
    /// full, [`Server::submit`] blocks and [`Server::try_submit`]
    /// rejects — backpressure instead of unbounded buffering.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.inner = self.inner.queue_capacity(capacity);
        self
    }

    /// Whether a micro-batch window deduplicates identical in-flight
    /// requests (default **on**). Requests whose canonical `QueryKey`s
    /// match are dispatched as *one* query; the result fans out to
    /// every waiter, bit-identically.
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.inner = self.inner.dedup(dedup);
        self
    }

    /// Uses an existing [`MetricsRegistry`] instead of creating one
    /// (e.g. to aggregate several servers). Overrides
    /// [`ServerBuilder::telemetry`].
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.inner = self.inner.metrics(metrics);
        self
    }

    /// Whether the server records per-stage latency histograms
    /// (default **on**); off keeps the traffic counters but skips all
    /// clock reads on the hot path. See
    /// [`RoutedServerBuilder::telemetry`](fastbn_registry::RoutedServerBuilder::telemetry).
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.inner = self.inner.telemetry(enabled);
        self
    }

    /// Installs a request [`Tracer`](fastbn_telemetry::Tracer): every
    /// request gets a trace id and the always-on slow-query log,
    /// head-sampled requests record full span trees. See
    /// [`RoutedServerBuilder::tracer`](fastbn_registry::RoutedServerBuilder::tracer).
    pub fn tracer(mut self, tracer: Arc<fastbn_telemetry::Tracer>) -> Self {
        self.inner = self.inner.tracer(tracer);
        self
    }

    /// Starts the workers and returns the running server.
    pub fn build(self) -> Server {
        Server {
            solver: self.solver,
            inner: self.inner.build(),
        }
    }
}

/// A micro-batching serving front end over one shared [`Solver`] — a
/// one-entry [`Registry`](fastbn_registry::Registry) behind a
/// [`RoutedServer`] with the routing pinned to [`SINGLE_MODEL_ID`].
///
/// Results are **bit-identical** to running each query alone through a
/// [`Session`](fastbn_inference::Session) — batching and scheduling are
/// invisible to clients (asserted by `tests/serve.rs`).
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::{EngineKind, Query, Solver};
/// use fastbn_serve::Server;
///
/// let net = datasets::asia();
/// let solver = Arc::new(
///     Solver::builder(&net).engine(EngineKind::Hybrid).threads(2).build(),
/// );
/// let server = Server::builder(Arc::clone(&solver))
///     .workers(2)
///     .max_batch(8)
///     .max_delay(Duration::from_micros(200))
///     .build();
///
/// // Clients submit concurrently and block only on their own result.
/// let xray = net.var_id("XRay").unwrap();
/// let pending: Vec<_> = (0..16)
///     .map(|i| server.submit(Query::new().observe(xray, i % 2)).unwrap())
///     .collect();
/// for p in pending {
///     let result = p.wait().unwrap();
///     assert!(result.posteriors().unwrap().prob_evidence > 0.0);
/// }
///
/// server.shutdown(); // drains accepted requests, joins the workers
/// assert!(server.submit(Query::new()).is_err());
/// ```
pub struct Server {
    solver: Arc<Solver>,
    inner: RoutedServer,
}

impl Server {
    /// Starts a server with default settings (1 worker, micro-batches of
    /// up to 16 with a 500µs window). Use [`Server::builder`] to tune.
    pub fn new(solver: Arc<Solver>) -> Server {
        Server::builder(solver).build()
    }

    /// Starts configuring a server over `solver`.
    pub fn builder(solver: Arc<Solver>) -> ServerBuilder {
        let registry = Arc::new(Registry::builder().build());
        registry
            .insert(SINGLE_MODEL_ID, Arc::clone(&solver))
            .expect("a fresh unbounded registry always has room");
        ServerBuilder {
            solver,
            inner: RoutedServer::builder(registry),
        }
    }

    /// Submits a query, **blocking while the queue is full**
    /// (backpressure). Fails only after [`Server::shutdown`].
    pub fn submit(&self, query: Query) -> Result<Pending, SubmitError> {
        self.inner.submit(SINGLE_MODEL_ID, query)
    }

    /// Submits a query without blocking; a full queue rejects with
    /// [`SubmitErrorKind::QueueFull`] (the query handed back) instead of
    /// waiting.
    pub fn try_submit(&self, query: Query) -> Result<Pending, SubmitError> {
        self.inner.try_submit(SINGLE_MODEL_ID, query)
    }

    /// Stops accepting, lets the workers drain every already-accepted
    /// request, and joins them. Idempotent; also runs on drop. Requests
    /// still queued at this point are *completed*, not discarded — only
    /// submissions after the call are rejected.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    /// True once [`Server::shutdown`] has run (or started).
    pub fn is_shut_down(&self) -> bool {
        self.inner.is_shut_down()
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// The per-model breakdown (at most the [`SINGLE_MODEL_ID`] row
    /// here; meaningful on a [`RoutedServer`]).
    pub fn model_stats(&self) -> Vec<ModelStats> {
        self.inner.model_stats()
    }

    /// The server's metrics registry: traffic counters plus — unless
    /// built with [`ServerBuilder::telemetry`]`(false)` — the
    /// per-stage latency histograms. See
    /// [`RoutedServer::metrics`](fastbn_registry::RoutedServer::metrics).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.inner.metrics()
    }

    /// A consistent export snapshot of every metric, with the
    /// solver-side gauges (cache stats, pool occupancy) refreshed
    /// first. See
    /// [`RoutedServer::metrics_snapshot`](fastbn_registry::RoutedServer::metrics_snapshot).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics_snapshot()
    }

    /// The request tracer, when one was installed via
    /// [`ServerBuilder::tracer`].
    pub fn tracer(&self) -> Option<&Arc<fastbn_telemetry::Tracer>> {
        self.inner.tracer()
    }

    /// The shared solver the workers query.
    pub fn solver(&self) -> &Arc<Solver> {
        &self.solver
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers()
    }

    /// Largest micro-batch a worker dispatches.
    pub fn max_batch(&self) -> usize {
        self.inner.max_batch()
    }

    /// The micro-batching window measured from a batch's first request.
    pub fn max_delay(&self) -> Duration {
        self.inner.max_delay()
    }

    /// Bounded queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.inner.queue_capacity()
    }

    /// Whether micro-batch windows deduplicate identical in-flight
    /// requests ([`ServerBuilder::dedup`]).
    pub fn dedup(&self) -> bool {
        self.inner.dedup()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("solver", &self.solver)
            .field("workers", &self.inner.workers())
            .field("max_batch", &self.inner.max_batch())
            .field("max_delay", &self.inner.max_delay())
            .field("queue_capacity", &self.inner.queue_capacity())
            .field("dedup", &self.inner.dedup())
            .field("shut_down", &self.is_shut_down())
            .finish()
    }
}
