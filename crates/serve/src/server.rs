//! The [`Server`]: worker threads, a bounded request queue, and
//! deadline micro-batching over one shared [`Solver`].
//!
//! # How a request flows
//!
//! 1. [`Server::submit`] (blocking backpressure) or
//!    [`Server::try_submit`] (fail-fast) places a [`Query`] plus a
//!    oneshot reply slot on the bounded queue and hands the caller a
//!    [`Pending`] handle.
//! 2. A worker thread pops the first waiting request, then keeps
//!    collecting until it has [`max_batch`](ServerBuilder::max_batch)
//!    requests or [`max_delay`](ServerBuilder::max_delay) has elapsed
//!    since the first pop — the micro-batching window that trades a
//!    bounded latency hit for batch throughput.
//! 3. The collected requests run as one
//!    [`QueryBatch`](fastbn_inference::QueryBatch) through the worker's
//!    [`OwnedSession`] — wide windows spread across the engine's worker
//!    pool exactly like [`Session::run_batch`](fastbn_inference::Session::run_batch).
//!    Identical in-flight requests (equal canonical
//!    [`QueryKey`]s) are deduplicated first: one computation fans its
//!    result out to every waiter ([`ServerBuilder::dedup`], on by
//!    default, bit-identical by the key contract).
//! 4. Each result is delivered through its request's oneshot;
//!    [`Pending::wait`] unblocks with a per-request
//!    `Result<QueryResult, _>` — batching never smears one request's
//!    failure onto its neighbours.
//!
//! Dropping a [`Pending`] handle cancels the request: a worker that
//! finds the reply slot dead before dispatch skips the query entirely;
//! one that finishes after the drop discards the result. Dropping (or
//! [`Server::shutdown`]ting) the server closes the queue, lets workers
//! drain every already-accepted request, and joins them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_channel::{RecvTimeoutError, TrySendError};
use fastbn_inference::{
    InferenceError, OwnedSession, Query, QueryBatch, QueryKey, QueryResult, Solver,
};

use crate::oneshot::{saturating_deadline, slot, SlotReceiver, SlotSender, WaitError};

/// One queued request: the query and the oneshot that delivers its
/// result.
struct Request {
    query: Query,
    reply: SlotSender<Result<QueryResult, InferenceError>>,
}

/// Why a waiting client got no result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The query itself failed (impossible evidence, malformed
    /// likelihood, …) — the serving layer worked fine.
    Inference(InferenceError),
    /// The server went away before answering (shut down mid-flight or a
    /// worker died); the request was accepted but never completed.
    Abandoned,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Inference(e) => write!(f, "inference failed: {e}"),
            ServeError::Abandoned => f.write_str("request abandoned: server went away"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Inference(e) => Some(e),
            ServeError::Abandoned => None,
        }
    }
}

impl From<InferenceError> for ServeError {
    fn from(e: InferenceError) -> Self {
        ServeError::Inference(e)
    }
}

/// Why a submission was not accepted. The rejected [`Query`] is handed
/// back so the caller can retry, reroute, or degrade.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitError {
    query: Query,
    kind: SubmitErrorKind,
}

/// The rejection reason of a [`SubmitError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitErrorKind {
    /// The bounded queue is at capacity ([`Server::try_submit`] only —
    /// [`Server::submit`] blocks instead).
    QueueFull,
    /// The server has been shut down.
    ShutDown,
}

impl SubmitError {
    /// The rejection reason.
    pub fn kind(&self) -> SubmitErrorKind {
        self.kind
    }

    /// Recovers the rejected query.
    pub fn into_query(self) -> Query {
        self.query
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            SubmitErrorKind::QueueFull => f.write_str("request rejected: queue at capacity"),
            SubmitErrorKind::ShutDown => f.write_str("request rejected: server shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A handle to one in-flight request. Wait on it for the result — or
/// drop it to cancel the request (workers skip cancelled requests that
/// have not started and discard results that finish after the drop).
#[must_use = "dropping a Pending handle cancels the request"]
pub struct Pending {
    rx: SlotReceiver<Result<QueryResult, InferenceError>>,
}

impl Pending {
    /// Blocks until the result arrives (or the server goes away).
    pub fn wait(self) -> Result<QueryResult, ServeError> {
        match self.rx.wait() {
            Ok(result) => result.map_err(ServeError::from),
            Err(WaitError::Abandoned) => Err(ServeError::Abandoned),
        }
    }

    /// Waits up to `timeout`; on expiry the handle is returned so the
    /// caller can keep waiting — or drop it, which cancels the request.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<QueryResult, ServeError>, Self> {
        match self.rx.wait_timeout(timeout) {
            Ok(Ok(result)) => Ok(result.map_err(ServeError::from)),
            Ok(Err(WaitError::Abandoned)) => Ok(Err(ServeError::Abandoned)),
            Err(rx) => Err(Pending { rx }),
        }
    }
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending").finish_non_exhaustive()
    }
}

/// Monotonic counters describing a server's traffic so far (a snapshot;
/// concurrently updated by submitters and workers).
///
/// # Accounting invariant
///
/// Every request is counted **exactly once** at each stage it reaches,
/// so at any instant
///
/// ```text
/// submitted == completed + cancelled + queued_or_in_flight
/// ```
///
/// where `queued_or_in_flight` is the (unobservable) number of accepted
/// requests not yet resolved; after [`Server::shutdown`] returns (the
/// queue fully drained, workers joined) it is zero and `submitted ==
/// completed + cancelled` exactly — **provided `worker_panics` is 0**
/// (a panicking dispatch abandons its window's requests mid-unwind;
/// they surface to clients as [`ServeError::Abandoned`] and are counted
/// nowhere else). `rejected` requests were never accepted, so they sit
/// outside the identity, and `completed + cancelled ≤ dequeued ≤
/// submitted` holds throughout. In particular a request whose handle is
/// dropped *between* dequeue and delivery is counted once as
/// `cancelled` — never double-counted across `dequeued` / `cancelled` /
/// `completed`. Locked in by the stress test in `tests/serve.rs`.
///
/// A request answered by the in-window dedup (see
/// [`ServerBuilder::dedup`]) still counts as `completed` — `dedups`
/// tells you how many of those completions shared another request's
/// computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// `try_submit` rejections due to a full queue.
    pub rejected: u64,
    /// Requests popped off the queue by a worker.
    pub dequeued: u64,
    /// Results delivered to a live [`Pending`] handle.
    pub completed: u64,
    /// Requests whose handle was dropped — skipped before dispatch or
    /// discarded after.
    pub cancelled: u64,
    /// Micro-batches dispatched (each covering ≥ 1 request).
    pub batches: u64,
    /// Requests answered by cloning an identical in-flight request's
    /// result instead of computing their own (in-window dedup; the
    /// clones are bit-identical by the [`QueryKey`] contract).
    pub dedups: u64,
    /// Dispatches that panicked (an engine bug, not bad input — bad
    /// input yields a per-slot `Err`). The window's requests surface as
    /// [`ServeError::Abandoned`]; the worker survives and keeps serving.
    pub worker_panics: u64,
}

/// The atomic counters behind [`ServerStats`].
///
/// The stage counters (`submitted`, `dequeued`, `completed`,
/// `cancelled`) use `SeqCst` so the accounting invariant is observable
/// from a *concurrent* snapshot, not just after shutdown: `submitted`
/// is incremented **before** the request enters the queue (undone on a
/// failed send), each later stage is incremented after the earlier
/// one, and [`Counters::snapshot`] reads the stages in reverse order —
/// so a snapshot can never catch a completion whose submission it
/// missed.
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    dequeued: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    batches: AtomicU64,
    dedups: AtomicU64,
    worker_panics: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        // Read latest-stage counters first: `completed + cancelled ≤
        // dequeued ≤ submitted` must hold in the snapshot even while
        // requests race through the pipeline (each read can only miss
        // increments that post-date the earlier reads).
        let completed = self.completed.load(Ordering::SeqCst);
        let cancelled = self.cancelled.load(Ordering::SeqCst);
        let dequeued = self.dequeued.load(Ordering::SeqCst);
        let submitted = self.submitted.load(Ordering::SeqCst);
        ServerStats {
            submitted,
            rejected: self.rejected.load(Ordering::Relaxed),
            dequeued,
            completed,
            cancelled,
            batches: self.batches.load(Ordering::Relaxed),
            dedups: self.dedups.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
        }
    }
}

/// Configures and starts a [`Server`]; see the field setters for the
/// micro-batching knobs.
pub struct ServerBuilder {
    solver: Arc<Solver>,
    workers: usize,
    max_batch: usize,
    max_delay: Duration,
    queue_capacity: Option<usize>,
    dedup: bool,
}

impl ServerBuilder {
    /// Number of worker threads, each with its own [`OwnedSession`]
    /// (default 1). Workers dispatch independent micro-batches
    /// concurrently; their inner `run_batch` calls interleave on the
    /// engine's shared pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Largest micro-batch a worker dispatches (default 16). A window
    /// closes as soon as it holds this many requests, without waiting
    /// out the delay.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Longest a worker waits, measured from the first request it pops,
    /// for more requests before dispatching a partial batch (default
    /// 500µs). Zero still coalesces whatever is already queued.
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Bounded queue capacity (default `2 × workers × max_batch`). When
    /// full, [`Server::submit`] blocks and [`Server::try_submit`]
    /// rejects — backpressure instead of unbounded buffering.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity.max(1));
        self
    }

    /// Whether a micro-batch window deduplicates identical in-flight
    /// requests (default **on**). Requests whose canonical
    /// [`QueryKey`]s match are dispatched as *one* query; the result
    /// fans out to every waiter. Safe to leave on: equal keys imply the
    /// engine would perform the exact same arithmetic, so the clones
    /// are bit-identical to individual computation (each fan-out still
    /// counts as `completed`; [`ServerStats::dedups`] counts the shared
    /// ones). Turn it off to measure raw per-request engine throughput.
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Starts the workers and returns the running server.
    pub fn build(self) -> Server {
        let queue_capacity = self
            .queue_capacity
            .unwrap_or(2 * self.workers * self.max_batch)
            .max(1);
        let (sender, receiver) = crossbeam_channel::bounded::<Request>(queue_capacity);
        let counters = Arc::new(Counters::default());
        let workers = (0..self.workers)
            .map(|i| {
                let session = OwnedSession::new(Arc::clone(&self.solver));
                let rx = receiver.clone();
                let counters = Arc::clone(&counters);
                let max_batch = self.max_batch;
                let max_delay = self.max_delay;
                let dedup = self.dedup;
                std::thread::Builder::new()
                    .name(format!("fastbn-serve-{i}"))
                    .spawn(move || worker_loop(session, rx, max_batch, max_delay, dedup, &counters))
                    .expect("failed to spawn fastbn serve worker")
            })
            .collect();
        Server {
            queue: RwLock::new(Some(sender)),
            workers: Mutex::new(workers),
            counters,
            solver: self.solver,
            worker_count: self.workers,
            max_batch: self.max_batch,
            max_delay: self.max_delay,
            queue_capacity,
            dedup: self.dedup,
        }
    }
}

/// A micro-batching serving front end over one shared [`Solver`].
///
/// Owns N worker threads (each holding an [`OwnedSession`]) fed by a
/// bounded MPMC queue. Submissions return [`Pending`] handles; workers
/// coalesce waiting requests into deadline-bounded
/// [`QueryBatch`](fastbn_inference::QueryBatch)es, so under load the
/// engine sees wide batches (outer parallelism across its pool) while a
/// lone request still leaves after at most
/// [`max_delay`](ServerBuilder::max_delay).
///
/// Results are **bit-identical** to running each query alone through a
/// [`Session`](fastbn_inference::Session) — batching and scheduling are
/// invisible to clients (asserted by `tests/serve.rs`).
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::{EngineKind, Query, Solver};
/// use fastbn_serve::Server;
///
/// let net = datasets::asia();
/// let solver = Arc::new(
///     Solver::builder(&net).engine(EngineKind::Hybrid).threads(2).build(),
/// );
/// let server = Server::builder(Arc::clone(&solver))
///     .workers(2)
///     .max_batch(8)
///     .max_delay(Duration::from_micros(200))
///     .build();
///
/// // Clients submit concurrently and block only on their own result.
/// let xray = net.var_id("XRay").unwrap();
/// let pending: Vec<_> = (0..16)
///     .map(|i| server.submit(Query::new().observe(xray, i % 2)).unwrap())
///     .collect();
/// for p in pending {
///     let result = p.wait().unwrap();
///     assert!(result.posteriors().unwrap().prob_evidence > 0.0);
/// }
///
/// server.shutdown(); // drains accepted requests, joins the workers
/// assert!(server.submit(Query::new()).is_err());
/// ```
pub struct Server {
    /// `Some` while accepting; `None` after shutdown. Submitters clone
    /// the sender out of the read lock, so a blocking `submit` never
    /// holds the lock while parked on a full queue.
    queue: RwLock<Option<crossbeam_channel::Sender<Request>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    counters: Arc<Counters>,
    solver: Arc<Solver>,
    worker_count: usize,
    max_batch: usize,
    max_delay: Duration,
    queue_capacity: usize,
    dedup: bool,
}

impl Server {
    /// Starts a server with default settings (1 worker, micro-batches of
    /// up to 16 with a 500µs window). Use [`Server::builder`] to tune.
    pub fn new(solver: Arc<Solver>) -> Server {
        Server::builder(solver).build()
    }

    /// Starts configuring a server over `solver`.
    pub fn builder(solver: Arc<Solver>) -> ServerBuilder {
        ServerBuilder {
            solver,
            workers: 1,
            max_batch: 16,
            max_delay: Duration::from_micros(500),
            queue_capacity: None,
            dedup: true,
        }
    }

    /// Submits a query, **blocking while the queue is full**
    /// (backpressure). Fails only after [`Server::shutdown`].
    pub fn submit(&self, query: Query) -> Result<Pending, SubmitError> {
        let Some(sender) = self.sender() else {
            return Err(SubmitError {
                query,
                kind: SubmitErrorKind::ShutDown,
            });
        };
        let (reply, rx) = slot();
        // Count the submission *before* the send: a worker may dequeue
        // and complete the request before this thread runs again, and
        // `completed` must never lead `submitted` in any snapshot.
        self.counters.submitted.fetch_add(1, Ordering::SeqCst);
        match sender.send(Request { query, reply }) {
            Ok(()) => Ok(Pending { rx }),
            Err(crossbeam_channel::SendError(request)) => {
                self.counters.submitted.fetch_sub(1, Ordering::SeqCst);
                Err(SubmitError {
                    query: request.query,
                    kind: SubmitErrorKind::ShutDown,
                })
            }
        }
    }

    /// Submits a query without blocking; a full queue rejects with
    /// [`SubmitErrorKind::QueueFull`] (the query handed back) instead of
    /// waiting.
    pub fn try_submit(&self, query: Query) -> Result<Pending, SubmitError> {
        let Some(sender) = self.sender() else {
            return Err(SubmitError {
                query,
                kind: SubmitErrorKind::ShutDown,
            });
        };
        let (reply, rx) = slot();
        // Pre-counted for the same snapshot-consistency reason as
        // `submit`; undone on rejection (a transiently-high `submitted`
        // is harmless, a transiently-low one would let `completed` lead).
        self.counters.submitted.fetch_add(1, Ordering::SeqCst);
        match sender.try_send(Request { query, reply }) {
            Ok(()) => Ok(Pending { rx }),
            Err(TrySendError::Full(request)) => {
                self.counters.submitted.fetch_sub(1, Ordering::SeqCst);
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError {
                    query: request.query,
                    kind: SubmitErrorKind::QueueFull,
                })
            }
            Err(TrySendError::Disconnected(request)) => {
                self.counters.submitted.fetch_sub(1, Ordering::SeqCst);
                Err(SubmitError {
                    query: request.query,
                    kind: SubmitErrorKind::ShutDown,
                })
            }
        }
    }

    /// Stops accepting, lets the workers drain every already-accepted
    /// request, and joins them. Idempotent; also runs on drop. Requests
    /// still queued at this point are *completed*, not discarded — only
    /// submissions after the call are rejected.
    pub fn shutdown(&self) {
        // Dropping the sender closes the queue; workers finish the
        // backlog and exit on disconnect.
        drop(
            self.queue
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .take(),
        );
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// True once [`Server::shutdown`] has run (or started).
    pub fn is_shut_down(&self) -> bool {
        self.sender().is_none()
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// The shared solver the workers query.
    pub fn solver(&self) -> &Arc<Solver> {
        &self.solver
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Largest micro-batch a worker dispatches.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The micro-batching window measured from a batch's first request.
    pub fn max_delay(&self) -> Duration {
        self.max_delay
    }

    /// Bounded queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Whether micro-batch windows deduplicate identical in-flight
    /// requests ([`ServerBuilder::dedup`]).
    pub fn dedup(&self) -> bool {
        self.dedup
    }

    fn sender(&self) -> Option<crossbeam_channel::Sender<Request>> {
        self.queue
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .cloned()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("solver", &self.solver)
            .field("workers", &self.worker_count)
            .field("max_batch", &self.max_batch)
            .field("max_delay", &self.max_delay)
            .field("queue_capacity", &self.queue_capacity)
            .field("dedup", &self.dedup)
            .field("shut_down", &self.is_shut_down())
            .finish()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: pop a request, hold the micro-batching window open until
/// `max_batch` requests or `max_delay` elapsed, dispatch, repeat; exit
/// (after a final dispatch) once the queue is closed and drained.
fn worker_loop(
    mut session: OwnedSession,
    rx: crossbeam_channel::Receiver<Request>,
    max_batch: usize,
    max_delay: Duration,
    dedup: bool,
    counters: &Counters,
) {
    let mut window: Vec<Request> = Vec::with_capacity(max_batch);
    loop {
        let first = match rx.recv() {
            Ok(request) => request,
            Err(_) => return, // queue closed and drained
        };
        counters.dequeued.fetch_add(1, Ordering::SeqCst);
        window.push(first);
        let deadline = saturating_deadline(max_delay);
        let mut disconnected = false;
        while window.len() < max_batch {
            match rx.recv_deadline(deadline) {
                Ok(request) => {
                    counters.dequeued.fetch_add(1, Ordering::SeqCst);
                    window.push(request);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // A panicking dispatch (an engine bug — bad *input* comes back
        // as a per-slot Err) must not kill the worker: with it dies its
        // queue receiver, and once every worker is gone, already-queued
        // requests would hang their clients until the server drops. The
        // window's own replies were dropped mid-unwind, so those clients
        // see `Abandoned`; everything still queued gets a live worker.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch(&mut session, &mut window, dedup, counters)
        }));
        if outcome.is_err() {
            counters.worker_panics.fetch_add(1, Ordering::Relaxed);
            // Anything dispatch had not yet drained: dropping the
            // requests drops their reply slots → Abandoned, not a hang.
            window.clear();
        }
        if disconnected {
            return;
        }
    }
}

/// Runs one collected window as a single `QueryBatch` and delivers each
/// slot's result through its oneshot. Requests whose [`Pending`] handle
/// is already gone are dropped *before* the batch is assembled, so
/// cancelled work is never computed — and with `dedup` on, requests
/// whose canonical [`QueryKey`]s match collapse into one computed slot
/// whose result fans out to every waiter (bit-identical by the key
/// contract; the engine would have performed the same arithmetic for
/// each).
fn dispatch(
    session: &mut OwnedSession,
    window: &mut Vec<Request>,
    dedup: bool,
    counters: &Counters,
) {
    window.retain(|request| {
        let live = !request.reply.is_cancelled();
        if !live {
            counters.cancelled.fetch_add(1, Ordering::SeqCst);
        }
        live
    });
    if window.is_empty() {
        return;
    }
    counters.batches.fetch_add(1, Ordering::Relaxed);
    // One computed slot per distinct key; every reply hangs off its slot.
    let mut queries: Vec<Query> = Vec::with_capacity(window.len());
    let mut waiters: Vec<Vec<SlotSender<Result<QueryResult, InferenceError>>>> =
        Vec::with_capacity(window.len());
    if dedup {
        let mut seen: std::collections::HashMap<QueryKey, usize> = std::collections::HashMap::new();
        for request in window.drain(..) {
            match seen.entry(request.query.key()) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    counters.dedups.fetch_add(1, Ordering::Relaxed);
                    waiters[*slot.get()].push(request.reply);
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(queries.len());
                    queries.push(request.query);
                    waiters.push(vec![request.reply]);
                }
            }
        }
    } else {
        for request in window.drain(..) {
            queries.push(request.query);
            waiters.push(vec![request.reply]);
        }
    }
    let batch = QueryBatch::from(queries);
    let results = session.run_batch(&batch);
    for (replies, result) in waiters.into_iter().zip(results) {
        let mut replies = replies.into_iter();
        let last = replies.next_back();
        for reply in replies {
            deliver(reply, result.clone(), counters);
        }
        if let Some(reply) = last {
            // The representative (or lone) waiter takes the result
            // without a clone.
            deliver(reply, result, counters);
        }
    }
}

/// Sends one result through its oneshot, counting the outcome.
fn deliver(
    reply: SlotSender<Result<QueryResult, InferenceError>>,
    result: Result<QueryResult, InferenceError>,
    counters: &Counters,
) {
    match reply.send(result) {
        Ok(()) => counters.completed.fetch_add(1, Ordering::SeqCst),
        // The handle was dropped while the batch ran: result discarded,
        // request counted as cancelled.
        Err(_) => counters.cancelled.fetch_add(1, Ordering::SeqCst),
    };
}
