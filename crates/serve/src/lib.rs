//! # fastbn-serve
//!
//! A **micro-batching serving front end** over the fastbn inference
//! stack: the layer that turns a compiled
//! [`Solver`] from a fast batch runner into a
//! system that sits under live traffic.
//!
//! The engines get their throughput from two things the paper measures —
//! keeping one compiled junction tree hot, and running wide batches so
//! independent queries spread *across* the worker pool. Real traffic
//! arrives one request at a time, though. This crate closes the gap with
//! a classic serving design:
//!
//! * a [`Server`] owning N worker threads, each holding an
//!   [`OwnedSession`] over the shared
//!   solver;
//! * a **bounded request queue** with backpressure — [`Server::submit`]
//!   blocks while full, [`Server::try_submit`] rejects with the query
//!   handed back;
//! * **deadline micro-batching** — a worker that pops a request keeps
//!   the window open until `max_batch` requests arrive or `max_delay`
//!   elapses, then dispatches the window as one
//!   [`QueryBatch`] (the PR 2 outer-parallel
//!   batch path);
//! * **in-window dedup** — identical in-flight requests (equal
//!   canonical [`QueryKey`]s) collapse into one computation whose
//!   result fans out to every waiter, bit-identically; pair it with the
//!   solver's own query-result cache
//!   ([`SolverBuilder::cache`](fastbn_inference::SolverBuilder::cache))
//!   to also skip repeats *across* windows and workers;
//! * **per-request oneshot delivery** — every submission returns a
//!   [`Pending`] handle whose `wait()` yields that request's own
//!   `Result`; dropping the handle cancels the request;
//! * **graceful shutdown** — [`Server::shutdown`] (or drop) stops
//!   intake, drains every accepted request, and joins the workers.
//!
//! Results are bit-identical to running each query alone through a
//! [`Session`](fastbn_inference::Session): batching, scheduling, and
//! worker count are invisible to clients.
//!
//! Since the multi-model registry landed, this crate is a **thin
//! single-model wrapper**: [`Server`] registers its solver in a
//! one-entry [`Registry`](fastbn_registry::Registry) and pins a
//! [`RoutedServer`](fastbn_registry::RoutedServer)'s routing to
//! [`SINGLE_MODEL_ID`]. Serving several networks from one process —
//! hot load/unload, a shared worker pool, per-model stats — is
//! `fastbn-registry`'s job; start from `examples/multi_model.rs`.
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use fastbn_bayesnet::datasets;
//! use fastbn_inference::{Query, Solver};
//! use fastbn_serve::Server;
//!
//! let net = datasets::sprinkler();
//! let solver = Arc::new(Solver::new(&net));
//! let server = Server::builder(solver)
//!     .workers(2)
//!     .max_batch(4)
//!     .max_delay(Duration::from_micros(100))
//!     .build();
//!
//! let wet = net.var_id("WetGrass").unwrap();
//! let rain = net.var_id("Rain").unwrap();
//! let pending = server.submit(Query::new().observe(wet, 0)).unwrap();
//! let posteriors = pending.wait().unwrap().into_posteriors().unwrap();
//! // P(Rain | WetGrass = true) ≈ 0.708 (Russell & Norvig).
//! assert!((posteriors.marginal(rain)[0] - 0.7079).abs() < 1e-3);
//! ```
//!
//! Where this sits in the stack — and why micro-batching lives *here*
//! rather than in the engines — is mapped out in `docs/ARCHITECTURE.md`
//! at the repository root.

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

mod server;

pub use server::{
    ModelStats, Pending, ServeError, Server, ServerBuilder, ServerStats, SubmitError,
    SubmitErrorKind, SINGLE_MODEL_ID,
};

// Re-export the metrics/tracing vocabulary ([`Server::metrics`],
// [`ServerBuilder::tracer`]) and the request/response vocabulary so
// serving callers can depend on this crate alone.
pub use fastbn_telemetry::{
    HistogramSnapshot, Introspection, IntrospectionBuilder, MetricsRegistry, MetricsSnapshot,
    SlowEntry, TraceConfig, TraceView, Tracer,
};

pub use fastbn_inference::{
    CacheConfig, CacheStats, InferenceError, OwnedSession, Query, QueryBatch, QueryKey,
    QueryResult, Solver,
};
