//! The junction tree (or forest) structure.

use fastbn_bayesnet::VarId;

/// A clique: a sorted set of variables. Its potential table (attached by
/// the inference crate) ranges over all their joint assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clique {
    /// Member variables, ascending.
    pub vars: Vec<VarId>,
}

impl Clique {
    /// Whether `vars` (sorted) is a subset of this clique.
    pub fn contains_all(&self, vars: &[VarId]) -> bool {
        let mut j = 0;
        for &x in vars {
            loop {
                if j == self.vars.len() {
                    return false;
                }
                if self.vars[j] == x {
                    j += 1;
                    break;
                }
                if self.vars[j] > x {
                    return false;
                }
                j += 1;
            }
        }
        true
    }

    /// Whether `var` is a member.
    pub fn contains(&self, var: VarId) -> bool {
        self.vars.binary_search(&var).is_ok()
    }
}

/// A separator: the edge between two adjacent cliques, scoped to their
/// intersection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Separator {
    /// One endpoint (clique index).
    pub a: usize,
    /// Other endpoint (clique index).
    pub b: usize,
    /// Intersection variables, ascending.
    pub vars: Vec<VarId>,
}

/// A junction tree — or forest, when the moral graph is disconnected.
///
/// Invariant (checked by [`JunctionTree::verify_running_intersection`]):
/// for any two cliques containing a variable `v`, every clique and
/// separator on the path between them also contains `v`.
#[derive(Debug, Clone)]
pub struct JunctionTree {
    /// All cliques.
    pub cliques: Vec<Clique>,
    /// All separators (tree edges).
    pub separators: Vec<Separator>,
    /// `adj[c]` lists `(neighbor_clique, separator_index)` pairs, sorted by
    /// neighbor.
    adj: Vec<Vec<(usize, usize)>>,
    /// Clique indices grouped by connected component.
    pub components: Vec<Vec<usize>>,
}

impl JunctionTree {
    /// Assembles the structure from cliques + separator edges, computing
    /// adjacency and components.
    pub fn new(cliques: Vec<Clique>, separators: Vec<Separator>) -> Self {
        let mut adj = vec![Vec::new(); cliques.len()];
        for (i, sep) in separators.iter().enumerate() {
            adj[sep.a].push((sep.b, i));
            adj[sep.b].push((sep.a, i));
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let components = compute_components(cliques.len(), &adj);
        JunctionTree {
            cliques,
            separators,
            adj,
            components,
        }
    }

    /// Number of cliques.
    pub fn num_cliques(&self) -> usize {
        self.cliques.len()
    }

    /// Number of separators.
    pub fn num_separators(&self) -> usize {
        self.separators.len()
    }

    /// Neighbors of clique `c` as `(clique, separator)` pairs.
    pub fn neighbors(&self, c: usize) -> &[(usize, usize)] {
        &self.adj[c]
    }

    /// Index of the smallest clique containing all of `vars` (sorted), if
    /// any — used for CPT assignment and for answering marginal queries.
    pub fn smallest_containing(&self, vars: &[VarId]) -> Option<usize> {
        self.cliques
            .iter()
            .enumerate()
            .filter(|(_, c)| c.contains_all(vars))
            .min_by_key(|(i, c)| (c.vars.len(), *i))
            .map(|(i, _)| i)
    }

    /// Index of the smallest clique containing `var`.
    pub fn smallest_containing_var(&self, var: VarId) -> Option<usize> {
        self.smallest_containing(std::slice::from_ref(&var))
    }

    /// Checks the tree invariant: clique count = separator count +
    /// component count.
    pub fn is_forest(&self) -> bool {
        self.num_cliques() == self.num_separators() + self.components.len()
    }

    /// Verifies the running intersection property by checking, for every
    /// variable, that the cliques containing it induce a connected subtree.
    pub fn verify_running_intersection(&self) -> bool {
        if !self.is_forest() {
            return false;
        }
        // Collect all variables.
        let mut vars: Vec<VarId> = self
            .cliques
            .iter()
            .flat_map(|c| c.vars.iter().copied())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        for v in vars {
            let members: Vec<usize> = (0..self.num_cliques())
                .filter(|&c| self.cliques[c].contains(v))
                .collect();
            if members.is_empty() {
                continue;
            }
            // BFS from the first member, walking only through cliques that
            // contain v; all members must be reached.
            let mut seen = vec![false; self.num_cliques()];
            let mut stack = vec![members[0]];
            seen[members[0]] = true;
            while let Some(c) = stack.pop() {
                for &(n, _) in self.neighbors(c) {
                    if !seen[n] && self.cliques[n].contains(v) {
                        seen[n] = true;
                        stack.push(n);
                    }
                }
            }
            if !members.iter().all(|&m| seen[m]) {
                return false;
            }
            // Separators on member-member edges must contain v.
            for sep in &self.separators {
                if self.cliques[sep.a].contains(v)
                    && self.cliques[sep.b].contains(v)
                    && !sep.vars.contains(&v)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Treewidth witnessed by this tree: `max |clique| - 1`.
    pub fn width(&self) -> usize {
        self.cliques.iter().map(|c| c.vars.len()).max().unwrap_or(1) - 1
    }
}

fn compute_components(n: usize, adj: &[Vec<(usize, usize)>]) -> Vec<Vec<usize>> {
    let mut comp_of = vec![usize::MAX; n];
    let mut components = Vec::new();
    for start in 0..n {
        if comp_of[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = vec![start];
        comp_of[start] = id;
        let mut stack = vec![start];
        while let Some(c) = stack.pop() {
            for &(next, _) in &adj[c] {
                if comp_of[next] == usize::MAX {
                    comp_of[next] = id;
                    members.push(next);
                    stack.push(next);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VarId> {
        ids.iter().map(|&i| VarId(i)).collect()
    }

    /// A small valid junction tree:
    /// C0{0,1} -(1)- C1{1,2} -(2)- C2{2,3}
    fn path_tree() -> JunctionTree {
        JunctionTree::new(
            vec![
                Clique { vars: v(&[0, 1]) },
                Clique { vars: v(&[1, 2]) },
                Clique { vars: v(&[2, 3]) },
            ],
            vec![
                Separator {
                    a: 0,
                    b: 1,
                    vars: v(&[1]),
                },
                Separator {
                    a: 1,
                    b: 2,
                    vars: v(&[2]),
                },
            ],
        )
    }

    #[test]
    fn clique_membership() {
        let c = Clique {
            vars: v(&[1, 3, 5]),
        };
        assert!(c.contains(VarId(3)));
        assert!(!c.contains(VarId(2)));
        assert!(c.contains_all(&v(&[1, 5])));
        assert!(!c.contains_all(&v(&[1, 2])));
        assert!(c.contains_all(&[]));
    }

    #[test]
    fn adjacency_and_components() {
        let t = path_tree();
        assert_eq!(t.num_cliques(), 3);
        assert_eq!(t.neighbors(1), &[(0, 0), (2, 1)]);
        assert_eq!(t.components, vec![vec![0, 1, 2]]);
        assert!(t.is_forest());
        assert_eq!(t.width(), 1);
    }

    #[test]
    fn running_intersection_holds_on_valid_tree() {
        assert!(path_tree().verify_running_intersection());
    }

    #[test]
    fn running_intersection_fails_when_violated() {
        // Var 0 appears in C0 and C2 but not C1 on the path between them.
        let bad = JunctionTree::new(
            vec![
                Clique { vars: v(&[0, 1]) },
                Clique { vars: v(&[1, 2]) },
                Clique { vars: v(&[0, 2]) },
            ],
            vec![
                Separator {
                    a: 0,
                    b: 1,
                    vars: v(&[1]),
                },
                Separator {
                    a: 1,
                    b: 2,
                    vars: v(&[2]),
                },
            ],
        );
        assert!(!bad.verify_running_intersection());
    }

    #[test]
    fn smallest_containing_prefers_small_cliques() {
        let t = JunctionTree::new(
            vec![
                Clique {
                    vars: v(&[0, 1, 2]),
                },
                Clique { vars: v(&[1, 2]) },
            ],
            vec![Separator {
                a: 0,
                b: 1,
                vars: v(&[1, 2]),
            }],
        );
        assert_eq!(t.smallest_containing(&v(&[1, 2])), Some(1));
        assert_eq!(t.smallest_containing(&v(&[0, 2])), Some(0));
        assert_eq!(t.smallest_containing(&v(&[5])), None);
        assert_eq!(t.smallest_containing_var(VarId(1)), Some(1));
    }

    #[test]
    fn forest_with_two_components() {
        let t = JunctionTree::new(
            vec![Clique { vars: v(&[0, 1]) }, Clique { vars: v(&[2, 3]) }],
            vec![],
        );
        assert_eq!(t.components.len(), 2);
        assert!(t.is_forest());
        assert!(t.verify_running_intersection());
    }
}
