//! Moralization: DAG → undirected moral graph.

use fastbn_bayesnet::BayesianNetwork;

use crate::ugraph::UGraph;

/// Builds the moral graph of a network: every directed edge becomes
/// undirected, and all co-parents of each node are "married".
pub fn moralize(net: &BayesianNetwork) -> UGraph {
    UGraph::from_edges(net.num_vars(), &net.dag().moral_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::datasets;

    #[test]
    fn sprinkler_moral_graph() {
        // Cloudy -> {Sprinkler, Rain} -> WetGrass; marriage: Sprinkler-Rain.
        let net = datasets::sprinkler();
        let g = moralize(&net);
        assert_eq!(g.num_edges(), 5);
        let s = net.var_id("Sprinkler").unwrap().0;
        let r = net.var_id("Rain").unwrap().0;
        assert!(g.has_edge(s, r), "co-parents must be married");
    }

    #[test]
    fn asia_moral_graph_marries_tub_and_lung() {
        let net = datasets::asia();
        let g = moralize(&net);
        let tub = net.var_id("Tuberculosis").unwrap().0;
        let lung = net.var_id("LungCancer").unwrap().0;
        let either = net.var_id("TbOrCa").unwrap().0;
        let bronc = net.var_id("Bronchitis").unwrap().0;
        assert!(g.has_edge(tub, lung));
        assert!(g.has_edge(either, bronc), "parents of Dyspnea married");
        // 8 directed edges + 2 marriages.
        assert_eq!(g.num_edges(), 10);
    }
}
