//! Structural statistics of a built junction tree — the quantities that
//! explain the paper's performance observations (clique-size distribution,
//! layer counts, entries per layer).

use fastbn_bayesnet::{BayesianNetwork, VarId};

use crate::build::BuiltTree;

/// Summary statistics of a junction tree for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of cliques.
    pub num_cliques: usize,
    /// Number of separators.
    pub num_separators: usize,
    /// Treewidth witnessed by the tree (`max |clique| − 1`).
    pub width: usize,
    /// Entries of the largest clique table (saturating).
    pub max_clique_entries: usize,
    /// Total clique-table entries (saturating) — the memory/working-set
    /// driver.
    pub total_clique_entries: usize,
    /// Total separator-table entries (saturating).
    pub total_sep_entries: usize,
    /// Number of message layers (parallel invocations per pass).
    pub num_layers: usize,
    /// Clique entries per clique depth (index = depth) — the load profile
    /// the hybrid scheduler balances.
    pub entries_per_depth: Vec<usize>,
}

/// Computes [`TreeStats`] for a built tree.
pub fn tree_stats(net: &BayesianNetwork, built: &BuiltTree) -> TreeStats {
    let table_size = |vars: &[VarId]| -> usize {
        vars.iter()
            .try_fold(1usize, |acc, v| acc.checked_mul(net.cardinality(*v)))
            .unwrap_or(usize::MAX)
    };
    let clique_sizes: Vec<usize> = built
        .tree
        .cliques
        .iter()
        .map(|c| table_size(&c.vars))
        .collect();
    let sep_sizes: Vec<usize> = built
        .tree
        .separators
        .iter()
        .map(|s| table_size(&s.vars))
        .collect();

    let mut entries_per_depth = vec![0usize; built.rooted.max_depth + 1];
    for (c, &size) in clique_sizes.iter().enumerate() {
        let d = built.rooted.depth[c];
        entries_per_depth[d] = entries_per_depth[d].saturating_add(size);
    }

    TreeStats {
        num_cliques: built.tree.num_cliques(),
        num_separators: built.tree.num_separators(),
        width: built.tree.width(),
        max_clique_entries: clique_sizes.iter().copied().max().unwrap_or(0),
        total_clique_entries: clique_sizes
            .iter()
            .fold(0usize, |a, &b| a.saturating_add(b)),
        total_sep_entries: sep_sizes.iter().fold(0usize, |a, &b| a.saturating_add(b)),
        num_layers: built.schedule.num_layers(),
        entries_per_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_junction_tree, JtreeOptions};
    use fastbn_bayesnet::datasets;

    #[test]
    fn asia_stats() {
        let net = datasets::asia();
        let built = build_junction_tree(&net, &JtreeOptions::default());
        let stats = tree_stats(&net, &built);
        assert_eq!(stats.num_cliques, 6);
        assert_eq!(stats.num_separators, 5);
        assert_eq!(stats.width, 2);
        assert_eq!(stats.max_clique_entries, 8); // 3 binary vars
                                                 // Four 3-var cliques (8 entries) + two 2-var cliques (4 entries).
        assert_eq!(stats.total_clique_entries, 40);
        assert!(stats.num_layers >= 1);
        assert_eq!(
            stats.entries_per_depth.iter().sum::<usize>(),
            stats.total_clique_entries
        );
    }

    #[test]
    fn sprinkler_stats() {
        let net = datasets::sprinkler();
        let built = build_junction_tree(&net, &JtreeOptions::default());
        let stats = tree_stats(&net, &built);
        assert_eq!(stats.num_cliques, 2);
        assert_eq!(stats.max_clique_entries, 8);
        assert_eq!(stats.total_sep_entries, 4);
        assert_eq!(stats.num_layers, 1);
    }
}
