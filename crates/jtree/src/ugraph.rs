//! Undirected graphs (adjacency sets) — the substrate of triangulation.

use std::collections::BTreeSet;

/// An undirected simple graph on dense node ids `0..n`, with sorted
/// adjacency sets (deterministic iteration everywhere).
#[derive(Debug, Clone, Default)]
pub struct UGraph {
    adj: Vec<BTreeSet<u32>>,
}

impl UGraph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        UGraph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Builds from an edge list (self-loops ignored, duplicates collapsed).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = UGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Adds edge `{a, b}`; returns true if it was new. Self-loops are
    /// ignored (returns false).
    pub fn add_edge(&mut self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        let inserted = self.adj[a as usize].insert(b);
        self.adj[b as usize].insert(a);
        inserted
    }

    /// Whether `{a, b}` is an edge.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.adj[a as usize].contains(&b)
    }

    /// Sorted neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj[v as usize].iter().copied()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Removes `v` and all incident edges.
    pub fn remove_node(&mut self, v: u32) {
        let neighbors = std::mem::take(&mut self.adj[v as usize]);
        for n in neighbors {
            self.adj[n as usize].remove(&v);
        }
    }

    /// All edges with `a < b`, sorted.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for (a, ns) in self.adj.iter().enumerate() {
            for &b in ns {
                if (a as u32) < b {
                    out.push((a as u32, b));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut g = UGraph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate collapses");
        assert!(!g.add_edge(2, 2), "self loop ignored");
        g.add_edge(1, 2);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn remove_node_clears_incident_edges() {
        let mut g = UGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        g.remove_node(1);
        assert_eq!(g.edges(), vec![(2, 3)]);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn edges_listing_is_sorted_and_deduped() {
        let g = UGraph::from_edges(5, &[(3, 1), (0, 4), (1, 3)]);
        assert_eq!(g.edges(), vec![(0, 4), (1, 3)]);
    }
}
