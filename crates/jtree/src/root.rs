//! Root selection — the paper's first inter-clique optimization.
//!
//! The number of BFS layers of the rooted tree equals the number of
//! parallel-region invocations per propagation pass, so Fast-BNI roots
//! each component at its **center** (a vertex of minimum eccentricity),
//! giving `ceil(diameter / 2)` layers — the minimum possible.
//! `RootStrategy::Worst` roots at a diameter endpoint instead and exists
//! for the ablation benchmark.

use crate::tree::JunctionTree;

/// How to choose the root clique of each tree component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootStrategy {
    /// Lowest-indexed clique (what a naive implementation does).
    First,
    /// Tree center — minimizes the layer count (the paper's strategy).
    Center,
    /// Diameter endpoint — maximizes the layer count (ablation baseline).
    Worst,
}

/// A rooting of a junction tree (forest): per-clique parent links, depths
/// and a global BFS order.
#[derive(Debug, Clone)]
pub struct RootedTree {
    /// Root clique of each component.
    pub roots: Vec<usize>,
    /// `parent[c] = (parent clique, separator index)`, `None` for roots.
    pub parent: Vec<Option<(usize, usize)>>,
    /// BFS depth of each clique (roots at 0).
    pub depth: Vec<usize>,
    /// All cliques in BFS order (roots first).
    pub bfs_order: Vec<usize>,
    /// Maximum depth over all cliques.
    pub max_depth: usize,
}

/// Roots every component of `tree` using `strategy` and derives parent
/// links, depths and the BFS order.
pub fn root_tree(tree: &JunctionTree, strategy: RootStrategy) -> RootedTree {
    let n = tree.num_cliques();
    let mut roots = Vec::with_capacity(tree.components.len());
    for component in &tree.components {
        let root = match strategy {
            RootStrategy::First => component[0],
            RootStrategy::Center => center_of(tree, component),
            RootStrategy::Worst => diameter_endpoint(tree, component),
        };
        roots.push(root);
    }

    let mut parent = vec![None; n];
    let mut depth = vec![0usize; n];
    let mut bfs_order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &r in &roots {
        visited[r] = true;
        queue.push_back(r);
    }
    while let Some(c) = queue.pop_front() {
        bfs_order.push(c);
        for &(next, sep) in tree.neighbors(c) {
            if !visited[next] {
                visited[next] = true;
                parent[next] = Some((c, sep));
                depth[next] = depth[c] + 1;
                queue.push_back(next);
            }
        }
    }
    debug_assert_eq!(bfs_order.len(), n, "every clique reached");
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    RootedTree {
        roots,
        parent,
        depth,
        bfs_order,
        max_depth,
    }
}

impl RootedTree {
    /// Number of clique layers (`max_depth + 1`); the paper's layer count
    /// (cliques *and* separators as nodes) is `2 * max_depth + 1`.
    pub fn num_clique_layers(&self) -> usize {
        self.max_depth + 1
    }

    /// Paper-style layer count with separators counted as tree nodes.
    pub fn num_node_layers(&self) -> usize {
        if self.max_depth == 0 {
            1
        } else {
            2 * self.max_depth + 1
        }
    }
}

/// BFS distances from `start`, restricted to `component`'s cliques.
fn bfs_dist(tree: &JunctionTree, start: usize) -> Vec<Option<(usize, usize)>> {
    // dist + predecessor, indexed by clique; None if unreachable.
    let mut out: Vec<Option<(usize, usize)>> = vec![None; tree.num_cliques()];
    out[start] = Some((0, start));
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(c) = queue.pop_front() {
        let (d, _) = out[c].expect("visited");
        for &(next, _) in tree.neighbors(c) {
            if out[next].is_none() {
                out[next] = Some((d + 1, c));
                queue.push_back(next);
            }
        }
    }
    out
}

/// Farthest clique from `start` (ties → smallest index, deterministic).
fn farthest(dist: &[Option<(usize, usize)>], component: &[usize]) -> usize {
    *component
        .iter()
        .max_by_key(|&&c| (dist[c].expect("same component").0, std::cmp::Reverse(c)))
        .expect("non-empty component")
}

/// One endpoint of a diameter of the component.
fn diameter_endpoint(tree: &JunctionTree, component: &[usize]) -> usize {
    let d0 = bfs_dist(tree, component[0]);
    farthest(&d0, component)
}

/// The center: the middle clique of a diameter path (double-BFS). For
/// trees this vertex has minimum eccentricity `ceil(diameter / 2)`.
fn center_of(tree: &JunctionTree, component: &[usize]) -> usize {
    let u = diameter_endpoint(tree, component);
    let du = bfs_dist(tree, u);
    let v = farthest(&du, component);
    // Walk back from v to u, collecting the path.
    let mut path = vec![v];
    let mut cur = v;
    while cur != u {
        cur = du[cur].expect("on path").1;
        path.push(cur);
    }
    path[path.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Clique, Separator};
    use fastbn_bayesnet::VarId;

    /// A path of `n` cliques: {0,1},{1,2},...  Diameter n-1.
    fn path_tree(n: usize) -> JunctionTree {
        let cliques = (0..n)
            .map(|i| Clique {
                vars: vec![VarId(i as u32), VarId(i as u32 + 1)],
            })
            .collect();
        let separators = (0..n - 1)
            .map(|i| Separator {
                a: i,
                b: i + 1,
                vars: vec![VarId(i as u32 + 1)],
            })
            .collect();
        JunctionTree::new(cliques, separators)
    }

    #[test]
    fn center_halves_the_depth_of_a_path() {
        let tree = path_tree(9); // diameter 8
        let center = root_tree(&tree, RootStrategy::Center);
        assert_eq!(center.max_depth, 4);
        assert_eq!(center.roots, vec![4]);

        let worst = root_tree(&tree, RootStrategy::Worst);
        assert_eq!(worst.max_depth, 8);

        let first = root_tree(&tree, RootStrategy::First);
        assert_eq!(first.roots, vec![0]);
        assert_eq!(first.max_depth, 8);
    }

    #[test]
    fn node_layer_counts_match_paper_convention() {
        let tree = path_tree(5); // diameter 4, center depth 2
        let rooted = root_tree(&tree, RootStrategy::Center);
        assert_eq!(rooted.num_clique_layers(), 3);
        assert_eq!(rooted.num_node_layers(), 5); // C S C S C
    }

    #[test]
    fn parents_point_toward_the_root() {
        let tree = path_tree(5);
        let rooted = root_tree(&tree, RootStrategy::Center);
        let root = rooted.roots[0];
        assert!(rooted.parent[root].is_none());
        for c in 0..tree.num_cliques() {
            if let Some((p, sep)) = rooted.parent[c] {
                assert_eq!(rooted.depth[c], rooted.depth[p] + 1);
                let s = &tree.separators[sep];
                assert!((s.a == c && s.b == p) || (s.a == p && s.b == c));
            }
        }
    }

    #[test]
    fn bfs_order_is_depth_monotone() {
        let tree = path_tree(7);
        let rooted = root_tree(&tree, RootStrategy::Center);
        let depths: Vec<usize> = rooted.bfs_order.iter().map(|&c| rooted.depth[c]).collect();
        assert!(depths.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(rooted.bfs_order.len(), 7);
    }

    #[test]
    fn even_path_center_is_one_of_two_middles() {
        let tree = path_tree(4); // diameter 3; centers at index 1 or 2
        let rooted = root_tree(&tree, RootStrategy::Center);
        assert!(rooted.roots[0] == 1 || rooted.roots[0] == 2);
        assert_eq!(rooted.max_depth, 2);
    }

    #[test]
    fn singleton_component() {
        let tree = JunctionTree::new(
            vec![Clique {
                vars: vec![VarId(0)],
            }],
            vec![],
        );
        for strat in [
            RootStrategy::First,
            RootStrategy::Center,
            RootStrategy::Worst,
        ] {
            let rooted = root_tree(&tree, strat);
            assert_eq!(rooted.roots, vec![0]);
            assert_eq!(rooted.max_depth, 0);
            assert_eq!(rooted.num_node_layers(), 1);
        }
    }

    #[test]
    fn multi_component_rooting() {
        let cliques = vec![
            Clique {
                vars: vec![VarId(0), VarId(1)],
            },
            Clique {
                vars: vec![VarId(1), VarId(2)],
            },
            Clique {
                vars: vec![VarId(5)],
            },
        ];
        let seps = vec![Separator {
            a: 0,
            b: 1,
            vars: vec![VarId(1)],
        }];
        let tree = JunctionTree::new(cliques, seps);
        let rooted = root_tree(&tree, RootStrategy::Center);
        assert_eq!(rooted.roots.len(), 2);
        assert_eq!(rooted.bfs_order.len(), 3);
    }
}
