//! Triangulation by vertex elimination with greedy heuristics.
//!
//! Eliminating vertices one by one — connecting each vertex's remaining
//! neighbors into a clique before removing it — produces a chordal
//! supergraph whose maximal cliques become the junction-tree nodes. The
//! elimination *order* determines the clique sizes (and thus the entire
//! cost of inference), so three standard greedy heuristics are provided.

use crate::ugraph::UGraph;

/// Greedy scoring rule for choosing the next vertex to eliminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EliminationHeuristic {
    /// Fewest fill-in edges (ties by induced table weight) — the default;
    /// consistently near-best clique sizes in practice.
    MinFill,
    /// Fewest remaining neighbors (ties by weight). Cheaper to compute.
    MinDegree,
    /// Smallest induced clique table size (`Σ log cardinality`), ties by
    /// fill count.
    MinWeight,
}

/// The result of triangulating a moral graph.
#[derive(Debug, Clone)]
pub struct Triangulation {
    /// Vertex elimination order.
    pub order: Vec<u32>,
    /// Edges added to make the graph chordal (`a < b`).
    pub fill_edges: Vec<(u32, u32)>,
    /// Maximal cliques of the triangulated graph, each sorted ascending;
    /// non-maximal elimination cliques are already filtered out.
    pub cliques: Vec<Vec<u32>>,
}

/// Triangulates `graph` (consumed as a working copy). `log_weights[v]`
/// is `ln(cardinality(v))`, used for table-size tie-breaking; pass zeros
/// for unweighted behaviour.
pub fn triangulate(
    graph: &UGraph,
    log_weights: &[f64],
    heuristic: EliminationHeuristic,
) -> Triangulation {
    let n = graph.num_nodes();
    assert_eq!(log_weights.len(), n, "one weight per vertex");
    let mut work = graph.clone();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut fill_edges = Vec::new();
    let mut elim_cliques: Vec<Vec<u32>> = Vec::with_capacity(n);

    for _ in 0..n {
        // Greedy selection pass over the remaining vertices. Scores are
        // (primary, secondary, id) lexicographic; id break keeps runs
        // deterministic.
        let mut best: Option<(f64, f64, u32)> = None;
        for v in 0..n as u32 {
            if !remaining[v as usize] {
                continue;
            }
            let (fill, weight) = score(&work, v, log_weights);
            let key = match heuristic {
                EliminationHeuristic::MinFill => (fill as f64, weight, v),
                EliminationHeuristic::MinDegree => (work.degree(v) as f64, weight, v),
                EliminationHeuristic::MinWeight => (weight, fill as f64, v),
            };
            let better = match &best {
                None => true,
                Some(b) => key < *b,
            };
            if better {
                best = Some(key);
            }
        }
        let v = best.expect("at least one remaining vertex").2;

        // Record the elimination clique {v} ∪ N(v).
        let mut clique: Vec<u32> = work.neighbors(v).collect();
        clique.push(v);
        clique.sort_unstable();
        elim_cliques.push(clique);

        // Add fill edges among the neighbors, then remove v.
        let neighbors: Vec<u32> = work.neighbors(v).collect();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if work.add_edge(a, b) {
                    fill_edges.push((a.min(b), a.max(b)));
                }
            }
        }
        work.remove_node(v);
        remaining[v as usize] = false;
        order.push(v);
    }

    fill_edges.sort_unstable();
    Triangulation {
        order,
        fill_edges,
        cliques: keep_maximal(elim_cliques),
    }
}

/// Fill count and induced log-table-weight of eliminating `v` now.
fn score(work: &UGraph, v: u32, log_weights: &[f64]) -> (usize, f64) {
    let neighbors: Vec<u32> = work.neighbors(v).collect();
    let mut fill = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if !work.has_edge(a, b) {
                fill += 1;
            }
        }
    }
    let weight = log_weights[v as usize]
        + neighbors
            .iter()
            .map(|&u| log_weights[u as usize])
            .sum::<f64>();
    (fill, weight)
}

/// Filters elimination cliques down to the maximal ones.
///
/// Elimination cliques of a perfect order have the property that a clique
/// is non-maximal iff it is a subset of some *later* clique, but we check
/// in both directions for robustness (the cost is negligible).
fn keep_maximal(mut cliques: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    // Sort by descending size so any subset appears after its superset.
    cliques.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    let mut kept: Vec<Vec<u32>> = Vec::new();
    'outer: for c in cliques {
        for k in &kept {
            if is_sorted_subset(&c, k) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    // Deterministic final order: by (first var, size, content).
    kept.sort();
    kept
}

/// `a ⊆ b` for sorted slices (merge scan).
fn is_sorted_subset(a: &[u32], b: &[u32]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for &x in a {
        loop {
            if j == b.len() {
                return false;
            }
            if b[j] == x {
                j += 1;
                break;
            }
            if b[j] > x {
                return false;
            }
            j += 1;
        }
    }
    true
}

/// Verifies that `order` is a perfect elimination order of `graph` ∪
/// `fill`: re-eliminating in that order must create no new fill edges.
/// Exposed for tests and debug assertions.
pub fn is_chordal_via_order(graph: &UGraph, fill: &[(u32, u32)], order: &[u32]) -> bool {
    let mut work = graph.clone();
    for &(a, b) in fill {
        work.add_edge(a, b);
    }
    for &v in order {
        let neighbors: Vec<u32> = work.neighbors(v).collect();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if !work.has_edge(a, b) {
                    return false;
                }
            }
        }
        work.remove_node(v);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEURISTICS: [EliminationHeuristic; 3] = [
        EliminationHeuristic::MinFill,
        EliminationHeuristic::MinDegree,
        EliminationHeuristic::MinWeight,
    ];

    fn cycle(n: usize) -> UGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        UGraph::from_edges(n, &edges)
    }

    #[test]
    fn tree_needs_no_fill() {
        let g = UGraph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]);
        for h in HEURISTICS {
            let t = triangulate(&g, &[0.0; 5], h);
            assert!(t.fill_edges.is_empty(), "{h:?}");
            assert_eq!(t.order.len(), 5);
            // Maximal cliques of a tree are its edges.
            assert_eq!(t.cliques.len(), 4, "{h:?}");
            assert!(t.cliques.iter().all(|c| c.len() == 2));
        }
    }

    #[test]
    fn four_cycle_gets_one_chord() {
        let g = cycle(4);
        for h in HEURISTICS {
            let t = triangulate(&g, &[0.0; 4], h);
            assert_eq!(t.fill_edges.len(), 1, "{h:?}");
            assert!(is_chordal_via_order(&g, &t.fill_edges, &t.order));
            assert_eq!(t.cliques.len(), 2);
            assert!(t.cliques.iter().all(|c| c.len() == 3));
        }
    }

    #[test]
    fn six_cycle_fill_count() {
        // A 6-cycle needs exactly 3 chords under min-fill.
        let g = cycle(6);
        let t = triangulate(&g, &[0.0; 6], EliminationHeuristic::MinFill);
        assert_eq!(t.fill_edges.len(), 3);
        assert!(is_chordal_via_order(&g, &t.fill_edges, &t.order));
    }

    #[test]
    fn complete_graph_is_one_clique() {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in a + 1..5 {
                edges.push((a, b));
            }
        }
        let g = UGraph::from_edges(5, &edges);
        for h in HEURISTICS {
            let t = triangulate(&g, &[0.0; 5], h);
            assert!(t.fill_edges.is_empty());
            assert_eq!(t.cliques, vec![vec![0, 1, 2, 3, 4]], "{h:?}");
        }
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = UGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let t = triangulate(&g, &[0.0; 5], EliminationHeuristic::MinFill);
        // Two edge-cliques plus the isolated vertex {2}.
        assert_eq!(t.cliques, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn weights_steer_min_weight_heuristic() {
        // Path 0-1-2: eliminating endpoint first is always fill-free, but
        // min-weight should pick the *lightest* endpoint first.
        let g = UGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let light_first = triangulate(&g, &[5.0, 1.0, 0.1], EliminationHeuristic::MinWeight);
        assert_eq!(light_first.order[0], 2, "vertex 2 is lightest");
    }

    #[test]
    fn random_graphs_are_chordal_after_fill() {
        // Deterministic pseudo-random edge sets, all heuristics.
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..10 {
            let n = 8 + (trial % 5);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in a + 1..n as u32 {
                    if next() % 100 < 30 {
                        edges.push((a, b));
                    }
                }
            }
            let g = UGraph::from_edges(n, &edges);
            let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin().abs()).collect();
            for h in HEURISTICS {
                let t = triangulate(&g, &w, h);
                assert!(
                    is_chordal_via_order(&g, &t.fill_edges, &t.order),
                    "trial {trial} {h:?}"
                );
                // Every original edge must be inside some clique.
                for &(a, b) in &edges {
                    assert!(
                        t.cliques.iter().any(|c| c.contains(&a) && c.contains(&b)),
                        "edge ({a},{b}) uncovered"
                    );
                }
                // Cliques must be mutually non-contained.
                for (i, ci) in t.cliques.iter().enumerate() {
                    for (j, cj) in t.cliques.iter().enumerate() {
                        if i != j {
                            assert!(!is_sorted_subset(ci, cj), "clique {i} ⊆ clique {j}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn subset_helper() {
        assert!(is_sorted_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_sorted_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_sorted_subset(&[], &[1]));
        assert!(!is_sorted_subset(&[1, 2, 3], &[1, 2]));
    }
}
