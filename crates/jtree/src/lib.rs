//! # fastbn-jtree
//!
//! Junction-tree construction for Fast-BNI: moralization, triangulation
//! (min-fill / min-degree / min-weight elimination), maximal clique
//! extraction, maximum-weight spanning-tree assembly, the paper's
//! **root-selection strategy** (rooting at the tree center minimizes the
//! number of BFS layers and hence the number of parallel-region
//! invocations), and the **BFS layer schedule** that drives every parallel
//! engine's collect/distribute passes.
//!
//! The output types ([`JunctionTree`], [`RootedTree`], [`LayerSchedule`])
//! are purely structural — potentials are attached by `fastbn-inference`.
//! Where tree construction sits in the full stack is mapped in
//! `docs/ARCHITECTURE.md` at the repository root.
//!
//! ```
//! use fastbn_bayesnet::datasets;
//! use fastbn_jtree::{build_junction_tree, JtreeOptions};
//!
//! let net = datasets::asia();
//! let built = build_junction_tree(&net, &JtreeOptions::default());
//! assert!(built.tree.verify_running_intersection());
//! assert!(built.tree.num_cliques() >= 6);
//! ```

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

pub mod build;
pub mod chordal;
pub mod layers;
pub mod moralize;
pub mod root;
pub mod stats;
pub mod tree;
pub mod triangulate;
pub mod ugraph;

pub use build::{build_junction_tree, BuiltTree, JtreeOptions};
pub use chordal::{is_chordal, maximum_cardinality_search};
pub use layers::{LayerSchedule, Message};
pub use moralize::moralize;
pub use root::{root_tree, RootStrategy, RootedTree};
pub use stats::{tree_stats, TreeStats};
pub use tree::{Clique, JunctionTree, Separator};
pub use triangulate::{triangulate, EliminationHeuristic, Triangulation};
pub use ugraph::UGraph;
