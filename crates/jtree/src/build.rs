//! Junction-tree assembly: triangulated cliques → maximum-weight spanning
//! tree with separator edges.

use fastbn_bayesnet::{BayesianNetwork, VarId};

use crate::layers::LayerSchedule;
use crate::moralize::moralize;
use crate::root::{root_tree, RootStrategy, RootedTree};
use crate::tree::{Clique, JunctionTree, Separator};
use crate::triangulate::{triangulate, EliminationHeuristic, Triangulation};

/// Construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JtreeOptions {
    /// Elimination heuristic for triangulation.
    pub heuristic: EliminationHeuristic,
    /// Root-selection strategy (the paper's optimization is `Center`).
    pub root: RootStrategy,
}

impl Default for JtreeOptions {
    fn default() -> Self {
        JtreeOptions {
            heuristic: EliminationHeuristic::MinFill,
            root: RootStrategy::Center,
        }
    }
}

/// Everything the inference engines need: the tree, its rooting, the BFS
/// layer schedule, and the triangulation it came from (for stats).
#[derive(Debug, Clone)]
pub struct BuiltTree {
    /// The junction tree (forest).
    pub tree: JunctionTree,
    /// Rooting (parents, depths, BFS order).
    pub rooted: RootedTree,
    /// Layered message schedule for collect/distribute.
    pub schedule: LayerSchedule,
    /// The triangulation that produced the cliques.
    pub triangulation: Triangulation,
}

/// Builds the complete junction-tree pipeline for a network:
/// moralize → triangulate → maximal cliques → max-weight spanning tree →
/// root selection → BFS layering.
pub fn build_junction_tree(net: &BayesianNetwork, options: &JtreeOptions) -> BuiltTree {
    let moral = moralize(net);
    let log_weights: Vec<f64> = (0..net.num_vars())
        .map(|v| (net.cardinality(VarId::from_index(v)) as f64).ln())
        .collect();
    let triangulation = triangulate(&moral, &log_weights, options.heuristic);

    let cliques: Vec<Clique> = triangulation
        .cliques
        .iter()
        .map(|vars| Clique {
            vars: vars.iter().map(|&v| VarId(v)).collect(),
        })
        .collect();

    let separators = max_weight_spanning_tree(&cliques, &log_weights);
    let tree = JunctionTree::new(cliques, separators);
    debug_assert!(tree.verify_running_intersection());

    let rooted = root_tree(&tree, options.root);
    let schedule = LayerSchedule::new(&tree, &rooted);
    BuiltTree {
        tree,
        rooted,
        schedule,
        triangulation,
    }
}

/// Kruskal maximum-weight spanning forest over the clique graph.
///
/// Edge weight is the separator size `|Cᵢ ∩ Cⱼ|` (the classic criterion
/// guaranteeing the running intersection property); ties prefer the
/// *lighter* separator table (`Σ log card`), then lexicographic order for
/// determinism.
fn max_weight_spanning_tree(cliques: &[Clique], log_weights: &[f64]) -> Vec<Separator> {
    struct Candidate {
        a: usize,
        b: usize,
        vars: Vec<VarId>,
        weight: usize,
        log_size: f64,
    }

    let mut candidates = Vec::new();
    for a in 0..cliques.len() {
        for b in a + 1..cliques.len() {
            let vars = sorted_intersection(&cliques[a].vars, &cliques[b].vars);
            if vars.is_empty() {
                continue;
            }
            let log_size: f64 = vars.iter().map(|v| log_weights[v.index()]).sum();
            candidates.push(Candidate {
                a,
                b,
                weight: vars.len(),
                log_size,
                vars,
            });
        }
    }
    candidates.sort_by(|x, y| {
        y.weight
            .cmp(&x.weight)
            .then_with(|| x.log_size.partial_cmp(&y.log_size).expect("finite"))
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });

    let mut uf = UnionFind::new(cliques.len());
    let mut separators = Vec::with_capacity(cliques.len().saturating_sub(1));
    for c in candidates {
        if uf.union(c.a, c.b) {
            separators.push(Separator {
                a: c.a,
                b: c.b,
                vars: c.vars,
            });
        }
    }
    separators
}

fn sorted_intersection(a: &[VarId], b: &[VarId]) -> Vec<VarId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Returns true if the sets were disjoint (edge accepted).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::{datasets, generators};

    #[test]
    fn asia_tree_is_valid_and_compact() {
        let net = datasets::asia();
        let built = build_junction_tree(&net, &JtreeOptions::default());
        let tree = &built.tree;
        assert!(tree.verify_running_intersection());
        assert!(tree.is_forest());
        assert_eq!(tree.components.len(), 1);
        // The classic Asia junction tree has 6 cliques of size ≤ 3.
        assert_eq!(tree.num_cliques(), 6);
        assert!(tree.cliques.iter().all(|c| c.vars.len() <= 3));
        assert_eq!(tree.width(), 2);
        // Every CPT family must fit in some clique.
        for v in 0..net.num_vars() {
            let fam = net.dag().family(VarId::from_index(v));
            assert!(tree.smallest_containing(&fam).is_some(), "family of {v}");
        }
    }

    #[test]
    fn sprinkler_tree() {
        let net = datasets::sprinkler();
        let built = build_junction_tree(&net, &JtreeOptions::default());
        // Two cliques: {C,S,R} and {S,R,W}, separator {S,R}.
        assert_eq!(built.tree.num_cliques(), 2);
        assert_eq!(built.tree.num_separators(), 1);
        assert_eq!(built.tree.separators[0].vars.len(), 2);
        assert!(built.tree.verify_running_intersection());
    }

    #[test]
    fn all_heuristics_produce_valid_trees() {
        let net = datasets::student();
        for heuristic in [
            EliminationHeuristic::MinFill,
            EliminationHeuristic::MinDegree,
            EliminationHeuristic::MinWeight,
        ] {
            let built = build_junction_tree(
                &net,
                &JtreeOptions {
                    heuristic,
                    root: RootStrategy::Center,
                },
            );
            assert!(
                built.tree.verify_running_intersection(),
                "{heuristic:?} violates RIP"
            );
            for v in 0..net.num_vars() {
                let fam = net.dag().family(VarId::from_index(v));
                assert!(built.tree.smallest_containing(&fam).is_some());
            }
        }
    }

    #[test]
    fn random_networks_satisfy_all_invariants() {
        for seed in 0..8 {
            let spec = generators::WindowedDagSpec {
                nodes: 50,
                target_arcs: 70,
                max_parents: 3,
                window: 7,
                seed,
                ..generators::WindowedDagSpec::new(format!("r{seed}"), 50)
            };
            let net = generators::windowed_dag(&spec);
            let built = build_junction_tree(&net, &JtreeOptions::default());
            assert!(built.tree.verify_running_intersection(), "seed {seed}");
            assert!(built.tree.is_forest(), "seed {seed}");
            for v in 0..net.num_vars() {
                let fam = net.dag().family(VarId::from_index(v));
                assert!(
                    built.tree.smallest_containing(&fam).is_some(),
                    "seed {seed} family {v}"
                );
            }
            // Every variable appears in at least one clique.
            for v in 0..net.num_vars() as u32 {
                assert!(built.tree.cliques.iter().any(|c| c.contains(VarId(v))));
            }
        }
    }

    #[test]
    fn disconnected_network_yields_forest() {
        // Two independent chains in one network.
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a0 = b.add_var("a0", &["t", "f"]);
        let a1 = b.add_var("a1", &["t", "f"]);
        let c0 = b.add_var("c0", &["t", "f"]);
        let c1 = b.add_var("c1", &["t", "f"]);
        b.set_cpt(a0, vec![], vec![0.4, 0.6]).unwrap();
        b.set_cpt(a1, vec![a0], vec![0.9, 0.1, 0.3, 0.7]).unwrap();
        b.set_cpt(c0, vec![], vec![0.2, 0.8]).unwrap();
        b.set_cpt(c1, vec![c0], vec![0.5, 0.5, 0.1, 0.9]).unwrap();
        let net = b.build().unwrap();
        let built = build_junction_tree(&net, &JtreeOptions::default());
        assert_eq!(built.tree.components.len(), 2);
        assert!(built.tree.is_forest());
        assert!(built.tree.verify_running_intersection());
        assert_eq!(built.rooted.roots.len(), 2);
    }

    #[test]
    fn union_find_behaviour() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert!(!uf.union(1, 2));
        assert_eq!(uf.find(0), uf.find(2));
    }
}
