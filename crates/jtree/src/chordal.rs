//! Maximum cardinality search (MCS) and chordality testing.
//!
//! MCS (Tarjan & Yannakakis 1984) visits vertices by descending count of
//! already-visited neighbors; the reverse visit order is a perfect
//! elimination order **iff** the graph is chordal. This gives a
//! triangulation-independent verifier for the output of
//! [`triangulate`](fn@crate::triangulate): the filled graph must pass
//! [`is_chordal`].

use crate::ugraph::UGraph;

/// Maximum cardinality search: returns the visit order (not reversed).
/// Ties break by smallest vertex id, so the order is deterministic.
pub fn maximum_cardinality_search(graph: &UGraph) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut weight = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n as u32)
            .filter(|&v| !visited[v as usize])
            .max_by_key(|&v| (weight[v as usize], std::cmp::Reverse(v)))
            .expect("unvisited vertex remains");
        visited[v as usize] = true;
        order.push(v);
        for u in graph.neighbors(v) {
            if !visited[u as usize] {
                weight[u as usize] += 1;
            }
        }
    }
    order
}

/// Chordality test: runs MCS, then checks that every vertex's
/// earlier-visited neighbors form a clique with its earliest such
/// neighbor's neighborhood (the standard O(n + m·d) verification).
pub fn is_chordal(graph: &UGraph) -> bool {
    let order = maximum_cardinality_search(graph);
    let n = graph.num_nodes();
    let mut position = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        position[v as usize] = i;
    }
    // For each v (in visit order), let S = earlier-visited neighbors of v,
    // and p = the member of S visited last. Chordal iff S \ {p} ⊆ N(p).
    for &v in &order {
        let earlier: Vec<u32> = graph
            .neighbors(v)
            .filter(|&u| position[u as usize] < position[v as usize])
            .collect();
        let Some(&p) = earlier.iter().max_by_key(|&&u| position[u as usize]) else {
            continue;
        };
        for &u in &earlier {
            if u != p && !graph.has_edge(p, u) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangulate::{triangulate, EliminationHeuristic};

    fn cycle(n: usize) -> UGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        UGraph::from_edges(n, &edges)
    }

    #[test]
    fn trees_and_complete_graphs_are_chordal() {
        let tree = UGraph::from_edges(6, &[(0, 1), (1, 2), (1, 3), (3, 4), (3, 5)]);
        assert!(is_chordal(&tree));
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in a + 1..5 {
                edges.push((a, b));
            }
        }
        assert!(is_chordal(&UGraph::from_edges(5, &edges)));
        assert!(is_chordal(&UGraph::new(4)), "edgeless graph");
        assert!(is_chordal(&UGraph::new(0)), "empty graph");
    }

    #[test]
    fn long_cycles_are_not_chordal() {
        for n in 4..9 {
            assert!(!is_chordal(&cycle(n)), "C{n} must not be chordal");
        }
        assert!(is_chordal(&cycle(3)), "triangle is chordal");
    }

    #[test]
    fn triangulation_output_is_always_chordal() {
        // Cross-validate the triangulator with this independent checker.
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..12 {
            let n = 7 + (trial % 6);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in a + 1..n as u32 {
                    if next() % 100 < 35 {
                        edges.push((a, b));
                    }
                }
            }
            let g = UGraph::from_edges(n, &edges);
            for h in [
                EliminationHeuristic::MinFill,
                EliminationHeuristic::MinDegree,
                EliminationHeuristic::MinWeight,
            ] {
                let t = triangulate(&g, &vec![0.0; n], h);
                let mut filled = g.clone();
                for &(a, b) in &t.fill_edges {
                    filled.add_edge(a, b);
                }
                assert!(is_chordal(&filled), "trial {trial} {h:?}");
            }
            // And the 4-cycle sanity: unfilled random graphs usually are
            // not chordal; nothing to assert there beyond no panic.
            let _ = is_chordal(&g);
        }
    }

    #[test]
    fn mcs_order_visits_every_vertex_once() {
        let g = cycle(7);
        let order = maximum_cardinality_search(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn mcs_on_chordal_graph_yields_zero_fill_order() {
        // On a chordal graph, eliminating in reverse MCS order creates no
        // fill edges.
        let g = UGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]);
        assert!(is_chordal(&g));
        let mut order = maximum_cardinality_search(&g);
        order.reverse();
        let mut work = g.clone();
        for &v in &order {
            let neighbors: Vec<u32> = work.neighbors(v).collect();
            for (i, &a) in neighbors.iter().enumerate() {
                for &b in &neighbors[i + 1..] {
                    assert!(work.has_edge(a, b), "fill needed at {v}: ({a},{b})");
                }
            }
            work.remove_node(v);
        }
    }
}
