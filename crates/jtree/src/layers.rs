//! The BFS layer schedule — the paper's inter-clique traversal method.
//!
//! "Our traversal method views all the cliques and separators as nodes of
//! the tree and marks the layer where each of them is located." All
//! messages whose child cliques share a depth are mutually independent, so
//! each such group becomes one parallel batch. The collect pass walks the
//! groups deepest-first; the distribute pass walks them root-first.

use crate::root::RootedTree;
use crate::tree::JunctionTree;

/// One directed message slot: child ⇄ parent across a separator. The same
/// `Message` serves both passes (child→parent in collect, parent→child in
/// distribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Child clique index (deeper endpoint).
    pub child: usize,
    /// Parent clique index (shallower endpoint).
    pub parent: usize,
    /// Separator index between them.
    pub sep: usize,
}

/// Layered message batches for the two propagation passes.
#[derive(Debug, Clone)]
pub struct LayerSchedule {
    /// All messages, indexed by message id; one per non-root clique.
    pub messages: Vec<Message>,
    /// Collect batches: `collect_layers[0]` holds messages whose child is
    /// at the maximum depth, the last batch holds depth-1 children.
    pub collect_layers: Vec<Vec<usize>>,
    /// Distribute batches: `distribute_layers[0]` holds messages whose
    /// parent is a root (depth 0), and so on outward.
    pub distribute_layers: Vec<Vec<usize>>,
}

impl LayerSchedule {
    /// Derives the schedule from a rooted tree.
    pub fn new(tree: &JunctionTree, rooted: &RootedTree) -> Self {
        let mut messages = Vec::with_capacity(tree.num_cliques());
        for c in 0..tree.num_cliques() {
            if let Some((parent, sep)) = rooted.parent[c] {
                messages.push(Message {
                    child: c,
                    parent,
                    sep,
                });
            }
        }
        // Deterministic order within a layer: by child clique index.
        messages.sort_by_key(|m| (rooted.depth[m.child], m.child));

        let depth_count = rooted.max_depth; // messages exist at child depths 1..=max_depth
        let mut collect_layers = vec![Vec::new(); depth_count];
        let mut distribute_layers = vec![Vec::new(); depth_count];
        for (id, m) in messages.iter().enumerate() {
            let child_depth = rooted.depth[m.child];
            debug_assert_eq!(child_depth, rooted.depth[m.parent] + 1);
            // Collect layer 0 = deepest children.
            collect_layers[depth_count - child_depth].push(id);
            // Distribute layer 0 = parents at depth 0.
            distribute_layers[child_depth - 1].push(id);
        }
        LayerSchedule {
            messages,
            collect_layers,
            distribute_layers,
        }
    }

    /// Total number of messages (tree edges).
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// Number of collect (= distribute) batches; the driver of the
    /// parallel-invocation count the root-selection strategy minimizes.
    pub fn num_layers(&self) -> usize {
        self.collect_layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::root::{root_tree, RootStrategy};
    use crate::tree::{Clique, Separator};
    use fastbn_bayesnet::VarId;

    /// Star tree: clique 0 in the middle, 1..=4 around it.
    fn star() -> JunctionTree {
        let cliques = (0..5)
            .map(|i| Clique {
                vars: vec![VarId(0), VarId(i as u32 + 1)],
            })
            .collect();
        let seps = (1..5)
            .map(|i| Separator {
                a: 0,
                b: i,
                vars: vec![VarId(0)],
            })
            .collect();
        JunctionTree::new(cliques, seps)
    }

    #[test]
    fn star_has_single_layer_with_all_messages() {
        let tree = star();
        let rooted = root_tree(&tree, RootStrategy::Center);
        assert_eq!(rooted.roots, vec![0]);
        let sched = LayerSchedule::new(&tree, &rooted);
        assert_eq!(sched.num_messages(), 4);
        assert_eq!(sched.num_layers(), 1);
        assert_eq!(sched.collect_layers[0].len(), 4);
        assert_eq!(sched.distribute_layers[0].len(), 4);
        for &id in &sched.collect_layers[0] {
            assert_eq!(sched.messages[id].parent, 0);
        }
    }

    fn path(n: usize) -> JunctionTree {
        let cliques = (0..n)
            .map(|i| Clique {
                vars: vec![VarId(i as u32), VarId(i as u32 + 1)],
            })
            .collect();
        let seps = (0..n - 1)
            .map(|i| Separator {
                a: i,
                b: i + 1,
                vars: vec![VarId(i as u32 + 1)],
            })
            .collect();
        JunctionTree::new(cliques, seps)
    }

    #[test]
    fn collect_layers_run_deepest_first() {
        let tree = path(5);
        let rooted = root_tree(&tree, RootStrategy::Worst); // linear chain
        let sched = LayerSchedule::new(&tree, &rooted);
        assert_eq!(sched.num_layers(), 4);
        // Each collect batch has exactly one message; child depths must
        // descend 4, 3, 2, 1.
        let depths: Vec<usize> = sched
            .collect_layers
            .iter()
            .map(|layer| {
                assert_eq!(layer.len(), 1);
                rooted.depth[sched.messages[layer[0]].child]
            })
            .collect();
        assert_eq!(depths, vec![4, 3, 2, 1]);
        // Distribute is the mirror image.
        let d2: Vec<usize> = sched
            .distribute_layers
            .iter()
            .map(|layer| rooted.depth[sched.messages[layer[0]].parent])
            .collect();
        assert_eq!(d2, vec![0, 1, 2, 3]);
    }

    #[test]
    fn center_rooting_halves_layer_count() {
        let tree = path(9);
        let worst = LayerSchedule::new(&tree, &root_tree(&tree, RootStrategy::Worst));
        let center = LayerSchedule::new(&tree, &root_tree(&tree, RootStrategy::Center));
        assert_eq!(worst.num_layers(), 8);
        assert_eq!(center.num_layers(), 4);
        // Same total message count either way.
        assert_eq!(worst.num_messages(), center.num_messages());
    }

    #[test]
    fn every_non_root_clique_sends_exactly_one_message() {
        let tree = star();
        let rooted = root_tree(&tree, RootStrategy::Center);
        let sched = LayerSchedule::new(&tree, &rooted);
        let mut senders: Vec<usize> = sched.messages.iter().map(|m| m.child).collect();
        senders.sort_unstable();
        assert_eq!(senders, vec![1, 2, 3, 4]);
        // And both passes cover every message exactly once.
        let total_collect: usize = sched.collect_layers.iter().map(Vec::len).sum();
        let total_dist: usize = sched.distribute_layers.iter().map(Vec::len).sum();
        assert_eq!(total_collect, sched.num_messages());
        assert_eq!(total_dist, sched.num_messages());
    }

    #[test]
    fn forest_schedule_merges_components() {
        let cliques = vec![
            Clique {
                vars: vec![VarId(0), VarId(1)],
            },
            Clique {
                vars: vec![VarId(1), VarId(2)],
            },
            Clique {
                vars: vec![VarId(7), VarId(8)],
            },
            Clique {
                vars: vec![VarId(8), VarId(9)],
            },
        ];
        let seps = vec![
            Separator {
                a: 0,
                b: 1,
                vars: vec![VarId(1)],
            },
            Separator {
                a: 2,
                b: 3,
                vars: vec![VarId(8)],
            },
        ];
        let tree = JunctionTree::new(cliques, seps);
        let rooted = root_tree(&tree, RootStrategy::Center);
        let sched = LayerSchedule::new(&tree, &rooted);
        assert_eq!(sched.num_messages(), 2);
        assert_eq!(sched.num_layers(), 1);
        assert_eq!(sched.collect_layers[0].len(), 2, "components run together");
    }
}
