//! Steady-state allocation regression test: once a [`WorkState`] slab is
//! built, a full `reset → enter_evidence → propagate` cycle of the
//! sequential engine must perform **zero heap allocations** — every
//! potential, separator and scratch table lives in the one contiguous
//! slab, and every index mapping lives in the [`Prepared`] plans.
//!
//! Lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fastbn_bayesnet::{datasets, generators, sampler, Evidence};
use fastbn_inference::{EvidenceDelta, InferenceEngine, Prepared, SeqJt, Solver, WorkState};
use fastbn_jtree::JtreeOptions;

/// Counts every allocation (alloc / alloc_zeroed / realloc) and defers
/// the real work to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method defers to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller contract forwarded verbatim to `System::alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: caller contract forwarded verbatim to `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller contract forwarded verbatim to `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller contract forwarded verbatim to `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One full query cycle on pre-built scratch.
fn cycle(engine: &SeqJt, prepared: &Prepared, state: &mut WorkState, evidence: &Evidence) {
    state.reset(prepared);
    engine.enter_evidence(state, evidence);
    engine.propagate(state);
}

#[test]
fn seq_steady_state_is_allocation_free() {
    let nets = [
        datasets::asia(),
        datasets::student(),
        generators::naive_bayes(10, 3, 2, 8),
    ];
    for net in &nets {
        let prepared = Arc::new(Prepared::new(net, &JtreeOptions::default()));
        let engine = SeqJt::new(prepared.clone());
        let mut state = WorkState::new(&prepared);
        let cases = sampler::generate_cases(net, 4, 0.3, 77);

        // Warm-up: any one-time lazy work happens here, not in the
        // measured window.
        cycle(&engine, &prepared, &mut state, &Evidence::empty());
        for case in &cases {
            cycle(&engine, &prepared, &mut state, &case.evidence);
        }

        let before = allocations();
        cycle(&engine, &prepared, &mut state, &Evidence::empty());
        for case in &cases {
            cycle(&engine, &prepared, &mut state, &case.evidence);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta,
            0,
            "steady-state propagation allocated {delta} times on {:?}",
            net.name()
        );
    }
}

/// The incremental edit path has the same contract: once a
/// [`LiveSession`](fastbn_inference::LiveSession) is warm, applying a
/// single-finding delta — observe, change, retract, likelihood set or
/// retract — plus the monitoring reads (`prob_evidence`,
/// `marginal_into`) must perform **zero** heap allocations. Likelihood
/// vectors are owned by the edit and move into the session, so the
/// script is built outside the measured window, exactly as a caller
/// would construct edits before a latency-critical apply.
#[test]
fn live_session_single_finding_edits_are_allocation_free() {
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let mut live = solver.live_session();
    let dysp = net.var_id("Dyspnea").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let smoke = net.var_id("Smoker").unwrap();
    let tub = net.var_id("Tuberculosis").unwrap();

    // Ends with everything retracted, so replaying it from the end state
    // retraces the exact same evidence-capacity trajectory.
    let script = || {
        vec![
            EvidenceDelta::observe(dysp, 0),
            EvidenceDelta::observe(xray, 1),
            EvidenceDelta::likelihood(smoke, vec![0.7, 0.3]),
            EvidenceDelta::observe(dysp, 1), // change
            EvidenceDelta::likelihood(smoke, vec![0.2, 0.9]), // replace
            EvidenceDelta::retract(xray),
            EvidenceDelta::retract_likelihood(smoke),
            EvidenceDelta::retract(dysp),
        ]
    };
    let mut buf = [0.0f64; 2];

    // Warm-up: grows the evidence vector to the script's high-water mark
    // and touches every read path once.
    for edit in script() {
        live.apply(edit).unwrap();
        let _ = live.prob_evidence();
        live.marginal_into(tub, &mut buf).unwrap();
    }

    let edits = script(); // the likelihood vectors allocate *here*
    let before = allocations();
    for edit in edits {
        live.apply(edit).unwrap();
        let _ = live.prob_evidence();
        live.marginal_into(tub, &mut buf).unwrap();
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "steady-state delta edits allocated {delta} times");
}

#[test]
fn workstate_construction_allocates_but_clone_stays_flat() {
    // The slab design means a WorkState is a fixed small number of
    // allocations (slab + pending + container bookkeeping), independent
    // of how many cliques/separators the tree has.
    let small = Arc::new(Prepared::new(
        &datasets::sprinkler(),
        &JtreeOptions::default(),
    ));
    let large = Arc::new(Prepared::new(
        &generators::naive_bayes(24, 3, 2, 8),
        &JtreeOptions::default(),
    ));
    let count_new = |prepared: &Prepared| {
        let before = allocations();
        let state = WorkState::new(prepared);
        let delta = allocations() - before;
        drop(state);
        delta
    };
    let a = count_new(&small);
    let b = count_new(&large);
    assert_eq!(a, b, "WorkState allocations must not scale with tree size");
}
