//! The query builder and unified result type of the session API.
//!
//! A [`Query`] describes *what* to compute — hard evidence, virtual
//! (likelihood) evidence, an optional target-variable subset, and the
//! mode (posterior marginals or MPE). It is a plain value: build once,
//! reuse across sessions and solvers, send between threads.

use fastbn_bayesnet::{Evidence, VarId};

use crate::mpe::MpeResult;
use crate::posterior::Posteriors;
use crate::virtual_evidence::VirtualEvidence;

/// What a [`Query`] asks the engine to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Posterior marginals (all variables, or the requested targets).
    #[default]
    Marginals,
    /// The most probable explanation: one max-product pass plus
    /// back-tracking, on the same tree.
    Mpe,
}

/// A description of one inference request, built fluently:
///
/// ```
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::{Query, Solver};
///
/// let net = datasets::sprinkler();
/// let solver = Solver::new(&net);
/// let wet = net.var_id("WetGrass").unwrap();
/// let rain = net.var_id("Rain").unwrap();
/// let query = Query::new().observe(wet, 0).targets([rain]);
/// let result = solver.query(&query).unwrap();
/// let posteriors = result.posteriors().unwrap();
/// assert!((posteriors.marginal(rain)[0] - 0.7079).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    evidence: Evidence,
    virtual_evidence: VirtualEvidence,
    targets: Option<Vec<VarId>>,
    mode: QueryMode,
}

impl Query {
    /// An empty query: no evidence, all marginals.
    pub fn new() -> Self {
        Query::default()
    }

    /// Replaces the hard evidence wholesale.
    pub fn evidence(mut self, evidence: Evidence) -> Self {
        self.evidence = evidence;
        self
    }

    /// Adds one hard finding `var = state`.
    pub fn observe(mut self, var: VarId, state: usize) -> Self {
        self.evidence.set(var, state);
        self
    }

    /// Replaces the virtual (likelihood) evidence wholesale.
    pub fn virtual_evidence(mut self, virtual_evidence: VirtualEvidence) -> Self {
        self.virtual_evidence = virtual_evidence;
        self
    }

    /// Adds one likelihood finding on `var` (Pearl's soft evidence).
    pub fn likelihood(mut self, var: VarId, likelihood: Vec<f64>) -> Self {
        self.virtual_evidence.add(var, likelihood);
        self
    }

    /// Restricts marginal extraction to `vars` — the caller pays only for
    /// the marginals it asks for. Duplicates are removed. Ignored in MPE
    /// mode (an explanation is always a full assignment).
    pub fn targets(mut self, vars: impl IntoIterator<Item = VarId>) -> Self {
        let mut targets: Vec<VarId> = vars.into_iter().collect();
        targets.sort_unstable();
        targets.dedup();
        self.targets = Some(targets);
        self
    }

    /// Adds one variable to the target set (creating it if absent).
    pub fn target(self, var: VarId) -> Self {
        let mut targets = self.targets.clone().unwrap_or_default();
        targets.push(var);
        self.targets(targets)
    }

    /// Switches the query to MPE mode.
    pub fn mpe(mut self) -> Self {
        self.mode = QueryMode::Mpe;
        self
    }

    /// The hard evidence.
    pub fn get_evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// The virtual evidence.
    pub fn get_virtual_evidence(&self) -> &VirtualEvidence {
        &self.virtual_evidence
    }

    /// The target set (`None` = all variables), sorted and deduplicated.
    pub fn get_targets(&self) -> Option<&[VarId]> {
        self.targets.as_deref()
    }

    /// The query mode.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }
}

/// An ordered batch of [`Query`] values executed as one unit through
/// [`Session::run_batch`](crate::solver::Session::run_batch) or
/// [`Solver::query_batch`](crate::solver::Solver::query_batch).
///
/// Results come back as `Vec<Result<QueryResult, InferenceError>>` in
/// input order; a failing item (impossible evidence, malformed
/// likelihood, …) yields `Err` in its own slot without affecting its
/// neighbours. Batches at least as wide as the engine's worker pool are
/// dispatched across the pool — one query per worker, with pooled
/// scratch — which amortizes reset/evidence-entry/extraction setup that
/// a one-at-a-time loop pays per request:
///
/// ```
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::{Query, QueryBatch, Solver};
///
/// let net = datasets::sprinkler();
/// let solver = Solver::new(&net);
/// let wet = net.var_id("WetGrass").unwrap();
/// let batch: QueryBatch = (0..2).map(|s| Query::new().observe(wet, s)).collect();
/// let results = solver.query_batch(&batch);
/// assert_eq!(results.len(), 2);
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryBatch {
    queries: Vec<Query>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Appends one query to the batch.
    pub fn push(&mut self, query: Query) {
        self.queries.push(query);
    }

    /// Builder-style [`QueryBatch::push`].
    pub fn with(mut self, query: Query) -> Self {
        self.push(query);
        self
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates the queries in input order.
    pub fn iter(&self) -> std::slice::Iter<'_, Query> {
        self.queries.iter()
    }

    /// The queries as a slice, in input order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }
}

impl From<Vec<Query>> for QueryBatch {
    fn from(queries: Vec<Query>) -> Self {
        QueryBatch { queries }
    }
}

impl FromIterator<Query> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = Query>>(iter: I) -> Self {
        QueryBatch {
            queries: iter.into_iter().collect(),
        }
    }
}

impl Extend<Query> for QueryBatch {
    fn extend<I: IntoIterator<Item = Query>>(&mut self, iter: I) {
        self.queries.extend(iter);
    }
}

impl std::ops::Index<usize> for QueryBatch {
    type Output = Query;

    fn index(&self, i: usize) -> &Query {
        &self.queries[i]
    }
}

impl<'a> IntoIterator for &'a QueryBatch {
    type Item = &'a Query;
    type IntoIter = std::slice::Iter<'a, Query>;

    fn into_iter(self) -> Self::IntoIter {
        self.queries.iter()
    }
}

impl IntoIterator for QueryBatch {
    type Item = Query;
    type IntoIter = std::vec::IntoIter<Query>;

    fn into_iter(self) -> Self::IntoIter {
        self.queries.into_iter()
    }
}

/// The unified result of [`Session::run`](crate::solver::Session::run):
/// either posterior marginals or an MPE assignment, depending on the
/// query's [`QueryMode`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Posterior marginals (full or targeted).
    Marginals(Posteriors),
    /// Most probable explanation.
    Mpe(MpeResult),
}

impl QueryResult {
    /// The marginals, if this was a marginal query.
    pub fn posteriors(&self) -> Option<&Posteriors> {
        match self {
            QueryResult::Marginals(p) => Some(p),
            QueryResult::Mpe(_) => None,
        }
    }

    /// Consumes the result into its marginals, if any.
    pub fn into_posteriors(self) -> Option<Posteriors> {
        match self {
            QueryResult::Marginals(p) => Some(p),
            QueryResult::Mpe(_) => None,
        }
    }

    /// The MPE solution, if this was an MPE query.
    pub fn mpe(&self) -> Option<&MpeResult> {
        match self {
            QueryResult::Mpe(m) => Some(m),
            QueryResult::Marginals(_) => None,
        }
    }

    /// Consumes the result into its MPE solution, if any.
    pub fn into_mpe(self) -> Option<MpeResult> {
        match self {
            QueryResult::Mpe(m) => Some(m),
            QueryResult::Marginals(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_evidence_and_targets() {
        let q = Query::new()
            .observe(VarId(3), 1)
            .observe(VarId(1), 0)
            .targets([VarId(5), VarId(2), VarId(5)])
            .target(VarId(0));
        assert_eq!(q.get_evidence().get(VarId(3)), Some(1));
        assert_eq!(q.get_evidence().get(VarId(1)), Some(0));
        assert_eq!(
            q.get_targets().unwrap(),
            &[VarId(0), VarId(2), VarId(5)],
            "targets sorted and deduplicated"
        );
        assert_eq!(q.mode(), QueryMode::Marginals);
    }

    #[test]
    fn mpe_mode_switch() {
        let q = Query::new().mpe();
        assert_eq!(q.mode(), QueryMode::Mpe);
    }

    #[test]
    fn default_query_has_no_findings() {
        let q = Query::new();
        assert!(q.get_evidence().is_empty());
        assert!(q.get_virtual_evidence().is_empty());
        assert!(q.get_targets().is_none());
    }

    #[test]
    fn batch_builders_preserve_input_order() {
        let a = Query::new().observe(VarId(0), 1);
        let b = Query::new().mpe();
        let c = Query::new().targets([VarId(2)]);
        let mut batch = QueryBatch::new().with(a.clone());
        batch.push(b.clone());
        batch.extend([c.clone()]);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch[0], a);
        assert_eq!(batch[1], b);
        assert_eq!(batch[2], c);
        let collected: QueryBatch = vec![a.clone(), b.clone(), c.clone()].into_iter().collect();
        assert_eq!(collected, batch);
        assert_eq!(QueryBatch::from(vec![a, b, c]), batch);
        let roundtrip: Vec<Query> = batch.clone().into_iter().collect();
        assert_eq!(roundtrip.as_slice(), batch.queries());
    }

    #[test]
    fn result_accessors_are_mode_exclusive() {
        let marginals = QueryResult::Marginals(Posteriors::new(vec![vec![1.0]], 1.0));
        assert!(marginals.posteriors().is_some());
        assert!(marginals.mpe().is_none());
        let mpe = QueryResult::Mpe(MpeResult {
            assignment: vec![0],
            probability: 0.5,
        });
        assert!(mpe.posteriors().is_none());
        assert!(mpe.into_mpe().is_some());
    }
}
