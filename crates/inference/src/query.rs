//! The query builder and unified result type of the session API.
//!
//! A [`Query`] describes *what* to compute — hard evidence, virtual
//! (likelihood) evidence, an optional target-variable subset, and the
//! mode (posterior marginals or MPE). It is a plain value: build once,
//! reuse across sessions and solvers, send between threads.

use fastbn_bayesnet::{Evidence, VarId};

use crate::mpe::MpeResult;
use crate::posterior::Posteriors;
use crate::virtual_evidence::{canonical_likelihood, VirtualEvidence};

/// What a [`Query`] asks the engine to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueryMode {
    /// Posterior marginals (all variables, or the requested targets).
    #[default]
    Marginals,
    /// The most probable explanation: one max-product pass plus
    /// back-tracking, on the same tree.
    Mpe,
}

/// A description of one inference request, built fluently:
///
/// ```
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::{Query, Solver};
///
/// let net = datasets::sprinkler();
/// let solver = Solver::new(&net);
/// let wet = net.var_id("WetGrass").unwrap();
/// let rain = net.var_id("Rain").unwrap();
/// let query = Query::new().observe(wet, 0).targets([rain]);
/// let result = solver.query(&query).unwrap();
/// let posteriors = result.posteriors().unwrap();
/// assert!((posteriors.marginal(rain)[0] - 0.7079).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    evidence: Evidence,
    virtual_evidence: VirtualEvidence,
    targets: Option<Vec<VarId>>,
    mode: QueryMode,
}

impl Query {
    /// An empty query: no evidence, all marginals.
    pub fn new() -> Self {
        Query::default()
    }

    /// Replaces the hard evidence wholesale.
    pub fn evidence(mut self, evidence: Evidence) -> Self {
        self.evidence = evidence;
        self
    }

    /// Adds one hard finding `var = state`.
    ///
    /// Observing an already-observed variable **replaces** the earlier
    /// finding (last-wins, the [`Evidence::set`] contract): a query is a
    /// *set* of observations, not a history. Two build sequences that end
    /// at the same final evidence set are the same query — they compare
    /// equal, execute identically, and derive the same [`QueryKey`].
    /// Contrast [`Query::likelihood`], where repeated findings on one
    /// variable *accumulate*.
    pub fn observe(mut self, var: VarId, state: usize) -> Self {
        self.evidence.set(var, state);
        self
    }

    /// Replaces the virtual (likelihood) evidence wholesale.
    pub fn virtual_evidence(mut self, virtual_evidence: VirtualEvidence) -> Self {
        self.virtual_evidence = virtual_evidence;
        self
    }

    /// Adds one likelihood finding on `var` (Pearl's soft evidence).
    ///
    /// Repeated findings on the same variable **multiply together**
    /// (independent sensors) — they do *not* replace each other, unlike
    /// [`Query::observe`]'s last-wins hard evidence. Each finding is
    /// absorbed separately in insertion order, and the canonical
    /// [`QueryKey`] preserves that sequence, so a two-sensor query and a
    /// pre-multiplied single-sensor query are distinct cache entries
    /// (their floating-point round-off can differ). The vector's overall
    /// scale is irrelevant and canonicalized away — see
    /// [`VirtualEvidence`] for the exact rule.
    pub fn likelihood(mut self, var: VarId, likelihood: Vec<f64>) -> Self {
        self.virtual_evidence.add(var, likelihood);
        self
    }

    /// Restricts marginal extraction to `vars` — the caller pays only for
    /// the marginals it asks for. Duplicates are removed. Ignored in MPE
    /// mode (an explanation is always a full assignment).
    pub fn targets(mut self, vars: impl IntoIterator<Item = VarId>) -> Self {
        let mut targets: Vec<VarId> = vars.into_iter().collect();
        targets.sort_unstable();
        targets.dedup();
        self.targets = Some(targets);
        self
    }

    /// Adds one variable to the target set (creating it if absent).
    pub fn target(self, var: VarId) -> Self {
        let mut targets = self.targets.clone().unwrap_or_default();
        targets.push(var);
        self.targets(targets)
    }

    /// Switches the query to MPE mode.
    pub fn mpe(mut self) -> Self {
        self.mode = QueryMode::Mpe;
        self
    }

    /// The hard evidence.
    pub fn get_evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// The virtual evidence.
    pub fn get_virtual_evidence(&self) -> &VirtualEvidence {
        &self.virtual_evidence
    }

    /// The target set (`None` = all variables), sorted and deduplicated.
    pub fn get_targets(&self) -> Option<&[VarId]> {
        self.targets.as_deref()
    }

    /// The query mode.
    pub fn mode(&self) -> QueryMode {
        self.mode
    }

    /// The canonical cache key of this query — see [`QueryKey`].
    pub fn key(&self) -> QueryKey {
        QueryKey::from_parts(
            &self.evidence,
            &self.virtual_evidence,
            self.targets.as_deref(),
            self.mode,
        )
    }
}

/// The canonical identity of a [`Query`]: two queries with equal keys
/// make the engine perform the **exact same arithmetic**, so their
/// results are bit-identical and one may stand in for the other — the
/// contract behind the per-solver result cache
/// ([`QueryCache`](crate::cache::QueryCache)) and the serve window's
/// in-flight dedup.
///
/// Canonicalization folds away exactly the representation freedoms the
/// engine itself ignores:
///
/// * **hard evidence** is the final, sorted observation set —
///   [`Query::observe`] is last-wins, so the build history never leaks
///   into the key;
/// * **virtual evidence** stores each likelihood vector in its
///   [`canonical form`](VirtualEvidence#scale-canonicalization)
///   (max-normalized, `-0.0` → `+0.0`), bit-patterned via `to_bits`, in
///   the same stable order the engine absorbs them — proportional
///   vectors collide, differently-ordered multi-sensor stacks do not;
/// * **targets** are the sorted, deduplicated set ([`Query::targets`]
///   already canonicalizes), and are dropped entirely in MPE mode (an
///   explanation is always a full assignment, so the engine ignores
///   them);
/// * **mode** distinguishes marginal from MPE queries.
///
/// Key derivation is *total*: malformed queries (NaN likelihoods,
/// out-of-range states) still derive keys, and distinct defects derive
/// distinct keys — but the solver's cache only ever consults the key
/// *after* validation has accepted the query, so malformed requests are
/// never cached (see `tests/cache.rs`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// `(variable id, observed state)`, ascending by variable.
    evidence: Vec<(u32, u64)>,
    /// `(variable id, canonical likelihood bits)`, ascending by variable,
    /// same-variable findings in insertion (= absorption) order.
    likelihoods: Vec<(u32, Vec<u64>)>,
    /// Sorted, deduplicated target set; `None` = all variables. Always
    /// `None` in MPE mode.
    targets: Option<Vec<u32>>,
    mode: QueryMode,
}

impl QueryKey {
    /// Derives the canonical key of `query`.
    pub fn of(query: &Query) -> QueryKey {
        query.key()
    }

    /// The borrowed-parts core, shared with the solver's run path (which
    /// works on parts, not a materialized `Query`).
    pub(crate) fn from_parts(
        evidence: &Evidence,
        virtual_evidence: &VirtualEvidence,
        targets: Option<&[VarId]>,
        mode: QueryMode,
    ) -> QueryKey {
        QueryKey {
            evidence: evidence.iter().map(|(v, s)| (v.0, s as u64)).collect(),
            likelihoods: virtual_evidence
                .iter()
                .map(|(v, l)| {
                    (
                        v.0,
                        canonical_likelihood(l)
                            .iter()
                            .map(|p| p.to_bits())
                            .collect(),
                    )
                })
                .collect(),
            targets: match mode {
                QueryMode::Mpe => None,
                QueryMode::Marginals => targets.map(|t| t.iter().map(|v| v.0).collect()),
            },
            mode,
        }
    }

    /// Approximate heap footprint, used for the cache's byte accounting.
    pub(crate) fn approx_bytes(&self) -> usize {
        std::mem::size_of::<QueryKey>()
            + self.evidence.len() * std::mem::size_of::<(u32, u64)>()
            + self
                .likelihoods
                .iter()
                .map(|(_, bits)| std::mem::size_of::<(u32, Vec<u64>)>() + bits.len() * 8)
                .sum::<usize>()
            + self
                .targets
                .as_ref()
                .map_or(0, |t| t.len() * std::mem::size_of::<u32>())
    }
}

/// An ordered batch of [`Query`] values executed as one unit through
/// [`Session::run_batch`](crate::solver::Session::run_batch) or
/// [`Solver::query_batch`](crate::solver::Solver::query_batch).
///
/// Results come back as `Vec<Result<QueryResult, InferenceError>>` in
/// input order; a failing item (impossible evidence, malformed
/// likelihood, …) yields `Err` in its own slot without affecting its
/// neighbours. Batches at least as wide as the engine's worker pool are
/// dispatched across the pool — one query per worker, with pooled
/// scratch — which amortizes reset/evidence-entry/extraction setup that
/// a one-at-a-time loop pays per request:
///
/// ```
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::{Query, QueryBatch, Solver};
///
/// let net = datasets::sprinkler();
/// let solver = Solver::new(&net);
/// let wet = net.var_id("WetGrass").unwrap();
/// let batch: QueryBatch = (0..2).map(|s| Query::new().observe(wet, s)).collect();
/// let results = solver.query_batch(&batch);
/// assert_eq!(results.len(), 2);
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryBatch {
    queries: Vec<Query>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Appends one query to the batch.
    pub fn push(&mut self, query: Query) {
        self.queries.push(query);
    }

    /// Builder-style [`QueryBatch::push`].
    pub fn with(mut self, query: Query) -> Self {
        self.push(query);
        self
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates the queries in input order.
    pub fn iter(&self) -> std::slice::Iter<'_, Query> {
        self.queries.iter()
    }

    /// The queries as a slice, in input order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }
}

impl From<Vec<Query>> for QueryBatch {
    fn from(queries: Vec<Query>) -> Self {
        QueryBatch { queries }
    }
}

impl FromIterator<Query> for QueryBatch {
    fn from_iter<I: IntoIterator<Item = Query>>(iter: I) -> Self {
        QueryBatch {
            queries: iter.into_iter().collect(),
        }
    }
}

impl Extend<Query> for QueryBatch {
    fn extend<I: IntoIterator<Item = Query>>(&mut self, iter: I) {
        self.queries.extend(iter);
    }
}

impl std::ops::Index<usize> for QueryBatch {
    type Output = Query;

    fn index(&self, i: usize) -> &Query {
        &self.queries[i]
    }
}

impl<'a> IntoIterator for &'a QueryBatch {
    type Item = &'a Query;
    type IntoIter = std::slice::Iter<'a, Query>;

    fn into_iter(self) -> Self::IntoIter {
        self.queries.iter()
    }
}

impl IntoIterator for QueryBatch {
    type Item = Query;
    type IntoIter = std::vec::IntoIter<Query>;

    fn into_iter(self) -> Self::IntoIter {
        self.queries.into_iter()
    }
}

/// The unified result of [`Session::run`](crate::solver::Session::run):
/// either posterior marginals or an MPE assignment, depending on the
/// query's [`QueryMode`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Posterior marginals (full or targeted).
    Marginals(Posteriors),
    /// Most probable explanation.
    Mpe(MpeResult),
}

impl QueryResult {
    /// The marginals, if this was a marginal query.
    pub fn posteriors(&self) -> Option<&Posteriors> {
        match self {
            QueryResult::Marginals(p) => Some(p),
            QueryResult::Mpe(_) => None,
        }
    }

    /// Consumes the result into its marginals, if any.
    pub fn into_posteriors(self) -> Option<Posteriors> {
        match self {
            QueryResult::Marginals(p) => Some(p),
            QueryResult::Mpe(_) => None,
        }
    }

    /// The MPE solution, if this was an MPE query.
    pub fn mpe(&self) -> Option<&MpeResult> {
        match self {
            QueryResult::Mpe(m) => Some(m),
            QueryResult::Marginals(_) => None,
        }
    }

    /// Consumes the result into its MPE solution, if any.
    pub fn into_mpe(self) -> Option<MpeResult> {
        match self {
            QueryResult::Mpe(m) => Some(m),
            QueryResult::Marginals(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_evidence_and_targets() {
        let q = Query::new()
            .observe(VarId(3), 1)
            .observe(VarId(1), 0)
            .targets([VarId(5), VarId(2), VarId(5)])
            .target(VarId(0));
        assert_eq!(q.get_evidence().get(VarId(3)), Some(1));
        assert_eq!(q.get_evidence().get(VarId(1)), Some(0));
        assert_eq!(
            q.get_targets().unwrap(),
            &[VarId(0), VarId(2), VarId(5)],
            "targets sorted and deduplicated"
        );
        assert_eq!(q.mode(), QueryMode::Marginals);
    }

    #[test]
    fn mpe_mode_switch() {
        let q = Query::new().mpe();
        assert_eq!(q.mode(), QueryMode::Mpe);
    }

    #[test]
    fn observe_is_last_wins_and_keys_ignore_build_history() {
        // Re-observing replaces; two build orders ending at the same set
        // are the same query and the same key.
        let a = Query::new().observe(VarId(2), 0).observe(VarId(2), 1);
        assert_eq!(a.get_evidence().get(VarId(2)), Some(1), "last wins");
        assert_eq!(a.get_evidence().len(), 1);
        let b = Query::new()
            .observe(VarId(5), 0)
            .observe(VarId(2), 1)
            .observe(VarId(5), 1);
        let c = Query::new().observe(VarId(2), 1).observe(VarId(5), 1);
        assert_eq!(b, c);
        assert_eq!(b.key(), c.key());
    }

    #[test]
    fn repeated_likelihoods_accumulate_and_stay_distinct_in_the_key() {
        // Two sensors multiply — both findings survive, and the key keeps
        // them apart from a pre-multiplied single sensor (different
        // floating-point round-off is possible, so they must not alias).
        let two = Query::new()
            .likelihood(VarId(1), vec![0.8, 0.2])
            .likelihood(VarId(1), vec![0.8, 0.2]);
        assert_eq!(two.get_virtual_evidence().len(), 2);
        let merged = Query::new().likelihood(VarId(1), vec![0.64, 0.04]);
        assert_ne!(two.key(), merged.key());
        // And differently-ordered stacks of *different* sensors stay
        // distinct too (multiplication order changes round-off).
        let ab = Query::new()
            .likelihood(VarId(1), vec![0.8, 0.2])
            .likelihood(VarId(1), vec![0.5, 0.7]);
        let ba = Query::new()
            .likelihood(VarId(1), vec![0.5, 0.7])
            .likelihood(VarId(1), vec![0.8, 0.2]);
        assert_ne!(ab.key(), ba.key());
    }

    #[test]
    fn keys_canonicalize_likelihood_scale_and_negative_zero() {
        let base = Query::new().likelihood(VarId(0), vec![0.75, 0.25]);
        let scaled = Query::new().likelihood(VarId(0), vec![3.0, 1.0]);
        assert_eq!(base.key(), scaled.key(), "proportional vectors collide");
        let pos = Query::new().likelihood(VarId(0), vec![1.0, 0.0]);
        let neg = Query::new().likelihood(VarId(0), vec![1.0, -0.0]);
        assert_eq!(pos.key(), neg.key(), "-0.0 canonicalized to +0.0");
        let other = Query::new().likelihood(VarId(0), vec![0.5, 1.0]);
        assert_ne!(base.key(), other.key());
    }

    #[test]
    fn keys_separate_what_the_engine_separates() {
        let plain = Query::new().observe(VarId(0), 1);
        assert_ne!(plain.key(), Query::new().observe(VarId(0), 0).key());
        assert_ne!(plain.key(), Query::new().observe(VarId(1), 1).key());
        assert_ne!(plain.key(), plain.clone().targets([VarId(2)]).key());
        assert_ne!(plain.key(), plain.clone().mpe().key());
        // An explicit empty target set is not "all variables".
        assert_ne!(plain.key(), plain.clone().targets([]).key());
        // Hard evidence and its one-hot virtual twin are different
        // computations (point-mass reduce vs multiply), hence different
        // keys.
        assert_ne!(
            Query::new().observe(VarId(0), 0).key(),
            Query::new().likelihood(VarId(0), vec![1.0, 0.0]).key()
        );
    }

    #[test]
    fn mpe_keys_drop_targets() {
        // MPE ignores targets, so targeted and untargeted MPE queries are
        // the same computation — and the same key.
        let bare = Query::new().observe(VarId(3), 0).mpe();
        let targeted = Query::new().observe(VarId(3), 0).targets([VarId(1)]).mpe();
        assert_eq!(bare.key(), targeted.key());
    }

    #[test]
    fn key_derivation_is_total_on_malformed_queries() {
        // Keys must never panic — serve's window dedup derives them
        // before validation has run. Distinct defects stay distinct.
        let nan = Query::new().likelihood(VarId(0), vec![f64::NAN, 1.0]);
        let inf = Query::new().likelihood(VarId(0), vec![f64::INFINITY, 1.0]);
        let zero = Query::new().likelihood(VarId(0), vec![0.0, 0.0]);
        assert_eq!(nan.key(), nan.key(), "NaN keys are self-equal (bit keyed)");
        assert_ne!(nan.key(), inf.key());
        assert_ne!(inf.key(), zero.key());
        let _ = Query::new().observe(VarId(u32::MAX), usize::MAX).key();
    }

    #[test]
    fn default_query_has_no_findings() {
        let q = Query::new();
        assert!(q.get_evidence().is_empty());
        assert!(q.get_virtual_evidence().is_empty());
        assert!(q.get_targets().is_none());
    }

    #[test]
    fn batch_builders_preserve_input_order() {
        let a = Query::new().observe(VarId(0), 1);
        let b = Query::new().mpe();
        let c = Query::new().targets([VarId(2)]);
        let mut batch = QueryBatch::new().with(a.clone());
        batch.push(b.clone());
        batch.extend([c.clone()]);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch[0], a);
        assert_eq!(batch[1], b);
        assert_eq!(batch[2], c);
        let collected: QueryBatch = vec![a.clone(), b.clone(), c.clone()].into_iter().collect();
        assert_eq!(collected, batch);
        assert_eq!(QueryBatch::from(vec![a, b, c]), batch);
        let roundtrip: Vec<Query> = batch.clone().into_iter().collect();
        assert_eq!(roundtrip.as_slice(), batch.queries());
    }

    #[test]
    fn result_accessors_are_mode_exclusive() {
        let marginals = QueryResult::Marginals(Posteriors::new(vec![vec![1.0]], 1.0));
        assert!(marginals.posteriors().is_some());
        assert!(marginals.mpe().is_none());
        let mpe = QueryResult::Mpe(MpeResult {
            assignment: vec![0],
            probability: 0.5,
        });
        assert!(mpe.posteriors().is_none());
        assert!(mpe.into_mpe().is_some());
    }
}
