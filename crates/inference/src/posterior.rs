//! Query results: one normalized marginal per variable.

use fastbn_bayesnet::VarId;

/// Posterior marginals for every network variable given the entered
/// evidence, plus the evidence probability.
///
/// Observed variables get a point-mass marginal (1 on the observed state),
/// which keeps cross-engine and cross-oracle comparisons uniform.
#[derive(Debug, Clone, PartialEq)]
pub struct Posteriors {
    marginals: Vec<Vec<f64>>,
    /// `P(evidence)` under the model (1.0 for an empty query).
    pub prob_evidence: f64,
}

impl Posteriors {
    /// Assembles a result; `marginals[v]` must already be normalized.
    pub fn new(marginals: Vec<Vec<f64>>, prob_evidence: f64) -> Self {
        Posteriors {
            marginals,
            prob_evidence,
        }
    }

    /// The marginal distribution of `var`.
    pub fn marginal(&self, var: VarId) -> &[f64] {
        &self.marginals[var.index()]
    }

    /// All marginals, indexed by variable id.
    pub fn marginals(&self) -> &[Vec<f64>] {
        &self.marginals
    }

    /// Number of variables covered.
    pub fn num_vars(&self) -> usize {
        self.marginals.len()
    }

    /// Natural log of the evidence probability.
    pub fn log_likelihood(&self) -> f64 {
        self.prob_evidence.ln()
    }

    /// Largest absolute difference between two results over all marginals
    /// — the metric used by the cross-engine agreement tests.
    pub fn max_abs_diff(&self, other: &Posteriors) -> f64 {
        assert_eq!(self.num_vars(), other.num_vars());
        let mut worst: f64 = 0.0;
        for (a, b) in self.marginals.iter().zip(&other.marginals) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                worst = worst.max((x - y).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Posteriors::new(vec![vec![0.25, 0.75], vec![1.0]], 0.5);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.marginal(VarId(0)), &[0.25, 0.75]);
        assert!((p.log_likelihood() - 0.5f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn max_abs_diff_finds_worst_entry() {
        let a = Posteriors::new(vec![vec![0.2, 0.8], vec![0.5, 0.5]], 1.0);
        let b = Posteriors::new(vec![vec![0.2, 0.8], vec![0.4, 0.6]], 1.0);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-15);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
