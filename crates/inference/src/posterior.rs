//! Query results: normalized marginals per variable, for all variables
//! or a requested subset.

use fastbn_bayesnet::VarId;

/// Posterior marginals given the entered evidence, plus the evidence
/// probability.
///
/// Covers either **every** network variable (the default) or only the
/// **targets** a [`Query`](crate::query::Query) asked for — targeted
/// results skip the extraction work (and memory) for everything else.
/// Observed variables get a point-mass marginal (1 on the observed
/// state), which keeps cross-engine and cross-oracle comparisons uniform.
#[derive(Debug, Clone, PartialEq)]
pub struct Posteriors {
    /// Dense by variable id; an empty inner vector marks a variable whose
    /// marginal was not requested (cardinality ≥ 1 always, so empty is
    /// unambiguous).
    marginals: Vec<Vec<f64>>,
    /// `P(evidence)` under the model (1.0 for an empty query).
    pub prob_evidence: f64,
}

impl Posteriors {
    /// Assembles a full result; `marginals[v]` must already be normalized
    /// and non-empty for every variable.
    pub fn new(marginals: Vec<Vec<f64>>, prob_evidence: f64) -> Self {
        debug_assert!(marginals.iter().all(|m| !m.is_empty()));
        Posteriors {
            marginals,
            prob_evidence,
        }
    }

    /// Assembles a targeted result over `num_vars` network variables with
    /// marginals only for the `(var, distribution)` pairs given.
    pub fn targeted(
        num_vars: usize,
        entries: impl IntoIterator<Item = (VarId, Vec<f64>)>,
        prob_evidence: f64,
    ) -> Self {
        let mut marginals = vec![Vec::new(); num_vars];
        for (var, m) in entries {
            debug_assert!(!m.is_empty());
            marginals[var.index()] = m;
        }
        Posteriors {
            marginals,
            prob_evidence,
        }
    }

    /// The marginal distribution of `var`.
    ///
    /// # Panics
    /// If `var`'s marginal was not computed (it was outside the query's
    /// target set). Use [`Posteriors::try_marginal`] to probe.
    pub fn marginal(&self, var: VarId) -> &[f64] {
        let m = &self.marginals[var.index()];
        assert!(
            !m.is_empty(),
            "marginal of variable {} was not requested by this query \
             (targeted result); add it to Query::targets",
            var.index()
        );
        m
    }

    /// The marginal of `var`, or `None` if this is a targeted result that
    /// did not include it.
    pub fn try_marginal(&self, var: VarId) -> Option<&[f64]> {
        let m = &self.marginals[var.index()];
        (!m.is_empty()).then_some(m.as_slice())
    }

    /// Whether `var`'s marginal was computed.
    pub fn has_marginal(&self, var: VarId) -> bool {
        !self.marginals[var.index()].is_empty()
    }

    /// Variables whose marginals were computed, ascending.
    pub fn computed_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.marginals
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_empty())
            .map(|(v, _)| VarId::from_index(v))
    }

    /// All marginal slots, indexed by variable id (empty slots for
    /// variables outside a targeted query).
    pub fn marginals(&self) -> &[Vec<f64>] {
        &self.marginals
    }

    /// Number of network variables covered by the result's index space.
    pub fn num_vars(&self) -> usize {
        self.marginals.len()
    }

    /// Natural log of the evidence probability.
    pub fn log_likelihood(&self) -> f64 {
        self.prob_evidence.ln()
    }

    /// Largest absolute difference between two results over all marginals
    /// — the metric used by the cross-engine agreement tests. Both
    /// results must cover the same variables.
    pub fn max_abs_diff(&self, other: &Posteriors) -> f64 {
        assert_eq!(self.num_vars(), other.num_vars());
        let mut worst: f64 = 0.0;
        for (a, b) in self.marginals.iter().zip(&other.marginals) {
            assert_eq!(a.len(), b.len(), "results cover different variables");
            for (x, y) in a.iter().zip(b) {
                worst = worst.max((x - y).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Posteriors::new(vec![vec![0.25, 0.75], vec![1.0]], 0.5);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.marginal(VarId(0)), &[0.25, 0.75]);
        assert!((p.log_likelihood() - 0.5f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn max_abs_diff_finds_worst_entry() {
        let a = Posteriors::new(vec![vec![0.2, 0.8], vec![0.5, 0.5]], 1.0);
        let b = Posteriors::new(vec![vec![0.2, 0.8], vec![0.4, 0.6]], 1.0);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-15);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn targeted_results_expose_only_requested_vars() {
        let p = Posteriors::targeted(3, [(VarId(1), vec![0.4, 0.6])], 0.9);
        assert_eq!(p.num_vars(), 3);
        assert!(p.has_marginal(VarId(1)));
        assert!(!p.has_marginal(VarId(0)));
        assert_eq!(p.try_marginal(VarId(1)), Some(&[0.4, 0.6][..]));
        assert_eq!(p.try_marginal(VarId(2)), None);
        assert_eq!(p.computed_vars().collect::<Vec<_>>(), vec![VarId(1)]);
    }

    #[test]
    #[should_panic(expected = "not requested")]
    fn targeted_marginal_panics_for_uncomputed_var() {
        let p = Posteriors::targeted(2, [(VarId(0), vec![1.0])], 1.0);
        let _ = p.marginal(VarId(1));
    }
}
