//! Dynamic slab race detector (debug builds and `--features slab-track`).
//!
//! The static linter (`fastbn-analyze`, FB-L4) confines raw-slab
//! primitives to audited modules; this module checks the *runtime* claim
//! those audits rest on: within one parallel phase, the slab regions
//! handed to different threads are pairwise disjoint unless every
//! claimant only reads.
//!
//! Every [`SlabRaw::slice`](crate::state::SlabRaw)/`slice_mut` and
//! `WorkState::message_slices` call registers a claim — range,
//! mutability, `#[track_caller]` site, thread id — against its slab's
//! current *generation*; `WorkState::raw` and `SlabRaw::begin_phase`
//! open a new generation. Two overlapping claims within one generation,
//! at least one of them mutable, from two different threads, panic with
//! both claim sites. Same-thread overlaps are legal sequential
//! re-borrows (the Seq engine flushing a pending ratio into the clique
//! it is about to read, the Direct engine re-claiming a receiver for
//! each child in a group) and stay silent — this is a *race* detector,
//! not a borrow checker.
//!
//! Cost: one global mutex hop per claim. Debug builds only; release
//! builds compile every entry point here to an empty inline function
//! unless the `slab-track` feature is enabled.

#[cfg(any(debug_assertions, feature = "slab-track"))]
mod imp {
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::thread::{self, ThreadId};

    /// One registered borrow of a slab range.
    #[derive(Clone, Copy)]
    struct Claim {
        start: usize,
        end: usize,
        mutable: bool,
        site: &'static Location<'static>,
        thread: ThreadId,
    }

    /// Claims of one live slab within its current generation.
    #[derive(Default)]
    struct SlabClaims {
        claims: Vec<Claim>,
    }

    /// Live slabs, keyed by base address. An address is only ambiguous
    /// across time (free + realloc), and [`retire`] clears the entry
    /// when a `WorkState` drops, so reuse starts clean.
    fn registry() -> &'static Mutex<HashMap<usize, SlabClaims>> {
        static REGISTRY: OnceLock<Mutex<HashMap<usize, SlabClaims>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<usize, SlabClaims>> {
        // The map is never left mid-update, so a poisoned lock (some
        // unrelated test panicked while holding it) is still consistent.
        registry().lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a new generation for `base`'s slab: earlier claims no
    /// longer conflict with later ones. Called at every `WorkState::raw`
    /// and at explicit phase boundaries inside a single raw view
    /// (`SlabRaw::begin_phase` — the Hybrid engine's per-layer phases).
    pub fn begin_phase(base: *const f64) {
        let mut map = lock();
        // `clear` keeps the claim buffer's capacity, so steady-state
        // propagation stays allocation-free even with tracking on (the
        // `alloc.rs` regression test runs with the tracker active).
        map.entry(base as usize).or_default().claims.clear();
    }

    /// Registers a borrow of `[off, off + len)` of `base`'s slab,
    /// panicking — with both claim sites — when it races a prior claim
    /// of the current generation from another thread.
    #[track_caller]
    pub fn claim(base: *const f64, off: usize, len: usize, mutable: bool) {
        let site = Location::caller();
        let thread = thread::current().id();
        let (start, end) = (off, off + len);
        let mut map = lock();
        let entry = map.entry(base as usize).or_default();
        for prior in &entry.claims {
            let overlap = start < prior.end && prior.start < end;
            if overlap && (mutable || prior.mutable) && prior.thread != thread {
                let clash = *prior;
                drop(map); // release (don't poison) the registry first
                panic!(
                    "slab race: {} claim of [{start}, {end}) at {site} overlaps {} claim \
                     of [{}, {}) at {} from another thread (same parallel phase)",
                    kind(mutable),
                    kind(clash.mutable),
                    clash.start,
                    clash.end,
                    clash.site,
                );
            }
        }
        entry.claims.push(Claim {
            start,
            end,
            mutable,
            site,
            thread,
        });
    }

    fn kind(mutable: bool) -> &'static str {
        if mutable {
            "mutable"
        } else {
            "shared"
        }
    }

    /// Forgets a slab (called when its `WorkState` drops), so a later
    /// allocation reusing the address starts with no claims.
    pub fn retire(base: *const f64) {
        lock().remove(&(base as usize));
    }
}

#[cfg(not(any(debug_assertions, feature = "slab-track")))]
mod imp {
    //! Release-mode no-ops: tracking compiles away entirely.

    #[inline(always)]
    pub fn begin_phase(_base: *const f64) {}

    #[inline(always)]
    pub fn claim(_base: *const f64, _off: usize, _len: usize, _mutable: bool) {}

    #[inline(always)]
    pub fn retire(_base: *const f64) {}
}

pub(crate) use imp::{begin_phase, claim, retire};
