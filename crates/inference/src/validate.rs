//! Cross-engine agreement checks, shared by the integration tests and the
//! benchmark harness's self-check mode.

use std::sync::Arc;

use fastbn_bayesnet::{BayesianNetwork, Evidence};
use fastbn_jtree::JtreeOptions;

use crate::engines::{build_engine, EngineKind};
use crate::oracle::variable_elimination;
use crate::prepared::Prepared;

/// Runs every engine (at each thread count) and the VE oracle on each
/// evidence case, asserting:
///
/// * all junction-tree engines agree **bitwise** with `SeqJt`;
/// * `SeqJt` agrees with variable elimination within `tol`.
///
/// Returns the worst JT-vs-VE deviation observed.
pub fn assert_engines_agree(
    net: &BayesianNetwork,
    cases: &[Evidence],
    thread_counts: &[usize],
    tol: f64,
) -> f64 {
    let prepared = Arc::new(Prepared::new(net, &JtreeOptions::default()));
    let mut seq = build_engine(EngineKind::Seq, prepared.clone(), 1);
    let mut worst = 0.0f64;
    for (i, evidence) in cases.iter().enumerate() {
        let expected = seq.query(evidence);
        let oracle = variable_elimination::all_posteriors(net, evidence);
        match (&expected, &oracle) {
            (Ok(a), Ok(b)) => {
                let d = a.max_abs_diff(b);
                assert!(
                    d <= tol,
                    "case {i}: SeqJt deviates from VE by {d} (tol {tol})"
                );
                let rel = (a.prob_evidence - b.prob_evidence).abs()
                    / b.prob_evidence.max(f64::MIN_POSITIVE);
                assert!(rel <= tol.max(1e-9), "case {i}: P(e) relative error {rel}");
                worst = worst.max(d);
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "case {i}: error mismatch"),
            (a, b) => panic!("case {i}: SeqJt {a:?} but VE {b:?}"),
        }

        for kind in [
            EngineKind::Reference,
            EngineKind::Direct,
            EngineKind::Primitive,
            EngineKind::Element,
            EngineKind::Hybrid,
        ] {
            for &t in thread_counts {
                let mut engine = build_engine(kind, prepared.clone(), t);
                let got = engine.query(evidence);
                match (&expected, &got) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.max_abs_diff(b),
                            0.0,
                            "case {i}: {} (t={t}) differs from SeqJt",
                            kind.name()
                        );
                    }
                    (Err(ea), Err(eb)) => {
                        assert_eq!(ea, eb, "case {i}: {} error mismatch", kind.name())
                    }
                    (a, b) => panic!(
                        "case {i}: SeqJt {a:?} but {} (t={t}) {b:?}",
                        kind.name()
                    ),
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::{datasets, sampler};

    #[test]
    fn full_agreement_on_asia() {
        let net = datasets::asia();
        let cases: Vec<Evidence> = sampler::generate_cases(&net, 6, 0.25, 3)
            .into_iter()
            .map(|c| c.evidence)
            .collect();
        let worst = assert_engines_agree(&net, &cases, &[1, 3], 1e-9);
        assert!(worst <= 1e-9);
    }
}
