//! Query validation (the typed-error gate every query passes before it
//! may touch scratch) and cross-engine agreement checks shared by the
//! integration tests and the benchmark harness's self-check mode.

use std::sync::Arc;

use fastbn_bayesnet::{BayesianNetwork, Evidence};
use fastbn_jtree::JtreeOptions;

use crate::engines::EngineKind;
use crate::error::{InferenceError, LikelihoodDefect};
use crate::oracle::variable_elimination;
use crate::prepared::Prepared;
use crate::solver::Solver;
use crate::virtual_evidence::VirtualEvidence;

/// Rejects evidence naming unknown variables or out-of-range states
/// with a typed error, before it can corrupt scratch or panic on an
/// index (the network is not available here, so the check runs against
/// the compiled cardinalities).
pub(crate) fn validate_evidence(
    prepared: &Prepared,
    evidence: &Evidence,
) -> Result<(), InferenceError> {
    for (var, state) in evidence.iter() {
        validate_finding(prepared, var, state)?;
    }
    Ok(())
}

/// The single-finding core of [`validate_evidence`], shared with the
/// incremental edit path (a delta edit carries one finding, validated
/// before any slab region is touched).
pub(crate) fn validate_finding(
    prepared: &Prepared,
    var: fastbn_bayesnet::VarId,
    state: usize,
) -> Result<(), InferenceError> {
    if var.index() >= prepared.num_vars() {
        return Err(InferenceError::InvalidEvidence(
            fastbn_bayesnet::evidence::EvidenceError::UnknownVariable(var),
        ));
    }
    let cardinality = prepared.cards[var.index()];
    if state >= cardinality {
        return Err(InferenceError::InvalidEvidence(
            fastbn_bayesnet::evidence::EvidenceError::StateOutOfRange {
                var,
                state,
                cardinality,
            },
        ));
    }
    Ok(())
}

/// Rejects virtual findings that would corrupt a query if multiplied in:
/// unknown variables, likelihood vectors whose length disagrees with the
/// variable's cardinality (which would silently mis-multiply in release
/// builds), and malformed entries — negative values, NaN/infinities, or
/// all-zero vectors, each of which would surface later as NaN or
/// all-zero posteriors instead of a typed error.
pub(crate) fn validate_virtual(
    prepared: &Prepared,
    virtual_evidence: &VirtualEvidence,
) -> Result<(), InferenceError> {
    for (var, likelihood) in virtual_evidence.iter() {
        validate_likelihood(prepared, var, likelihood)?;
    }
    Ok(())
}

/// The single-finding core of [`validate_virtual`], shared with the
/// incremental edit path.
pub(crate) fn validate_likelihood(
    prepared: &Prepared,
    var: fastbn_bayesnet::VarId,
    likelihood: &[f64],
) -> Result<(), InferenceError> {
    if var.index() >= prepared.num_vars() {
        return Err(InferenceError::InvalidEvidence(
            fastbn_bayesnet::evidence::EvidenceError::UnknownVariable(var),
        ));
    }
    let expected = prepared.cards[var.index()];
    if likelihood.len() != expected {
        return Err(InferenceError::InvalidLikelihood {
            var: var.index(),
            expected,
            got: likelihood.len(),
        });
    }
    let mut any_positive = false;
    for &p in likelihood {
        if !p.is_finite() {
            return Err(InferenceError::MalformedLikelihood {
                var: var.index(),
                defect: LikelihoodDefect::NonFinite,
            });
        }
        if p < 0.0 {
            return Err(InferenceError::MalformedLikelihood {
                var: var.index(),
                defect: LikelihoodDefect::Negative,
            });
        }
        any_positive |= p > 0.0;
    }
    if !any_positive {
        return Err(InferenceError::MalformedLikelihood {
            var: var.index(),
            defect: LikelihoodDefect::AllZero,
        });
    }
    Ok(())
}

/// Runs every engine (at each thread count) and the VE oracle on each
/// evidence case, asserting:
///
/// * all junction-tree engines agree **bitwise** with `SeqJt`;
/// * `SeqJt` agrees with variable elimination within `tol`.
///
/// All solvers share one `Prepared`; each engine/thread combination gets
/// its own [`Solver`] and queries through a session, exactly as a caller
/// of the public API would.
///
/// Returns the worst JT-vs-VE deviation observed.
pub fn assert_engines_agree(
    net: &BayesianNetwork,
    cases: &[Evidence],
    thread_counts: &[usize],
    tol: f64,
) -> f64 {
    let prepared = Arc::new(Prepared::new(net, &JtreeOptions::default()));
    let seq = Solver::from_prepared(prepared.clone()).build();
    let mut seq_session = seq.session();
    let mut worst = 0.0f64;

    // One solver per (kind, threads), reused across cases.
    let others: Vec<Solver> = [
        EngineKind::Reference,
        EngineKind::Direct,
        EngineKind::Primitive,
        EngineKind::Element,
        EngineKind::Hybrid,
    ]
    .into_iter()
    .flat_map(|kind| {
        let prepared = &prepared;
        thread_counts.iter().map(move |&t| {
            Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(t)
                .build()
        })
    })
    .collect();
    let mut sessions: Vec<_> = others.iter().map(Solver::session).collect();

    for (i, evidence) in cases.iter().enumerate() {
        let expected = seq_session.posteriors(evidence);
        let oracle = variable_elimination::all_posteriors(net, evidence);
        match (&expected, &oracle) {
            (Ok(a), Ok(b)) => {
                let d = a.max_abs_diff(b);
                assert!(
                    d <= tol,
                    "case {i}: SeqJt deviates from VE by {d} (tol {tol})"
                );
                let rel = (a.prob_evidence - b.prob_evidence).abs()
                    / b.prob_evidence.max(f64::MIN_POSITIVE);
                assert!(rel <= tol.max(1e-9), "case {i}: P(e) relative error {rel}");
                worst = worst.max(d);
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "case {i}: error mismatch"),
            (a, b) => panic!("case {i}: SeqJt {a:?} but VE {b:?}"),
        }

        for session in &mut sessions {
            let label = format!(
                "{} (t={})",
                session.solver().engine_name(),
                session.solver().threads()
            );
            let got = session.posteriors(evidence);
            match (&expected, &got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.max_abs_diff(b),
                        0.0,
                        "case {i}: {label} differs from SeqJt"
                    );
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "case {i}: {label} error mismatch")
                }
                (a, b) => panic!("case {i}: SeqJt {a:?} but {label} {b:?}"),
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use fastbn_bayesnet::{datasets, sampler, VarId};

    /// Each malformed-likelihood shape must surface as its typed error —
    /// never a panic, never NaN posteriors — from both the dedicated
    /// validator and a full query run.
    #[test]
    fn malformed_likelihoods_yield_typed_errors() {
        let net = datasets::sprinkler();
        let solver = Solver::new(&net);
        let rain = net.var_id("Rain").unwrap();
        let cases: Vec<(Vec<f64>, InferenceError)> = vec![
            (
                vec![0.0, 0.0],
                InferenceError::MalformedLikelihood {
                    var: rain.index(),
                    defect: LikelihoodDefect::AllZero,
                },
            ),
            (
                vec![0.5, -0.1],
                InferenceError::MalformedLikelihood {
                    var: rain.index(),
                    defect: LikelihoodDefect::Negative,
                },
            ),
            (
                vec![f64::NAN, 1.0],
                InferenceError::MalformedLikelihood {
                    var: rain.index(),
                    defect: LikelihoodDefect::NonFinite,
                },
            ),
            (
                vec![0.2, f64::INFINITY],
                InferenceError::MalformedLikelihood {
                    var: rain.index(),
                    defect: LikelihoodDefect::NonFinite,
                },
            ),
            (
                vec![0.3, 0.3, 0.4],
                InferenceError::InvalidLikelihood {
                    var: rain.index(),
                    expected: 2,
                    got: 3,
                },
            ),
            (
                vec![],
                InferenceError::InvalidLikelihood {
                    var: rain.index(),
                    expected: 2,
                    got: 0,
                },
            ),
        ];
        for (likelihood, expected_err) in cases {
            let virt = VirtualEvidence::empty().with(rain, likelihood.clone());
            assert_eq!(
                validate_virtual(solver.prepared(), &virt).unwrap_err(),
                expected_err,
                "validator on {likelihood:?}"
            );
            let got = solver.query(&Query::new().likelihood(rain, likelihood.clone()));
            assert_eq!(got.unwrap_err(), expected_err, "query on {likelihood:?}");
        }
    }

    #[test]
    fn negative_entry_reported_before_all_zero_check() {
        // A vector that is both negative-bearing and positive-free reports
        // the entry defect, which points at the actual bad datum.
        let net = datasets::sprinkler();
        let solver = Solver::new(&net);
        let rain = net.var_id("Rain").unwrap();
        let err = solver
            .query(&Query::new().likelihood(rain, vec![-1.0, 0.0]))
            .unwrap_err();
        assert_eq!(
            err,
            InferenceError::MalformedLikelihood {
                var: rain.index(),
                defect: LikelihoodDefect::Negative,
            }
        );
    }

    #[test]
    fn virtual_finding_on_unknown_variable_is_rejected() {
        let net = datasets::sprinkler();
        let solver = Solver::new(&net);
        let err = solver
            .query(&Query::new().likelihood(VarId(99), vec![1.0, 1.0]))
            .unwrap_err();
        assert!(matches!(err, InferenceError::InvalidEvidence(_)));
    }

    #[test]
    fn well_formed_likelihood_passes_validation() {
        let net = datasets::sprinkler();
        let solver = Solver::new(&net);
        let rain = net.var_id("Rain").unwrap();
        let virt = VirtualEvidence::empty().with(rain, vec![0.0, 0.4]);
        assert_eq!(validate_virtual(solver.prepared(), &virt), Ok(()));
        assert!(solver
            .query(&Query::new().likelihood(rain, vec![0.0, 0.4]))
            .is_ok());
    }

    #[test]
    fn full_agreement_on_asia() {
        let net = datasets::asia();
        let cases: Vec<Evidence> = sampler::generate_cases(&net, 6, 0.25, 3)
            .into_iter()
            .map(|c| c.evidence)
            .collect();
        let worst = assert_engines_agree(&net, &cases, &[1, 3], 1e-9);
        assert!(worst <= 1e-9);
    }
}
