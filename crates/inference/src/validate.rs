//! Cross-engine agreement checks, shared by the integration tests and the
//! benchmark harness's self-check mode.

use std::sync::Arc;

use fastbn_bayesnet::{BayesianNetwork, Evidence};
use fastbn_jtree::JtreeOptions;

use crate::engines::EngineKind;
use crate::oracle::variable_elimination;
use crate::prepared::Prepared;
use crate::solver::Solver;

/// Runs every engine (at each thread count) and the VE oracle on each
/// evidence case, asserting:
///
/// * all junction-tree engines agree **bitwise** with `SeqJt`;
/// * `SeqJt` agrees with variable elimination within `tol`.
///
/// All solvers share one `Prepared`; each engine/thread combination gets
/// its own [`Solver`] and queries through a session, exactly as a caller
/// of the public API would.
///
/// Returns the worst JT-vs-VE deviation observed.
pub fn assert_engines_agree(
    net: &BayesianNetwork,
    cases: &[Evidence],
    thread_counts: &[usize],
    tol: f64,
) -> f64 {
    let prepared = Arc::new(Prepared::new(net, &JtreeOptions::default()));
    let seq = Solver::from_prepared(prepared.clone()).build();
    let mut seq_session = seq.session();
    let mut worst = 0.0f64;

    // One solver per (kind, threads), reused across cases.
    let others: Vec<Solver> = [
        EngineKind::Reference,
        EngineKind::Direct,
        EngineKind::Primitive,
        EngineKind::Element,
        EngineKind::Hybrid,
    ]
    .into_iter()
    .flat_map(|kind| {
        let prepared = &prepared;
        thread_counts.iter().map(move |&t| {
            Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(t)
                .build()
        })
    })
    .collect();
    let mut sessions: Vec<_> = others.iter().map(Solver::session).collect();

    for (i, evidence) in cases.iter().enumerate() {
        let expected = seq_session.posteriors(evidence);
        let oracle = variable_elimination::all_posteriors(net, evidence);
        match (&expected, &oracle) {
            (Ok(a), Ok(b)) => {
                let d = a.max_abs_diff(b);
                assert!(
                    d <= tol,
                    "case {i}: SeqJt deviates from VE by {d} (tol {tol})"
                );
                let rel = (a.prob_evidence - b.prob_evidence).abs()
                    / b.prob_evidence.max(f64::MIN_POSITIVE);
                assert!(rel <= tol.max(1e-9), "case {i}: P(e) relative error {rel}");
                worst = worst.max(d);
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "case {i}: error mismatch"),
            (a, b) => panic!("case {i}: SeqJt {a:?} but VE {b:?}"),
        }

        for session in &mut sessions {
            let label = format!(
                "{} (t={})",
                session.solver().engine_name(),
                session.solver().threads()
            );
            let got = session.posteriors(evidence);
            match (&expected, &got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.max_abs_diff(b),
                        0.0,
                        "case {i}: {label} differs from SeqJt"
                    );
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "case {i}: {label} error mismatch")
                }
                (a, b) => panic!("case {i}: SeqJt {a:?} but {label} {b:?}"),
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::{datasets, sampler};

    #[test]
    fn full_agreement_on_asia() {
        let net = datasets::asia();
        let cases: Vec<Evidence> = sampler::generate_cases(&net, 6, 0.25, 3)
            .into_iter()
            .map(|c| c.evidence)
            .collect();
        let worst = assert_engines_agree(&net, &cases, &[1, 3], 1e-9);
        assert!(worst <= 1e-9);
    }
}
