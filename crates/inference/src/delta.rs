//! Incremental evidence-delta re-propagation — a [`LiveSession`] that
//! holds a fully propagated slab and, when one finding changes, re-runs
//! only the propagation the change can reach.
//!
//! # The dirty-set rule
//!
//! Entering a finding touches exactly one clique (the variable's home),
//! so after an edit the only **collect** messages that change are those on
//! the path from that dirty clique up to its component root: every other
//! subtree still sends bit-identical messages. The live state therefore
//! keeps two saved regions per propagation (see
//! [`SlabLayout`](crate::prepared::SlabLayout)): each separator's collect
//! message and each clique's post-collect values. An edit rebuilds the
//! dirty path deepest-first — each path clique is recomputed from the
//! initial slab, its findings re-applied, and its children's collect
//! ratios multiplied back in ascending message order, replaying **saved**
//! messages for clean children and recomputing them for the on-path
//! child — then snapshots the new post-collect values.
//!
//! Once the root changes, *every* distribute message in the component
//! changes, so an eager distribute would cap the speedup near 2×. The
//! live session instead distributes **lazily**: `P(e)` reads the saved
//! root snapshots directly (roots receive no distribute message), a
//! targeted marginal materializes final values only along the root-to-home
//! path of its variable, and only a full-posteriors read pays the full
//! distribute. Every materialized value is bit-identical to a from-scratch
//! propagation because a distribute message depends only on its parent's
//! final value — the same operands flow through the same
//! [`KernelPlan`]s in the same order.
//!
//! # Retraction semantics
//!
//! Retracting (or changing) a finding never divides evidence back out of
//! a table — division would not be bit-identical and `0/0` is lossy.
//! Instead the dirty clique is **recomputed from its initial-values
//! slab**: initial potentials, then every *current* finding homed there
//! (hard reductions in ascending variable order, then canonical
//! likelihood multiplies in ascending variable order), then the incoming
//! collect ratios. The result carries the exact bits a from-scratch run
//! would produce.
//!
//! The steady-state single-finding edit allocates nothing: every table
//! lives in the one live slab, every index mapping in precompiled plans
//! (including one per-variable likelihood plan compiled at session
//! construction), and the path walk reuses a preallocated buffer —
//! enforced by the counting-allocator test in `tests/alloc.rs`.
//!
//! fastbn: deny-hot-alloc

use std::sync::Arc;

use fastbn_bayesnet::{Evidence, VarId};
use fastbn_potential::{ops, Domain, KernelPlan};

use crate::error::InferenceError;
use crate::posterior::Posteriors;
use crate::prepared::Prepared;
use crate::solver::Solver;
use crate::state::WorkState;
use crate::validate::{validate_finding, validate_likelihood};
use crate::virtual_evidence::{canonicalize_likelihood, VirtualEvidence};

/// One edit to a [`LiveSession`]'s evidence: add, change or retract a
/// hard finding, or set/retract a virtual (likelihood) finding.
///
/// Edits are idempotent: re-observing a variable in its current state,
/// retracting an absent finding, or re-setting a proportional likelihood
/// is a no-op (the session detects it and re-propagates nothing).
#[derive(Debug, Clone, PartialEq)]
pub enum EvidenceDelta {
    /// Observe `var = state`, adding a new hard finding or replacing the
    /// variable's previous one.
    Observe {
        /// The observed variable.
        var: VarId,
        /// The observed state index.
        state: usize,
    },
    /// Remove `var`'s hard finding (no-op if it has none).
    Retract {
        /// The variable whose finding is retracted.
        var: VarId,
    },
    /// Attach a likelihood vector to `var`, replacing any previous one.
    /// Unlike [`Query::likelihood`](crate::query::Query::likelihood) —
    /// where repeated findings multiply — a live session keeps **one**
    /// likelihood per variable, because edits must be retractable
    /// one-for-one.
    Likelihood {
        /// The variable the soft finding attaches to.
        var: VarId,
        /// The likelihood vector, one entry per state.
        likelihood: Vec<f64>,
    },
    /// Remove `var`'s likelihood finding (no-op if it has none).
    RetractLikelihood {
        /// The variable whose likelihood is retracted.
        var: VarId,
    },
}

impl EvidenceDelta {
    /// Shorthand for [`EvidenceDelta::Observe`].
    pub fn observe(var: VarId, state: usize) -> Self {
        EvidenceDelta::Observe { var, state }
    }

    /// Shorthand for [`EvidenceDelta::Retract`].
    pub fn retract(var: VarId) -> Self {
        EvidenceDelta::Retract { var }
    }

    /// Shorthand for [`EvidenceDelta::Likelihood`].
    pub fn likelihood(var: VarId, likelihood: Vec<f64>) -> Self {
        EvidenceDelta::Likelihood { var, likelihood }
    }

    /// Shorthand for [`EvidenceDelta::RetractLikelihood`].
    pub fn retract_likelihood(var: VarId) -> Self {
        EvidenceDelta::RetractLikelihood { var }
    }
}

/// A long-lived inference session holding a **fully propagated** slab
/// that accepts [`EvidenceDelta`] edits and re-propagates only what each
/// edit can reach — the streaming/monitoring counterpart of the
/// per-query [`Session`](crate::solver::Session).
///
/// Every read is bit-identical to a from-scratch query with the
/// session's current evidence, for every engine and thread count (the
/// engines themselves agree bitwise, and the incremental replay performs
/// the same arithmetic in the same order).
///
/// ```
/// use std::sync::Arc;
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::{EvidenceDelta, Solver};
///
/// let net = datasets::asia();
/// let solver = Arc::new(Solver::new(&net));
/// let mut live = solver.live_session();
/// let xray = net.var_id("XRay").unwrap();
/// let tub = net.var_id("Tuberculosis").unwrap();
///
/// let base = live.marginal(tub).unwrap()[0];
/// live.apply(EvidenceDelta::observe(xray, 0)).unwrap();
/// assert!(live.marginal(tub).unwrap()[0] > base); // x-ray raises P(tub)
/// live.apply(EvidenceDelta::retract(xray)).unwrap();
/// assert_eq!(live.marginal(tub).unwrap()[0], base); // bitwise restored
/// ```
pub struct LiveSession {
    solver: Arc<Solver>,
    prepared: Arc<Prepared>,
    state: WorkState,
    /// Current hard findings (ascending by variable id).
    evidence: Evidence,
    /// Current likelihood findings, canonicalized, at most one per
    /// variable, indexed by variable.
    likelihoods: Box<[Option<Vec<f64>>]>,
    /// Variables homed at each clique, ascending — the replay order of a
    /// clique rebuild.
    home_vars: Vec<Vec<VarId>>,
    /// Incoming collect message ids of each clique (ascending, which is
    /// the engines' canonical ratio-application order).
    children: Vec<Vec<u32>>,
    /// One precompiled likelihood plan per variable (home-clique domain →
    /// single-variable domain), so virtual-evidence replay never compiles.
    var_plans: Vec<KernelPlan>,
    /// Epoch stamp per clique: the clique's active region holds **final**
    /// (post-distribute) values iff `dist_epoch[c] == epoch`.
    dist_epoch: Box<[u64]>,
    /// Bumped by every effective edit, invalidating all final values in
    /// O(1); post-collect state stays valid (it is kept eagerly current).
    epoch: u64,
    /// Reusable clique-path buffer (edit replay and lazy materialization).
    path: Vec<u32>,
}

impl LiveSession {
    /// Opens a live session over `solver`, fully propagating its (empty)
    /// evidence state. Construction allocates the live slab and compiles
    /// the per-variable likelihood plans; edits afterwards do not
    /// allocate.
    // fastbn: allow(hot-alloc): one-time session construction — builds the
    // live slab, child lists and per-variable likelihood plans.
    pub fn new(solver: Arc<Solver>) -> Self {
        let prepared = Arc::clone(solver.prepared());
        let n_cliques = prepared.num_cliques();
        let n_vars = prepared.num_vars();
        let mut home_vars: Vec<Vec<VarId>> = vec![Vec::new(); n_cliques];
        for v in 0..n_vars {
            home_vars[prepared.home[v]].push(VarId::from_index(v));
        }
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n_cliques];
        for (id, m) in prepared.built.schedule.messages.iter().enumerate() {
            children[m.parent].push(id as u32);
        }
        let var_plans: Vec<KernelPlan> = (0..n_vars)
            .map(|v| {
                let id = VarId::from_index(v);
                KernelPlan::new(
                    &prepared.clique_domains[prepared.home[v]],
                    &Domain::new(vec![(id, prepared.cards[v])]),
                )
            })
            .collect();
        let state = WorkState::with_saved(&prepared);
        let path = Vec::with_capacity(prepared.built.rooted.max_depth + 1);
        let mut live = LiveSession {
            solver,
            prepared,
            state,
            evidence: Evidence::empty(),
            likelihoods: vec![None; n_vars].into_boxed_slice(),
            home_vars,
            children,
            var_plans,
            dist_epoch: vec![0; n_cliques].into_boxed_slice(),
            epoch: 0,
            path,
        };
        live.repropagate_full();
        live
    }

    /// Applies one edit: validates it (a malformed edit returns its typed
    /// error and leaves the session untouched and fully usable), updates
    /// the evidence bookkeeping, and re-propagates the dirty path. No-op
    /// edits return `Ok` without touching the slab.
    pub fn apply(&mut self, edit: EvidenceDelta) -> Result<(), InferenceError> {
        let prepared = Arc::clone(&self.prepared);
        match edit {
            EvidenceDelta::Observe { var, state } => {
                validate_finding(&prepared, var, state)?;
                if self.evidence.get(var) == Some(state) {
                    return Ok(());
                }
                self.evidence.set(var, state);
                self.repropagate_path(&prepared, prepared.home[var.index()]);
            }
            EvidenceDelta::Retract { var } => {
                validate_finding(&prepared, var, 0)?;
                if self.evidence.get(var).is_none() {
                    return Ok(());
                }
                self.evidence.clear(var);
                self.repropagate_path(&prepared, prepared.home[var.index()]);
            }
            EvidenceDelta::Likelihood {
                var,
                mut likelihood,
            } => {
                validate_likelihood(&prepared, var, &likelihood)?;
                canonicalize_likelihood(&mut likelihood);
                let slot = &mut self.likelihoods[var.index()];
                if slot
                    .as_deref()
                    .is_some_and(|old| bits_equal(old, &likelihood))
                {
                    return Ok(());
                }
                *slot = Some(likelihood);
                self.repropagate_path(&prepared, prepared.home[var.index()]);
            }
            EvidenceDelta::RetractLikelihood { var } => {
                validate_finding(&prepared, var, 0)?;
                if self.likelihoods[var.index()].is_none() {
                    return Ok(());
                }
                self.likelihoods[var.index()] = None;
                self.repropagate_path(&prepared, prepared.home[var.index()]);
            }
        }
        Ok(())
    }

    /// Applies edits in order, stopping at the first error. Edits applied
    /// before the failure remain in effect (each edit is atomic; the
    /// sequence is not).
    pub fn apply_all(
        &mut self,
        edits: impl IntoIterator<Item = EvidenceDelta>,
    ) -> Result<(), InferenceError> {
        for edit in edits {
            self.apply(edit)?;
        }
        Ok(())
    }

    /// `P(evidence)` under the current findings, read from the saved
    /// post-collect root snapshots (no distribute needed — roots receive
    /// no distribute message). Returns the raw value; zero or non-finite
    /// means the evidence is impossible, which the posterior readers
    /// surface as [`InferenceError::ImpossibleEvidence`].
    pub fn prob_evidence(&self) -> f64 {
        self.prepared
            .built
            .rooted
            .roots
            .iter()
            .map(|&r| self.state.saved_clique(r).iter().sum::<f64>())
            .product()
    }

    /// All posterior marginals under the current findings. This is the
    /// one read that pays a full distribute (lazily materialized, then
    /// cached until the next effective edit).
    pub fn posteriors(&mut self) -> Result<Posteriors, InferenceError> {
        let prepared = Arc::clone(&self.prepared);
        self.materialize_all(&prepared);
        self.state.extract_posteriors(&prepared, &self.evidence)
    }

    /// Posteriors for `targets` only, materializing final values only
    /// along each target's root-to-home path. `targets` must be sorted
    /// and deduplicated (as [`Query::targets`](crate::query::Query::targets)
    /// guarantees); an out-of-network target fails with
    /// [`InferenceError::InvalidTarget`].
    pub fn posteriors_for(&mut self, targets: &[VarId]) -> Result<Posteriors, InferenceError> {
        let prepared = Arc::clone(&self.prepared);
        if let Some(&bad) = targets.iter().find(|v| v.index() >= prepared.num_vars()) {
            return Err(InferenceError::InvalidTarget {
                var: bad.index(),
                num_vars: prepared.num_vars(),
            });
        }
        for i in 0..prepared.built.rooted.roots.len() {
            self.materialize(&prepared, prepared.built.rooted.roots[i]);
        }
        for &var in targets {
            if self.evidence.get(var).is_none() {
                self.materialize(&prepared, prepared.home[var.index()]);
            }
        }
        self.state
            .extract_posteriors_for(&prepared, &self.evidence, targets)
    }

    /// One variable's normalized posterior under the current findings.
    // fastbn: allow(hot-alloc): allocating convenience form; the hot path
    // is `marginal_into`.
    pub fn marginal(&mut self, var: VarId) -> Result<Vec<f64>, InferenceError> {
        let prepared = Arc::clone(&self.prepared);
        let mut out = vec![0.0; prepared.cards.get(var.index()).copied().unwrap_or(0)];
        self.marginal_into(var, &mut out)?;
        Ok(out)
    }

    /// Allocation-free form of [`LiveSession::marginal`]: writes the
    /// normalized posterior into a caller-provided buffer of length
    /// `card(var)` — the steady-state monitored read of a streaming UI
    /// (edit, then refresh a dashboard variable, with zero allocations).
    pub fn marginal_into(&mut self, var: VarId, out: &mut [f64]) -> Result<(), InferenceError> {
        let prepared = Arc::clone(&self.prepared);
        if var.index() >= prepared.num_vars() {
            return Err(InferenceError::InvalidTarget {
                var: var.index(),
                num_vars: prepared.num_vars(),
            });
        }
        debug_assert_eq!(out.len(), prepared.cards[var.index()]);
        let prob_evidence = self.prob_evidence();
        if prob_evidence <= 0.0 || !prob_evidence.is_finite() {
            return Err(InferenceError::ImpossibleEvidence);
        }
        if let Some(state) = self.evidence.get(var) {
            out.fill(0.0);
            out[state] = 1.0;
            return Ok(());
        }
        let home = prepared.home[var.index()];
        self.materialize(&prepared, home);
        ops::marginal_of_var_into(
            self.state.clique(home),
            &prepared.clique_domains[home],
            var,
            out,
        );
        let total: f64 = out.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(InferenceError::ImpossibleEvidence);
        }
        for p in out {
            *p /= total;
        }
        Ok(())
    }

    /// The session's current hard findings.
    pub fn evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// The canonicalized likelihood currently attached to `var`, if any.
    pub fn likelihood(&self, var: VarId) -> Option<&[f64]> {
        self.likelihoods.get(var.index())?.as_deref()
    }

    /// The session's current likelihood findings as a [`VirtualEvidence`]
    /// (one canonical vector per variable); the equivalent from-scratch
    /// query is `Query::new().evidence(live.evidence().clone())
    /// .virtual_evidence(live.virtual_evidence())`.
    // fastbn: allow(hot-alloc): diagnostic snapshot, not on the edit path.
    pub fn virtual_evidence(&self) -> VirtualEvidence {
        let mut virt = VirtualEvidence::empty();
        for (v, slot) in self.likelihoods.iter().enumerate() {
            if let Some(likelihood) = slot {
                virt.add(VarId::from_index(v), likelihood.clone());
            }
        }
        virt
    }

    /// The solver this session was opened over.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Full propagation with saved-message recording: reset, re-absorb
    /// every current finding, run collect writing each message into its
    /// saved region, snapshot post-collect cliques. Used at construction;
    /// edits afterwards go through [`LiveSession::repropagate_path`].
    fn repropagate_full(&mut self) {
        let prepared = Arc::clone(&self.prepared);
        self.state.reset(&prepared);
        for (var, state) in self.evidence.iter() {
            let home = prepared.home[var.index()];
            let dom = &prepared.clique_domains[home];
            let (stride, card) = (dom.stride_of(var), dom.card_of(var));
            ops::reduce_evidence_slice(self.state.clique_mut(home), stride, card, state);
        }
        for v in 0..prepared.num_vars() {
            if let Some(likelihood) = &self.likelihoods[v] {
                let home = prepared.home[v];
                self.var_plans[v].extend_multiply(self.state.clique_mut(home), likelihood);
            }
        }
        let schedule = &prepared.built.schedule;
        for layer in &schedule.collect_layers {
            for &id in layer {
                let m = schedule.messages[id];
                self.state
                    .collect_into_saved(&prepared, m.child, m.parent, m.sep);
            }
        }
        self.state.snapshot_cliques();
        self.epoch += 1;
    }

    /// Re-runs collect along the path from `dirty` to its component root
    /// (deepest-first), rebuilding each path clique from the initial slab
    /// and replaying saved messages for its clean children, then bumps
    /// the epoch (final values become stale everywhere; post-collect
    /// state is current again).
    fn repropagate_path(&mut self, prepared: &Prepared, dirty: usize) {
        let rooted = &prepared.built.rooted;
        self.path.clear();
        let mut c = dirty;
        loop {
            self.path.push(c as u32);
            match rooted.parent[c] {
                Some((parent, _)) => c = parent,
                None => break,
            }
        }
        for i in 0..self.path.len() {
            let c = self.path[i] as usize;
            let recomputed_child = if i == 0 {
                None
            } else {
                Some(self.path[i - 1] as usize)
            };
            self.rebuild_clique(prepared, c, recomputed_child);
            self.state.snapshot_clique(c);
        }
        self.epoch += 1;
    }

    /// Recomputes clique `c`'s post-collect values from scratch: initial
    /// potentials, hard reductions (ascending variable order), canonical
    /// likelihood multiplies (ascending variable order), then incoming
    /// collect ratios in ascending message order — recomputing the
    /// message from `recomputed_child` (already rebuilt, deeper on the
    /// dirty path) and replaying the saved message of every other child.
    /// This is the same operand sequence a from-scratch propagation
    /// applies to `c`, hence bit-identical.
    fn rebuild_clique(&mut self, prepared: &Prepared, c: usize, recomputed_child: Option<usize>) {
        self.state.load_initial_clique(prepared, c);
        let dom = &prepared.clique_domains[c];
        for &var in &self.home_vars[c] {
            if let Some(state) = self.evidence.get(var) {
                let (stride, card) = (dom.stride_of(var), dom.card_of(var));
                ops::reduce_evidence_slice(self.state.clique_mut(c), stride, card, state);
            }
        }
        for &var in &self.home_vars[c] {
            if let Some(likelihood) = &self.likelihoods[var.index()] {
                self.var_plans[var.index()].extend_multiply(self.state.clique_mut(c), likelihood);
            }
        }
        for &id in &self.children[c] {
            let m = prepared.built.schedule.messages[id as usize];
            if Some(m.child) == recomputed_child {
                self.state.collect_into_saved(prepared, m.child, c, m.sep);
            } else {
                self.state.replay_saved_ratio(prepared, c, m.sep);
            }
        }
    }

    /// Ensures clique `c`'s active region holds **final** values for the
    /// current epoch, materializing the distribute steps from the nearest
    /// final ancestor downward (a root's final values are its saved
    /// post-collect snapshot).
    fn materialize(&mut self, prepared: &Prepared, c: usize) {
        if self.dist_epoch[c] == self.epoch {
            return;
        }
        let rooted = &prepared.built.rooted;
        self.path.clear();
        let mut cur = c;
        while self.dist_epoch[cur] != self.epoch {
            self.path.push(cur as u32);
            match rooted.parent[cur] {
                Some((parent, _)) => cur = parent,
                None => break,
            }
        }
        for i in (0..self.path.len()).rev() {
            let node = self.path[i] as usize;
            match rooted.parent[node] {
                None => self.state.restore_clique(node),
                Some((parent, sep)) => self
                    .state
                    .distribute_from_parent(prepared, parent, node, sep),
            }
            self.dist_epoch[node] = self.epoch;
        }
    }

    /// Materializes every clique (BFS order, parents first) — the full
    /// lazy distribute backing [`LiveSession::posteriors`].
    fn materialize_all(&mut self, prepared: &Prepared) {
        let rooted = &prepared.built.rooted;
        for i in 0..rooted.bfs_order.len() {
            let c = rooted.bfs_order[i];
            if self.dist_epoch[c] == self.epoch {
                continue;
            }
            match rooted.parent[c] {
                None => self.state.restore_clique(c),
                Some((parent, sep)) => self.state.distribute_from_parent(prepared, parent, c, sep),
            }
            self.dist_epoch[c] = self.epoch;
        }
    }
}

impl std::fmt::Debug for LiveSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSession")
            .field("solver", &*self.solver)
            .field("findings", &self.evidence.len())
            .field(
                "likelihoods",
                &self.likelihoods.iter().filter(|s| s.is_some()).count(),
            )
            .finish_non_exhaustive()
    }
}

/// Bitwise slice equality (`-0.0 != +0.0`, NaN equal to its own bits) —
/// the no-op test for likelihood replacement.
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use fastbn_bayesnet::datasets;

    fn assert_bitwise(a: &Posteriors, b: &Posteriors) {
        assert_eq!(a.prob_evidence.to_bits(), b.prob_evidence.to_bits());
        for (ma, mb) in a.marginals().iter().zip(b.marginals()) {
            assert_eq!(ma.len(), mb.len());
            for (x, y) in ma.iter().zip(mb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn live_session_matches_from_scratch_after_each_edit() {
        let net = datasets::asia();
        let solver = Arc::new(Solver::new(&net));
        let mut live = solver.live_session();
        let mut session = solver.session();
        let xray = net.var_id("XRay").unwrap();
        let dysp = net.var_id("Dyspnea").unwrap();
        let smoke = net.var_id("Smoker").unwrap();

        let edits = [
            EvidenceDelta::observe(xray, 0),
            EvidenceDelta::observe(dysp, 1),
            EvidenceDelta::observe(xray, 1), // change
            EvidenceDelta::likelihood(smoke, vec![0.7, 0.3]),
            EvidenceDelta::retract(dysp),
            EvidenceDelta::retract_likelihood(smoke),
            EvidenceDelta::retract(xray), // back to empty
        ];
        for edit in edits {
            live.apply(edit).unwrap();
            let scratch = session
                .run(
                    &Query::new()
                        .evidence(live.evidence().clone())
                        .virtual_evidence(live.virtual_evidence()),
                )
                .unwrap()
                .into_posteriors()
                .unwrap();
            let incremental = live.posteriors().unwrap();
            assert_bitwise(&incremental, &scratch);
            assert_eq!(
                live.prob_evidence().to_bits(),
                scratch.prob_evidence.to_bits()
            );
        }
    }

    #[test]
    fn targeted_reads_match_full_distribute() {
        let net = datasets::student();
        let solver = Arc::new(Solver::new(&net));
        let mut live = solver.live_session();
        let grade = net.var_id("Grade").unwrap();
        let intel = net.var_id("Intelligence").unwrap();
        live.apply(EvidenceDelta::observe(grade, 2)).unwrap();
        // Targeted read first (partial materialization) ...
        let targeted = live.posteriors_for(&[intel]).unwrap();
        let mut buf = vec![0.0; 2];
        live.marginal_into(intel, &mut buf).unwrap();
        // ... then the full read; both must carry identical bits.
        let full = live.posteriors().unwrap();
        for (x, y) in targeted.marginal(intel).iter().zip(full.marginal(intel)) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in buf.iter().zip(full.marginal(intel)) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn noop_edits_do_not_bump_the_epoch() {
        let net = datasets::sprinkler();
        let solver = Arc::new(Solver::new(&net));
        let mut live = solver.live_session();
        let rain = net.var_id("Rain").unwrap();
        live.apply(EvidenceDelta::observe(rain, 0)).unwrap();
        let epoch = live.epoch;
        live.apply(EvidenceDelta::observe(rain, 0)).unwrap();
        live.apply(EvidenceDelta::retract(net.var_id("Cloudy").unwrap()))
            .unwrap();
        live.apply(EvidenceDelta::retract_likelihood(rain)).unwrap();
        assert_eq!(live.epoch, epoch, "no-op edits must not re-propagate");
        // Proportional likelihoods canonicalize identically → second set
        // is a no-op too.
        live.apply(EvidenceDelta::likelihood(rain, vec![0.8, 0.4]))
            .unwrap();
        let epoch = live.epoch;
        live.apply(EvidenceDelta::likelihood(rain, vec![1.6, 0.8]))
            .unwrap();
        assert_eq!(live.epoch, epoch, "proportional likelihood is a no-op");
    }

    #[test]
    fn impossible_evidence_surfaces_and_retracts_cleanly() {
        let net = datasets::asia();
        let solver = Arc::new(Solver::new(&net));
        let mut live = solver.live_session();
        let tub = net.var_id("Tuberculosis").unwrap();
        let either = net.var_id("TbOrCa").unwrap();
        let baseline = live.posteriors().unwrap();
        live.apply(EvidenceDelta::observe(tub, 0)).unwrap();
        live.apply(EvidenceDelta::observe(either, 1)).unwrap();
        assert_eq!(
            live.posteriors().unwrap_err(),
            InferenceError::ImpossibleEvidence
        );
        assert_eq!(live.prob_evidence(), 0.0);
        live.apply(EvidenceDelta::retract(tub)).unwrap();
        live.apply(EvidenceDelta::retract(either)).unwrap();
        assert_bitwise(&live.posteriors().unwrap(), &baseline);
    }

    #[test]
    fn forest_components_stay_independent() {
        // Two disconnected variables → a two-root junction forest.
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("a", &["x", "y"]);
        let c = b.add_var("c", &["s", "t", "u"]);
        b.set_cpt(a, vec![], vec![0.3, 0.7]).unwrap();
        b.set_cpt(c, vec![], vec![0.5, 0.25, 0.25]).unwrap();
        let net = b.build().unwrap();
        let solver = Arc::new(Solver::new(&net));
        let mut live = solver.live_session();
        live.apply(EvidenceDelta::observe(a, 1)).unwrap();
        let scratch = solver.posteriors(&Evidence::from_pairs([(a, 1)])).unwrap();
        assert_bitwise(&live.posteriors().unwrap(), &scratch);
        assert_eq!(
            live.prob_evidence().to_bits(),
            scratch.prob_evidence.to_bits()
        );
    }
}
