//! The concurrent session API: [`Solver`] (immutable compiled model),
//! [`Session`] (cheap per-caller handle with pooled scratch), and the
//! scratch pool that connects them.
//!
//! The Fast-BNI engines parallelize *inside* one query; serving heavy
//! traffic also needs parallelism *across* queries. A `Solver` compiles a
//! network once (junction tree, initial potentials, engine task plans)
//! into a `Send + Sync` value; any number of threads then open
//! `Session`s against it and run [`Query`]s concurrently. Per-query
//! scratch ([`WorkState`]) is recycled through a lock-free pool, so
//! steady-state querying performs no allocation, and results are
//! bit-identical to the sequential baseline regardless of engine, thread
//! count, or interleaving.
//!
//! fastbn: audited-raw-ptr

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use fastbn_bayesnet::{BayesianNetwork, Evidence, VarId};
use fastbn_jtree::JtreeOptions;
use fastbn_potential::PotentialTable;

use crate::cache::{CacheConfig, CacheStats, QueryCache};
use crate::engines::{make_engine, make_engine_on, EngineKind, InferenceEngine};
use crate::error::InferenceError;
use crate::mpe::{mpe_on_state, MpeResult};
use crate::posterior::Posteriors;
use crate::prepared::Prepared;
use crate::query::{Query, QueryBatch, QueryKey, QueryMode, QueryResult};
use crate::state::WorkState;
use crate::validate::{validate_evidence, validate_virtual};
use crate::virtual_evidence::{absorb_virtual, VirtualEvidence};

/// An immutable, `Send + Sync` compiled inference model: shared
/// [`Prepared`] structures plus one stateless engine and a pool of
/// reusable [`WorkState`] scratch.
///
/// Construction is the expensive step (triangulation, initial
/// potentials, engine task plans); queries afterwards are cheap and may
/// run from many threads at once:
///
/// ```
/// use fastbn_bayesnet::{datasets, Evidence};
/// use fastbn_inference::{EngineKind, Query, Solver};
///
/// let net = datasets::asia();
/// let solver = Solver::builder(&net).engine(EngineKind::Hybrid).threads(2).build();
/// let xray = net.var_id("XRay").unwrap();
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         scope.spawn(|| {
///             let mut session = solver.session();
///             let post = session.posteriors(&Evidence::from_pairs([(xray, 0)])).unwrap();
///             assert!(post.prob_evidence > 0.0);
///         });
///     }
/// });
/// ```
pub struct Solver {
    prepared: Arc<Prepared>,
    engine: Box<dyn InferenceEngine>,
    kind: EngineKind,
    scratch: ScratchPool,
    /// The optional query-result cache ([`SolverBuilder::cache`]);
    /// consulted by every run path after validation. The model is
    /// immutable, so entries never go stale.
    cache: Option<QueryCache>,
}

impl Solver {
    /// Compiles `net` with defaults: the optimized sequential engine
    /// (`EngineKind::Seq`), default junction-tree options. Cross-query
    /// throughput then comes from concurrent sessions; pick a parallel
    /// engine via [`Solver::builder`] to also parallelize inside each
    /// query.
    pub fn new(net: &BayesianNetwork) -> Solver {
        Solver::builder(net).build()
    }

    /// Starts a builder compiling from a network.
    pub fn builder(net: &BayesianNetwork) -> SolverBuilder<'_> {
        SolverBuilder {
            source: Source::Net(net, JtreeOptions::default()),
            kind: EngineKind::Seq,
            threads: 1,
            pool: None,
            cache: None,
        }
    }

    /// Starts a builder over already-prepared structures (lets several
    /// solvers — e.g. one per engine kind — share one `Prepared`).
    pub fn from_prepared(prepared: Arc<Prepared>) -> SolverBuilder<'static> {
        SolverBuilder {
            source: Source::Prepared(prepared),
            kind: EngineKind::Seq,
            threads: 1,
            pool: None,
            cache: None,
        }
    }

    /// Opens a session: a cheap per-caller handle holding one scratch
    /// state drawn from the pool (allocated fresh only when the pool is
    /// empty). Drop the session to return the scratch.
    pub fn session(&self) -> Session<'_> {
        SessionCore::over(self)
    }

    /// Opens an [`OwnedSession`](crate::owned::OwnedSession) over this
    /// solver, consuming one `Arc` reference. Unlike [`Solver::session`],
    /// the returned handle carries no borrow, so it can move into spawned
    /// threads and task runtimes. Clone the `Arc` first to keep your own
    /// handle:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use fastbn_bayesnet::{datasets, Evidence};
    /// use fastbn_inference::Solver;
    ///
    /// let solver = Arc::new(Solver::new(&datasets::sprinkler()));
    /// let mut session = Arc::clone(&solver).into_session();
    /// let worker = std::thread::spawn(move || {
    ///     session.posteriors(&Evidence::empty()).unwrap().prob_evidence
    /// });
    /// assert!((worker.join().unwrap() - 1.0).abs() < 1e-9);
    /// ```
    pub fn into_session(self: Arc<Self>) -> crate::owned::OwnedSession {
        crate::owned::OwnedSession::new(self)
    }

    /// Opens a [`LiveSession`](crate::delta::LiveSession): a fully
    /// propagated state that accepts incremental
    /// [`EvidenceDelta`](crate::delta::EvidenceDelta) edits and
    /// re-propagates only what each edit can reach. Clones the `Arc`
    /// (the live session keeps its own handle).
    pub fn live_session(self: &Arc<Self>) -> crate::delta::LiveSession {
        crate::delta::LiveSession::new(Arc::clone(self))
    }

    /// Draws one scratch state from the pool (for session handles).
    pub(crate) fn acquire_scratch(&self) -> Box<ScratchNode> {
        self.scratch.acquire(&self.prepared)
    }

    /// One-shot convenience: open a session, run `query`, return the
    /// result. For repeated queries keep a [`Session`] instead (it reuses
    /// its scratch without touching the pool).
    pub fn query(&self, query: &Query) -> Result<QueryResult, InferenceError> {
        self.session().run(query)
    }

    /// One-shot convenience: run `batch`, returning one result per query
    /// in input order. See [`Session::run_batch`] for the execution
    /// strategy. Batches wide enough for outer parallelism skip session
    /// setup entirely (the outer path draws its scratch per chunk, so a
    /// session's state would sit idle).
    pub fn query_batch(&self, batch: &QueryBatch) -> Vec<Result<QueryResult, InferenceError>> {
        if self.outer_pool_for(batch.len()).is_some() {
            self.run_batch_outer(batch)
        } else {
            self.session().run_batch(batch)
        }
    }

    /// [`Solver::query_batch`] with one optional
    /// [`TraceContext`](crate::trace::TraceContext) per
    /// query slot: each query executes with its context installed
    /// ([`crate::trace::scoped`]) on whichever thread runs it, so engine
    /// phase spans land in the right trace. Execution strategy, result
    /// ordering, and numerical output are identical to the untraced
    /// path — the contexts only add span recording around it.
    ///
    /// `ctxs.len()` must equal `batch.len()`.
    pub fn query_batch_traced(
        &self,
        batch: &QueryBatch,
        ctxs: &[Option<crate::trace::TraceContext>],
    ) -> Vec<Result<QueryResult, InferenceError>> {
        assert_eq!(
            ctxs.len(),
            batch.len(),
            "one trace context slot per batch query"
        );
        if self.outer_pool_for(batch.len()).is_some() {
            self.run_batch_outer_ctx(batch, Some(ctxs))
        } else {
            // Same narrow-batch path Session::run_batch takes: one
            // session, queries run in order — with each query's context
            // scoped around its run.
            let mut session = self.session();
            batch
                .queries()
                .iter()
                .zip(ctxs)
                .map(|(query, ctx)| {
                    let _trace = crate::trace::scoped(ctx.as_ref());
                    session.run(query)
                })
                .collect()
        }
    }

    /// One-shot convenience for the common case: all posterior marginals
    /// given hard evidence.
    pub fn posteriors(&self, evidence: &Evidence) -> Result<Posteriors, InferenceError> {
        self.session().posteriors(evidence)
    }

    /// The engine kind this solver was compiled with.
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// The engine's display name.
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Worker threads used *inside* each query (1 for sequential
    /// engines). Independent of how many sessions query concurrently.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// The shared query-independent structures.
    pub fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    /// A co-ownable handle to the engine's worker pool (`None` for the
    /// sequential engines). Pass it to another builder's
    /// [`SolverBuilder::pool`] to compile a second model onto the *same*
    /// worker team — the pool-sharing configuration the multi-model
    /// registry uses.
    pub fn pool_handle(&self) -> Option<Arc<fastbn_parallel::ThreadPool>> {
        self.engine.pool_handle()
    }

    /// The query-result cache, if one was enabled via
    /// [`SolverBuilder::cache`].
    pub fn cache(&self) -> Option<&QueryCache> {
        self.cache.as_ref()
    }

    /// A snapshot of the cache counters, or `None` when the solver was
    /// built without a cache.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(QueryCache::stats)
    }

    /// Writes this solver's point-in-time stats into `metrics` as gauges
    /// under `scope`: `{scope}.threads`, and — when a cache is enabled —
    /// `{scope}.cache.{hits,misses,insertions,evictions,entries,bytes}`.
    /// Gauges (not counters) because the cache keeps its own authoritative
    /// counters; this mirrors the latest snapshot for export alongside the
    /// serving-layer metrics.
    pub fn export_metrics(&self, metrics: &fastbn_telemetry::MetricsRegistry, scope: &str) {
        metrics.set_gauge(&format!("{scope}.threads"), self.threads() as u64);
        if let Some(stats) = self.cache_stats() {
            metrics.set_gauge(&format!("{scope}.cache.hits"), stats.hits);
            metrics.set_gauge(&format!("{scope}.cache.misses"), stats.misses);
            metrics.set_gauge(&format!("{scope}.cache.insertions"), stats.insertions);
            metrics.set_gauge(&format!("{scope}.cache.evictions"), stats.evictions);
            metrics.set_gauge(&format!("{scope}.cache.entries"), stats.entries as u64);
            metrics.set_gauge(&format!("{scope}.cache.bytes"), stats.bytes as u64);
        }
    }

    /// Number of network variables.
    pub fn num_vars(&self) -> usize {
        self.prepared.num_vars()
    }

    /// Number of scratch states currently parked in the pool (one per
    /// peak-concurrency session, in steady state).
    pub fn pooled_states(&self) -> usize {
        self.scratch.len()
    }

    /// The engine's worker pool, when a batch of `n` queries should be
    /// spread across it: outer parallelism only pays once there is at
    /// least one query per pool member; narrower batches do better giving
    /// each query the whole pool via its inner regions.
    pub(crate) fn outer_pool_for(&self, n: usize) -> Option<&fastbn_parallel::ThreadPool> {
        self.engine
            .pool()
            .filter(|pool| pool.threads() > 1 && n >= pool.threads())
    }

    /// The outer-parallel batch path: queries dispatched across the
    /// engine's pool, each chunk working on scratch from a pre-acquired
    /// set. Callers must have checked [`Solver::outer_pool_for`].
    pub(crate) fn run_batch_outer(
        &self,
        batch: &QueryBatch,
    ) -> Vec<Result<QueryResult, InferenceError>> {
        self.run_batch_outer_ctx(batch, None)
    }

    /// [`Solver::run_batch_outer`] with optional per-slot trace
    /// contexts (`ctxs[i]` wraps query `i`); `None` is the untraced
    /// fast path.
    pub(crate) fn run_batch_outer_ctx(
        &self,
        batch: &QueryBatch,
        ctxs: Option<&[Option<crate::trace::TraceContext>]>,
    ) -> Vec<Result<QueryResult, InferenceError>> {
        let queries = batch.queries();
        let pool = self
            .outer_pool_for(queries.len())
            .expect("caller checked the batch is wide enough for outer parallelism");
        let mut results: Vec<Option<Result<QueryResult, InferenceError>>> =
            std::iter::repeat_with(|| None)
                .take(queries.len())
                .collect();
        // Pre-acquire the scratch on this thread, one state per pool
        // member: sequential acquires actually reuse parked states,
        // whereas per-chunk acquires inside the region would race the
        // pool's swap-whole-chain pop and frequently allocate fresh
        // WorkStates on the hot path. Chunk bodies check states out of
        // this stack; at most `threads` chunks are in flight at once, so
        // it never runs dry.
        let stack: std::sync::Mutex<Vec<Box<ScratchNode>>> = std::sync::Mutex::new(
            (0..pool.threads().min(queries.len()))
                .map(|_| self.scratch.acquire(&self.prepared))
                .collect(),
        );
        // A couple of chunks per thread balances mixed query costs while
        // still amortizing one scratch checkout over several queries.
        let sched = fastbn_parallel::Schedule::dynamic_for(queries.len(), pool.threads(), 2);
        pool.parallel_chunks_mut(&mut results, sched, |start, chunk| {
            // Every query in the chunk reuses the same allocations, and
            // an erroring query leaves nothing behind (each run starts
            // with a full reset).
            let mut node = stack
                .lock()
                .expect("no chunk body panics while holding the stack lock")
                .pop()
                .expect("one pre-acquired state per concurrently running chunk");
            for (offset, slot) in chunk.iter_mut().enumerate() {
                let query = &queries[start + offset];
                let _trace =
                    crate::trace::scoped(ctxs.and_then(|ctxs| ctxs[start + offset].as_ref()));
                *slot = Some(run_on_state(
                    self,
                    &mut node.state,
                    query.get_evidence(),
                    query.get_virtual_evidence(),
                    query.get_targets(),
                    query.mode(),
                ));
            }
            stack
                .lock()
                .expect("no chunk body panics while holding the stack lock")
                .push(node);
        });
        for node in stack
            .into_inner()
            .expect("no chunk body panics while holding the stack lock")
        {
            self.scratch.release(node);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every batch slot written by its chunk"))
            .collect()
    }
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("engine", &self.engine.name())
            .field("threads", &self.engine.threads())
            .field("num_vars", &self.prepared.num_vars())
            .field("num_cliques", &self.prepared.num_cliques())
            .field("cached", &self.cache.is_some())
            .finish()
    }
}

enum Source<'n> {
    Net(&'n BayesianNetwork, JtreeOptions),
    Prepared(Arc<Prepared>),
}

/// Configures and compiles a [`Solver`].
pub struct SolverBuilder<'n> {
    source: Source<'n>,
    kind: EngineKind,
    threads: usize,
    pool: Option<Arc<fastbn_parallel::ThreadPool>>,
    cache: Option<CacheConfig>,
}

impl SolverBuilder<'_> {
    /// Selects the propagation engine (default: `EngineKind::Seq`).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Worker threads per query for the parallel engines (default 1;
    /// ignored by the sequential engines). When a shared pool was
    /// injected via [`SolverBuilder::pool`], the pool's own width wins
    /// and this setting is ignored.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs the engine's parallel regions on an **injected, shareable**
    /// worker pool instead of spawning a private one — the multi-model
    /// serving configuration, where N compiled models contend for one
    /// worker team (the machine's cores) rather than oversubscribing the
    /// host with N teams. Overrides [`SolverBuilder::threads`]: the
    /// engine's width is `pool.threads()`, and its task plans (and
    /// therefore its bits) are identical to a private pool of that
    /// width. Ignored by the sequential engines.
    ///
    /// ```
    /// use fastbn_bayesnet::datasets;
    /// use fastbn_inference::{EngineKind, Solver};
    /// use fastbn_parallel::ThreadPool;
    ///
    /// let pool = ThreadPool::shared(2);
    /// let a = Solver::builder(&datasets::asia())
    ///     .engine(EngineKind::Hybrid)
    ///     .pool(pool.clone())
    ///     .build();
    /// let b = Solver::builder(&datasets::sprinkler())
    ///     .engine(EngineKind::Hybrid)
    ///     .pool(pool)
    ///     .build();
    /// assert_eq!(a.threads(), 2);
    /// assert!(std::sync::Arc::ptr_eq(
    ///     &a.pool_handle().unwrap(),
    ///     &b.pool_handle().unwrap(),
    /// ));
    /// ```
    pub fn pool(mut self, pool: Arc<fastbn_parallel::ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Junction-tree construction options. Only meaningful when building
    /// from a network; ignored when building from existing `Prepared`
    /// structures (they are already built).
    pub fn jtree_options(mut self, options: JtreeOptions) -> Self {
        if let Source::Net(_, opts) = &mut self.source {
            *opts = options;
        }
        self
    }

    /// Enables the per-solver query-result cache (default: off). Every
    /// run path — single queries, batches, and the serve front end built
    /// on them — then memoizes `Ok` results keyed by the canonical
    /// [`QueryKey`], with hits bit-identical to recomputation. See
    /// [`QueryCache`] for the semantics and
    /// [`CacheConfig`] for the knobs:
    ///
    /// ```
    /// use fastbn_bayesnet::datasets;
    /// use fastbn_inference::{CacheConfig, Query, Solver};
    ///
    /// let net = datasets::sprinkler();
    /// let solver = Solver::builder(&net).cache(CacheConfig::default()).build();
    /// let rain = net.var_id("Rain").unwrap();
    /// let cold = solver.query(&Query::new().observe(rain, 0)).unwrap();
    /// let warm = solver.query(&Query::new().observe(rain, 0)).unwrap();
    /// assert_eq!(cold, warm);
    /// let stats = solver.cache_stats().unwrap();
    /// assert_eq!((stats.hits, stats.misses), (1, 1));
    /// ```
    pub fn cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(config);
        self
    }

    /// Compiles the solver.
    pub fn build(self) -> Solver {
        let prepared = match self.source {
            Source::Net(net, options) => Arc::new(Prepared::new(net, &options)),
            Source::Prepared(prepared) => prepared,
        };
        let engine = match self.pool {
            Some(pool) => make_engine_on(self.kind, prepared.clone(), pool),
            None => make_engine(self.kind, prepared.clone(), self.threads),
        };
        Solver {
            prepared,
            engine,
            kind: self.kind,
            scratch: ScratchPool::new(),
            cache: self.cache.map(QueryCache::new),
        }
    }
}

/// The one session implementation behind both handle flavors.
///
/// A session holds one [`WorkState`] for its lifetime, so repeated
/// queries reuse allocations without synchronization; the state returns
/// to the solver's pool on drop. Sessions are `Send` (open one per
/// thread, or move one into a task) but deliberately not `Sync` — each
/// concurrent caller opens its own.
///
/// The generic parameter is only *how the solver is held*: [`Session`]
/// borrows it (`&Solver`), [`OwnedSession`](crate::owned::OwnedSession)
/// co-owns it (`Arc<Solver>`). Every method — and therefore every
/// result, bit for bit — is shared between the two; a query feature
/// added here reaches both handles by construction.
pub struct SessionCore<S: std::borrow::Borrow<Solver>> {
    solver: S,
    /// `Some` for the session's whole life; `Option` only so `Drop` can
    /// move the box back into the pool.
    scratch: Option<Box<ScratchNode>>,
}

/// A per-caller query handle **borrowing** a shared [`Solver`] — the
/// cheapest flavor when the solver outlives the caller on the same
/// stack (scoped threads, request handlers over a long-lived solver).
/// Open one with [`Solver::session`]. For a handle that can move into
/// spawned threads and task runtimes, use
/// [`OwnedSession`](crate::owned::OwnedSession); both answer queries
/// bit-identically (they share [`SessionCore`]).
pub type Session<'s> = SessionCore<&'s Solver>;

impl<S: std::borrow::Borrow<Solver>> SessionCore<S> {
    /// Opens a session over `solver`, drawing scratch from its pool.
    pub(crate) fn over(solver: S) -> SessionCore<S> {
        let scratch = solver.borrow().acquire_scratch();
        SessionCore {
            solver,
            scratch: Some(scratch),
        }
    }

    /// Runs one query and returns its unified result.
    pub fn run(&mut self, query: &Query) -> Result<QueryResult, InferenceError> {
        self.run_parts(
            query.get_evidence(),
            query.get_virtual_evidence(),
            query.get_targets(),
            query.mode(),
        )
    }

    /// The borrowed core of [`Session::run`]: the convenience wrappers
    /// route here without materializing a `Query` (no per-call clone of
    /// the caller's evidence on the hot path).
    fn run_parts(
        &mut self,
        evidence: &Evidence,
        virtual_evidence: &VirtualEvidence,
        targets: Option<&[VarId]>,
        mode: QueryMode,
    ) -> Result<QueryResult, InferenceError> {
        let solver = self.solver.borrow();
        let state = &mut self
            .scratch
            .as_mut()
            .expect("scratch present until drop")
            .state;
        run_on_state(solver, state, evidence, virtual_evidence, targets, mode)
    }

    /// Runs an ordered batch of queries, returning one result per query
    /// in input order (failing items yield `Err` in their own slot).
    ///
    /// When the batch is at least as wide as the engine's worker pool,
    /// independent queries are dispatched *across* the pool — outer
    /// parallelism, one pooled [`WorkState`] per in-flight chunk, with
    /// each query's own parallel regions nesting on the same team. This
    /// amortizes the reset/evidence-entry/extraction setup a
    /// one-at-a-time loop pays serially, which is where the throughput
    /// win on small networks comes from. Narrower batches (or sequential
    /// engines) fall back to a sequential loop on the session's own
    /// scratch, where each query still uses the engine's full inner
    /// parallelism. Both paths return results bit-identical to the same
    /// queries issued through [`Session::run`] one at a time.
    ///
    /// # Examples
    ///
    /// ```
    /// use fastbn_bayesnet::datasets;
    /// use fastbn_inference::{EngineKind, Query, QueryBatch, Solver};
    ///
    /// let net = datasets::asia();
    /// let solver = Solver::builder(&net).engine(EngineKind::Hybrid).threads(2).build();
    /// let dysp = net.var_id("Dyspnea").unwrap();
    /// let xray = net.var_id("XRay").unwrap();
    /// let mut session = solver.session();
    ///
    /// let batch = QueryBatch::new()
    ///     .with(Query::new().observe(dysp, 0))                  // marginals
    ///     .with(Query::new().observe(dysp, 0).mpe())            // MPE
    ///     .with(Query::new().likelihood(xray, vec![0.0, 0.0])); // malformed
    /// let results = session.run_batch(&batch);
    ///
    /// assert_eq!(results.len(), 3);
    /// assert!(results[0].is_ok() && results[1].is_ok());
    /// assert!(results[2].is_err(), "a bad request fails in its own slot");
    /// // Bit-identical to the one-at-a-time loop:
    /// for (batched, q) in results.iter().zip(&batch) {
    ///     assert_eq!(batched, &session.run(q));
    /// }
    /// ```
    pub fn run_batch(&mut self, batch: &QueryBatch) -> Vec<Result<QueryResult, InferenceError>> {
        let solver = self.solver.borrow();
        if solver.outer_pool_for(batch.len()).is_some() {
            return solver.run_batch_outer(batch);
        }
        batch.iter().map(|q| self.run(q)).collect()
    }

    /// All posterior marginals given hard evidence (the classic engine
    /// call).
    pub fn posteriors(&mut self, evidence: &Evidence) -> Result<Posteriors, InferenceError> {
        Ok(self
            .run_parts(
                evidence,
                &VirtualEvidence::empty(),
                None,
                QueryMode::Marginals,
            )?
            .into_posteriors()
            .expect("marginal query yields marginals"))
    }

    /// The most probable explanation given hard evidence.
    pub fn mpe(&mut self, evidence: &Evidence) -> Result<MpeResult, InferenceError> {
        Ok(self
            .run_parts(evidence, &VirtualEvidence::empty(), None, QueryMode::Mpe)?
            .into_mpe()
            .expect("MPE query yields an MPE result"))
    }

    /// Joint posterior `P(vars | evidence)` for a variable set that
    /// co-occurs in some clique (junction trees answer these for free;
    /// out-of-clique joints would require query-specific restructuring).
    ///
    /// Returns a normalized table over the sorted `vars`, or `None` if no
    /// clique contains them all.
    pub fn joint_posterior(
        &mut self,
        evidence: &Evidence,
        vars: &[VarId],
    ) -> Result<Option<PotentialTable>, InferenceError> {
        let solver = self.solver.borrow();
        let state = &mut self
            .scratch
            .as_mut()
            .expect("scratch present until drop")
            .state;
        joint_on_state(solver, state, evidence, vars)
    }

    /// The solver this session queries.
    pub fn solver(&self) -> &Solver {
        self.solver.borrow()
    }
}

impl<S: std::borrow::Borrow<Solver>> std::fmt::Debug for SessionCore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("solver", self.solver.borrow())
            .finish_non_exhaustive()
    }
}

impl<S: std::borrow::Borrow<Solver>> Drop for SessionCore<S> {
    fn drop(&mut self) {
        if let Some(node) = self.scratch.take() {
            self.solver.borrow().scratch.release(node);
        }
    }
}

/// The engine-driving sequence of one query — validate, consult the
/// cache, then (on a miss) reset, evidence, virtual evidence, propagate,
/// extract — on caller-provided scratch. Shared by [`Session::run`] /
/// `OwnedSession::run` (session scratch) and [`Session::run_batch`] (one
/// pooled scratch per chunk), so the cache sees every path with per-slot
/// hit/miss granularity. Errors leave `state` dirty but harmless,
/// because every call starts with a full reset.
///
/// Ordering matters: validation runs **before** key derivation, so
/// malformed queries (NaN/∞ likelihoods, out-of-range states) surface
/// their typed error without ever touching the cache — a NaN-bearing
/// key can neither be looked up nor inserted here. Only `Ok` results
/// are cached; errors are rediscovered on each call (validation errors
/// never reach the engine, and impossible evidence is detected during
/// the propagation a cached error would have to pay for anyway).
pub(crate) fn run_on_state(
    solver: &Solver,
    state: &mut WorkState,
    evidence: &Evidence,
    virtual_evidence: &VirtualEvidence,
    targets: Option<&[VarId]>,
    mode: QueryMode,
) -> Result<QueryResult, InferenceError> {
    let prepared = &*solver.prepared;
    validate_evidence(prepared, evidence)?;
    validate_virtual(prepared, virtual_evidence)?;
    let Some(cache) = &solver.cache else {
        return compute_on_state(solver, state, evidence, virtual_evidence, targets, mode);
    };
    let key = QueryKey::from_parts(evidence, virtual_evidence, targets, mode);
    if let Some(hit) = cache.get(&key) {
        return Ok(hit);
    }
    let result = compute_on_state(solver, state, evidence, virtual_evidence, targets, mode)?;
    cache.insert(key, &result);
    Ok(result)
}

/// The post-validation engine dispatch (the cache-miss path).
fn compute_on_state(
    solver: &Solver,
    state: &mut WorkState,
    evidence: &Evidence,
    virtual_evidence: &VirtualEvidence,
    targets: Option<&[VarId]>,
    mode: QueryMode,
) -> Result<QueryResult, InferenceError> {
    let prepared = &*solver.prepared;
    match mode {
        QueryMode::Marginals => {
            state.reset(prepared);
            solver.engine.enter_evidence(state, evidence);
            absorb_virtual(state, prepared, virtual_evidence);
            solver.engine.propagate(state);
            let posteriors = match targets {
                None => state.extract_posteriors(prepared, evidence)?,
                Some(targets) => state.extract_posteriors_for(prepared, evidence, targets)?,
            };
            Ok(QueryResult::Marginals(posteriors))
        }
        QueryMode::Mpe => {
            mpe_on_state(prepared, evidence, virtual_evidence, state).map(QueryResult::Mpe)
        }
    }
}

/// The in-clique joint-posterior sequence shared by
/// [`Session::joint_posterior`] and `OwnedSession::joint_posterior`.
pub(crate) fn joint_on_state(
    solver: &Solver,
    state: &mut WorkState,
    evidence: &Evidence,
    vars: &[VarId],
) -> Result<Option<PotentialTable>, InferenceError> {
    let prepared = &*solver.prepared;
    // Validate before the clique lookup: bogus evidence must surface
    // as an error, not be masked by an out-of-clique Ok(None).
    validate_evidence(prepared, evidence)?;
    let mut sorted = vars.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let Some(clique) = prepared.built.tree.smallest_containing(&sorted) else {
        return Ok(None);
    };
    state.reset(prepared);
    solver.engine.enter_evidence(state, evidence);
    solver.engine.propagate(state);
    let target = Arc::new(fastbn_potential::Domain::from_vars(
        &sorted,
        &prepared.cards,
    ));
    let mut joint = PotentialTable::zeros(target.clone());
    let plan = fastbn_potential::KernelPlan::new(&prepared.clique_domains[clique], &target);
    plan.marginalize(state.clique(clique), joint.values_mut());
    joint
        .normalize()
        .map_err(|_| InferenceError::ImpossibleEvidence)?;
    Ok(Some(joint))
}

/// One pooled scratch state, chained intrusively when parked.
pub(crate) struct ScratchNode {
    pub(crate) state: WorkState,
    /// Next node in the parked chain; dangling while the node is held by
    /// a session (never dereferenced then). Only ever read or written by
    /// the node's exclusive owner; kept atomic so link publication is
    /// explicit and any future concurrent traversal stays race-free.
    next: AtomicPtr<ScratchNode>,
}

// SAFETY: a node is either exclusively owned by one session (plain data)
// or parked in the pool (reached only through the pool's atomic head).
unsafe impl Send for ScratchNode {}

/// A lock-free pool of [`WorkState`]s (an intrusive Treiber-style stack).
///
/// `acquire` pops by **swapping out the whole chain**: the popper takes
/// the head node and re-attaches the remainder. Because the detached
/// remainder is exclusively owned during re-attachment, the classic ABA
/// hazard of a CAS-pop (a stale `next` winning the race) cannot arise —
/// the only CAS loops push chains whose links no other thread can
/// observe. A concurrent `acquire` that finds the head empty (including
/// transiently, while another popper holds the detached chain) simply
/// allocates a fresh state, so the pool tracks peak concurrency
/// approximately rather than exactly; `release` therefore frees instead
/// of parking once `max_parked` states are already retained, bounding
/// memory under long-running contention.
struct ScratchPool {
    head: AtomicPtr<ScratchNode>,
    /// Approximate count of parked states (exact when quiescent).
    parked: AtomicUsize,
    /// Retention bound enforced by `release`.
    max_parked: usize,
}

// SAFETY: all shared access goes through `head`'s atomic operations;
// node payloads are only touched by their exclusive owner.
unsafe impl Send for ScratchPool {}
unsafe impl Sync for ScratchPool {}

impl ScratchPool {
    fn new() -> Self {
        ScratchPool {
            head: AtomicPtr::new(std::ptr::null_mut()),
            parked: AtomicUsize::new(0),
            // Generous headroom over any sane session concurrency; the
            // bound only matters as a leak backstop, not a working limit.
            max_parked: 4 * fastbn_parallel::available_threads().max(8),
        }
    }

    /// Pops a parked state, or allocates one shaped like `prepared`'s.
    fn acquire(&self, prepared: &Prepared) -> Box<ScratchNode> {
        // ORDERING: Acquire pairs with the Release CAS in `push_chain`,
        // making parked nodes' contents visible before the deref below.
        let chain = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        if chain.is_null() {
            return Box::new(ScratchNode {
                state: WorkState::new(prepared),
                next: AtomicPtr::new(std::ptr::null_mut()),
            });
        }
        // SAFETY: `chain` was published by a `release`/`push_chain` and we
        // now own the entire detached list exclusively. Links are still
        // touched atomically (not `get_mut`): a concurrent `len` traversal
        // holding a stale head pointer may load them at any time.
        let node = unsafe { Box::from_raw(chain) };
        let rest = node.next.swap(std::ptr::null_mut(), Ordering::Relaxed);
        self.parked.fetch_sub(1, Ordering::Relaxed);
        if !rest.is_null() {
            self.push_chain(rest);
        }
        node
    }

    /// Parks a state for reuse — or frees it when the pool already holds
    /// `max_parked` states, so racing acquires (which may over-allocate:
    /// see [`ScratchPool::acquire`]) cannot grow retention without bound.
    fn release(&self, node: Box<ScratchNode>) {
        if self.parked.load(Ordering::Relaxed) >= self.max_parked {
            return; // drop the box, freeing the state
        }
        node.next.store(std::ptr::null_mut(), Ordering::Relaxed);
        self.parked.fetch_add(1, Ordering::Relaxed);
        self.push_chain(Box::into_raw(node));
    }

    /// Attaches an exclusively-owned chain (ending in null) to the head.
    fn push_chain(&self, chain: *mut ScratchNode) {
        // Find the chain's tail; the chain is ours alone, so walking it
        // races with nothing (the atomic loads keep a concurrent `len`
        // traversal race-free).
        let mut tail = chain;
        // SAFETY: every node on the detached chain is exclusively owned.
        unsafe {
            loop {
                let next = (*tail).next.load(Ordering::Relaxed);
                if next.is_null() {
                    break;
                }
                tail = next;
            }
        }
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `tail` is still exclusively owned until the CAS
            // below publishes the chain.
            unsafe { (*tail).next.store(head, Ordering::Relaxed) };
            match self
                .head
                // ORDERING: Release publishes the chain's nodes to the
                // Acquire swap in `acquire`; failed CAS just retries.
                .compare_exchange_weak(head, chain, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Number of parked states (diagnostics only — concurrent push/pop
    /// can make the count momentarily stale, exact when quiescent). Reads
    /// the counter rather than walking the chain: a traversal could
    /// dereference a node that `release` freed at the retention bound.
    fn len(&self) -> usize {
        self.parked.load(Ordering::Relaxed)
    }
}

impl Drop for ScratchPool {
    fn drop(&mut self) {
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // SAFETY: `&mut self` means no sessions remain (they borrow
            // the solver); every parked node is ours to free.
            let mut boxed = unsafe { Box::from_raw(node) };
            node = *boxed.next.get_mut();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::datasets;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn solver_is_send_and_sync() {
        assert_send_sync::<Solver>();
    }

    #[test]
    fn sessions_reuse_pooled_scratch() {
        let net = datasets::sprinkler();
        let solver = Solver::new(&net);
        assert_eq!(solver.pooled_states(), 0);
        {
            let _a = solver.session();
            let _b = solver.session();
            assert_eq!(solver.pooled_states(), 0, "both states checked out");
        }
        assert_eq!(solver.pooled_states(), 2, "both returned on drop");
        {
            let _c = solver.session();
            assert_eq!(solver.pooled_states(), 1, "one reused, not reallocated");
        }
        assert_eq!(solver.pooled_states(), 2);
    }

    #[test]
    fn one_shot_query_matches_session_query() {
        let net = datasets::asia();
        let solver = Solver::new(&net);
        let dysp = net.var_id("Dyspnea").unwrap();
        let ev = Evidence::from_pairs([(dysp, 0)]);
        let one_shot = solver.posteriors(&ev).unwrap();
        let mut session = solver.session();
        let via_session = session.posteriors(&ev).unwrap();
        assert_eq!(one_shot.max_abs_diff(&via_session), 0.0);
    }

    #[test]
    fn repeated_session_queries_are_independent() {
        let net = datasets::asia();
        let solver = Solver::new(&net);
        let mut session = solver.session();
        let dysp = net.var_id("Dyspnea").unwrap();
        let baseline = session.posteriors(&Evidence::empty()).unwrap();
        let _ = session
            .posteriors(&Evidence::from_pairs([(dysp, 0)]))
            .unwrap();
        let again = session.posteriors(&Evidence::empty()).unwrap();
        assert_eq!(baseline.max_abs_diff(&again), 0.0, "bitwise reset");
    }

    #[test]
    fn builder_selects_engine_and_threads() {
        let net = datasets::sprinkler();
        let solver = Solver::builder(&net)
            .engine(EngineKind::Hybrid)
            .threads(3)
            .build();
        assert_eq!(solver.engine_kind(), EngineKind::Hybrid);
        assert_eq!(solver.engine_name(), "Fast-BNI-par");
        assert_eq!(solver.threads(), 3);
    }

    #[test]
    fn from_prepared_shares_structures() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let a = Solver::from_prepared(prepared.clone())
            .engine(EngineKind::Seq)
            .build();
        let b = Solver::from_prepared(prepared.clone())
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build();
        assert!(Arc::ptr_eq(a.prepared(), &prepared));
        let x = a.posteriors(&Evidence::empty()).unwrap();
        let y = b.posteriors(&Evidence::empty()).unwrap();
        assert_eq!(x.max_abs_diff(&y), 0.0);
    }

    #[test]
    fn cached_solver_answers_hits_bit_identically() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let plain = Solver::from_prepared(prepared.clone()).build();
        let cached = Solver::from_prepared(prepared)
            .cache(CacheConfig::default())
            .build();
        assert!(plain.cache_stats().is_none());
        let dysp = net.var_id("Dyspnea").unwrap();
        let query = Query::new().observe(dysp, 0);
        let expected = plain.query(&query).unwrap();
        let cold = cached.query(&query).unwrap();
        let warm = cached.query(&query).unwrap();
        assert_eq!(expected, cold, "miss computes the cache-off bits");
        assert_eq!(expected, warm, "hit replays them exactly");
        let stats = cached.cache_stats().unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn malformed_queries_fail_validation_before_touching_the_cache() {
        // NaN/∞ likelihoods and bogus evidence must produce their typed
        // errors without a cache lookup or insert — validation runs
        // before key derivation.
        let net = datasets::sprinkler();
        let solver = Solver::builder(&net).cache(CacheConfig::default()).build();
        let rain = net.var_id("Rain").unwrap();
        for bad in [
            Query::new().likelihood(rain, vec![f64::NAN, 1.0]),
            Query::new().likelihood(rain, vec![0.2, f64::INFINITY]),
            Query::new().likelihood(rain, vec![0.0, -0.0]),
            Query::new().observe(VarId(99), 0),
            Query::new().observe(rain, 7),
        ] {
            assert!(solver.query(&bad).is_err());
        }
        let stats = solver.cache_stats().unwrap();
        assert_eq!(stats, crate::cache::CacheStats::default());
        // Errors discovered *during* propagation (impossible evidence)
        // do reach the cache as misses but are never inserted.
        let net = datasets::asia();
        let solver = Solver::builder(&net).cache(CacheConfig::default()).build();
        let tub = net.var_id("Tuberculosis").unwrap();
        let either = net.var_id("TbOrCa").unwrap();
        let impossible = Query::new().observe(tub, 0).observe(either, 1);
        assert_eq!(
            solver.query(&impossible).unwrap_err(),
            InferenceError::ImpossibleEvidence
        );
        assert_eq!(
            solver.query(&impossible).unwrap_err(),
            InferenceError::ImpossibleEvidence
        );
        let stats = solver.cache_stats().unwrap();
        assert_eq!((stats.misses, stats.entries), (2, 0), "errors not cached");
    }

    #[test]
    fn concurrent_sessions_return_identical_posteriors() {
        let net = datasets::asia();
        let solver = Solver::builder(&net)
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build();
        let dysp = net.var_id("Dyspnea").unwrap();
        let ev = Evidence::from_pairs([(dysp, 0)]);
        let expected = solver.posteriors(&ev).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..6 {
                scope.spawn(|| {
                    let mut session = solver.session();
                    for _ in 0..20 {
                        let got = session.posteriors(&ev).unwrap();
                        assert_eq!(expected.max_abs_diff(&got), 0.0);
                    }
                });
            }
        });
        assert!(solver.pooled_states() <= 6, "pool bounded by concurrency");
    }
}
