//! Per-query mutable state (one contiguous slab) and the shared pieces of
//! Hugin propagation.
//!
//! fastbn: audited-raw-ptr
//! fastbn: deny-hot-alloc

use std::sync::Arc;

use fastbn_bayesnet::{Evidence, VarId};
use fastbn_potential::{ops, KernelPlan};

use crate::error::InferenceError;
use crate::posterior::Posteriors;
use crate::prepared::{Prepared, SlabLayout};
use crate::slab_track;

/// Sentinel for "no deferred message" in the pending array.
const NO_PENDING: u32 = u32::MAX;

/// The mutable tables of one in-flight query — clique potentials,
/// separator potentials, plus two per-separator scratch buffers (the
/// freshly marginalized message and the `new/old` ratio) — packed into a
/// **single contiguous `f64` slab** laid out by [`SlabLayout`].
///
/// A `WorkState` is the unit of scratch a [`Session`](crate::solver::Session)
/// holds: allocated once (one slab allocation, not 4×N table `Vec`s),
/// reset per query with a single `copy_from_slice`, and recycled through
/// the solver's scratch pool when the session drops. Steady-state
/// propagation touches only slab regions through precompiled
/// [`KernelPlan`]s, so it performs **zero heap allocations**.
#[derive(Debug, Clone)]
pub struct WorkState {
    /// All tables, contiguously: cliques, seps, fresh, ratio.
    slab: Box<[f64]>,
    /// Per-clique deferred-ratio slot for the sequential engine's fused
    /// collect/distribute path: the separator whose ratio still has to be
    /// multiplied into this clique, or [`NO_PENDING`].
    pending: Box<[u32]>,
    /// Offsets into the slab (shared with the `Prepared`).
    layout: Arc<SlabLayout>,
}

impl WorkState {
    /// Allocates a working slab shaped like `prepared`'s and initializes
    /// it from the initial slab (one allocation for all tables).
    // fastbn: allow(hot-alloc): constructor — the one slab allocation a
    // query pays (then recycled through the solver's scratch pool).
    pub fn new(prepared: &Prepared) -> Self {
        WorkState {
            slab: prepared.initial_slab.clone(),
            pending: vec![NO_PENDING; prepared.num_cliques()].into_boxed_slice(),
            layout: prepared.layout.clone(),
        }
    }

    /// Allocates a **live** slab: the four active regions plus the
    /// saved-message regions ([`SlabLayout::saved_clique_off`] /
    /// [`SlabLayout::saved_col_off`]) that incremental re-propagation
    /// keeps current between evidence-delta edits. Same allocation count
    /// as [`WorkState::new`], one slab — just a longer one.
    // fastbn: allow(hot-alloc): constructor (live-session slab).
    pub fn with_saved(prepared: &Prepared) -> Self {
        let layout = prepared.layout.clone();
        let mut slab = vec![1.0f64; layout.live_total].into_boxed_slice();
        slab[..prepared.initial_slab.len()].copy_from_slice(&prepared.initial_slab);
        WorkState {
            slab,
            pending: vec![NO_PENDING; prepared.num_cliques()].into_boxed_slice(),
            layout,
        }
    }

    /// Whether this state carries the saved-message regions (allocated by
    /// [`WorkState::with_saved`]).
    #[inline]
    pub fn has_saved(&self) -> bool {
        self.slab.len() == self.layout.live_total
    }

    /// Restores the pre-evidence state with one bulk copy, reusing the
    /// allocation. On a live state ([`WorkState::with_saved`]) only the
    /// active prefix is restored; the saved-message regions are owned by
    /// the incremental bookkeeping that rewrites them.
    pub fn reset(&mut self, prepared: &Prepared) {
        self.slab[..prepared.initial_slab.len()].copy_from_slice(&prepared.initial_slab);
        self.pending.fill(NO_PENDING);
    }

    /// Clique `c`'s values.
    #[inline]
    pub fn clique(&self, c: usize) -> &[f64] {
        let off = self.layout.clique_off[c];
        &self.slab[off..off + self.layout.clique_len[c]]
    }

    /// Clique `c`'s values, mutably.
    #[inline]
    pub fn clique_mut(&mut self, c: usize) -> &mut [f64] {
        let off = self.layout.clique_off[c];
        &mut self.slab[off..off + self.layout.clique_len[c]]
    }

    /// Separator `s`'s current values.
    #[inline]
    pub fn sep(&self, s: usize) -> &[f64] {
        let off = self.layout.sep_off[s];
        &self.slab[off..off + self.layout.sep_len[s]]
    }

    /// Separator `s`'s current values, mutably.
    #[inline]
    pub fn sep_mut(&mut self, s: usize) -> &mut [f64] {
        let off = self.layout.sep_off[s];
        &mut self.slab[off..off + self.layout.sep_len[s]]
    }

    /// Separator `s`'s fresh-message scratch.
    #[inline]
    pub fn fresh(&self, s: usize) -> &[f64] {
        let off = self.layout.fresh_off[s];
        &self.slab[off..off + self.layout.sep_len[s]]
    }

    /// Separator `s`'s fresh-message scratch, mutably.
    #[inline]
    pub fn fresh_mut(&mut self, s: usize) -> &mut [f64] {
        let off = self.layout.fresh_off[s];
        &mut self.slab[off..off + self.layout.sep_len[s]]
    }

    /// Separator `s`'s ratio scratch.
    #[inline]
    pub fn ratio(&self, s: usize) -> &[f64] {
        let off = self.layout.ratio_off[s];
        &self.slab[off..off + self.layout.sep_len[s]]
    }

    /// Separator `s`'s ratio scratch, mutably.
    #[inline]
    pub fn ratio_mut(&mut self, s: usize) -> &mut [f64] {
        let off = self.layout.ratio_off[s];
        &mut self.slab[off..off + self.layout.sep_len[s]]
    }

    /// The separator whose ratio is still pending multiplication into
    /// clique `c`, if any (sequential-engine fusion bookkeeping).
    #[inline]
    pub fn pending(&self, c: usize) -> Option<usize> {
        let p = self.pending[c];
        (p != NO_PENDING).then_some(p as usize)
    }

    /// Records that separator `sep`'s ratio must later be multiplied into
    /// clique `c`.
    #[inline]
    pub fn set_pending(&mut self, c: usize, sep: usize) {
        self.pending[c] = sep as u32;
    }

    /// Clears and returns clique `c`'s pending separator, if any.
    #[inline]
    pub fn take_pending(&mut self, c: usize) -> Option<usize> {
        let p = self.pending[c];
        self.pending[c] = NO_PENDING;
        (p != NO_PENDING).then_some(p as usize)
    }

    /// Multiplies clique `c`'s deferred ratio (if any) into the clique —
    /// the flush half of the sequential engine's deferred-ratio fusion.
    /// Allocation-free.
    pub fn flush_pending(&mut self, prepared: &Prepared, c: usize) {
        if let Some(sep) = self.take_pending(c) {
            let plan = prepared.plan_for(c, sep);
            let raw = self.raw();
            // SAFETY: the clique and ratio regions are disjoint slab
            // ranges, and `&mut self` guarantees exclusivity.
            unsafe {
                let clique = raw.slice_mut(self.layout.clique_off[c], self.layout.clique_len[c]);
                let ratio = raw.slice(self.layout.ratio_off[sep], self.layout.sep_len[sep]);
                plan.extend_multiply(clique, ratio);
            }
        }
    }

    /// Splits out the five disjoint slices of one message: the sender
    /// clique (shared), and the receiver clique, separator, fresh and
    /// ratio buffers (exclusive).
    ///
    /// # Panics
    /// Debug-asserts that `sender != receiver`; the slab regions of
    /// distinct tables never overlap by construction of [`SlabLayout`].
    #[inline]
    #[allow(clippy::type_complexity)]
    pub fn message_slices(
        &mut self,
        sender: usize,
        receiver: usize,
        sep: usize,
    ) -> (&[f64], &mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        debug_assert_ne!(sender, receiver);
        let layout = &self.layout;
        let base = self.slab.as_mut_ptr();
        slab_track::begin_phase(base);
        slab_track::claim(
            base,
            layout.clique_off[sender],
            layout.clique_len[sender],
            false,
        );
        slab_track::claim(
            base,
            layout.clique_off[receiver],
            layout.clique_len[receiver],
            true,
        );
        slab_track::claim(base, layout.sep_off[sep], layout.sep_len[sep], true);
        slab_track::claim(base, layout.fresh_off[sep], layout.sep_len[sep], true);
        slab_track::claim(base, layout.ratio_off[sep], layout.sep_len[sep], true);
        // SAFETY: the five regions are pairwise disjoint — clique, sep,
        // fresh and ratio regions tile the slab without overlap, and
        // sender != receiver picks two distinct clique regions (checked
        // by the region tracker in debug builds).
        unsafe {
            let sl = |off: usize, len: usize| std::slice::from_raw_parts(base.add(off), len);
            let sm = |off: usize, len: usize| std::slice::from_raw_parts_mut(base.add(off), len);
            (
                sl(layout.clique_off[sender], layout.clique_len[sender]),
                sm(layout.clique_off[receiver], layout.clique_len[receiver]),
                sm(layout.sep_off[sep], layout.sep_len[sep]),
                sm(layout.fresh_off[sep], layout.sep_len[sep]),
                sm(layout.ratio_off[sep], layout.sep_len[sep]),
            )
        }
    }

    /// Clique `c`'s saved post-collect snapshot (live states only).
    #[inline]
    pub fn saved_clique(&self, c: usize) -> &[f64] {
        debug_assert!(self.has_saved());
        let off = self.layout.saved_clique_off[c];
        &self.slab[off..off + self.layout.clique_len[c]]
    }

    /// Separator `s`'s saved collect message (live states only).
    #[inline]
    pub fn saved_col(&self, s: usize) -> &[f64] {
        debug_assert!(self.has_saved());
        let off = self.layout.saved_col_off[s];
        &self.slab[off..off + self.layout.sep_len[s]]
    }

    /// Snapshots every clique's current values into the saved block with
    /// one bulk copy (the clique regions tile the slab head, and the
    /// saved block mirrors their order).
    pub(crate) fn snapshot_cliques(&mut self) {
        debug_assert!(self.has_saved());
        let n = self.layout.clique_off.len();
        let clique_end = self.layout.clique_off[n - 1] + self.layout.clique_len[n - 1];
        let (active, saved) = self.slab.split_at_mut(self.layout.total);
        saved[..clique_end].copy_from_slice(&active[..clique_end]);
    }

    /// Snapshots clique `c`'s current values into its saved region.
    pub(crate) fn snapshot_clique(&mut self, c: usize) {
        debug_assert!(self.has_saved());
        let (off, len) = (self.layout.clique_off[c], self.layout.clique_len[c]);
        let saved_off = self.layout.saved_clique_off[c] - self.layout.total;
        let (active, saved) = self.slab.split_at_mut(self.layout.total);
        saved[saved_off..saved_off + len].copy_from_slice(&active[off..off + len]);
    }

    /// Restores clique `c`'s active values from its saved snapshot.
    pub(crate) fn restore_clique(&mut self, c: usize) {
        debug_assert!(self.has_saved());
        let (off, len) = (self.layout.clique_off[c], self.layout.clique_len[c]);
        let saved_off = self.layout.saved_clique_off[c] - self.layout.total;
        let (active, saved) = self.slab.split_at_mut(self.layout.total);
        active[off..off + len].copy_from_slice(&saved[saved_off..saved_off + len]);
    }

    /// Rewinds clique `c` to its initial (pre-evidence) values.
    pub(crate) fn load_initial_clique(&mut self, prepared: &Prepared, c: usize) {
        self.clique_mut(c)
            .copy_from_slice(prepared.initial_clique(c));
    }

    /// One collect message recorded into the saved block: marginalizes
    /// `child` onto separator `sep`'s **saved** collect region and
    /// multiplies it into `parent`. Bit-identical to the engines' eager
    /// collect step — a collect ratio is `fresh / 1.0`, which IEEE
    /// division leaves exactly `fresh` — with the message kept for later
    /// delta replays instead of discarded.
    pub(crate) fn collect_into_saved(
        &mut self,
        prepared: &Prepared,
        child: usize,
        parent: usize,
        sep: usize,
    ) {
        debug_assert!(self.has_saved());
        let send_plan = prepared.plan_for(child, sep);
        let recv_plan = prepared.plan_for(parent, sep);
        let raw = self.raw();
        // SAFETY: child clique, parent clique and the saved collect region
        // are pairwise-disjoint slab ranges; `&mut self` is exclusive.
        unsafe {
            let child_v = raw.slice(self.layout.clique_off[child], self.layout.clique_len[child]);
            let parent_v = raw.slice_mut(
                self.layout.clique_off[parent],
                self.layout.clique_len[parent],
            );
            let msg = raw.slice_mut(self.layout.saved_col_off[sep], self.layout.sep_len[sep]);
            send_plan.marginalize(child_v, msg);
            recv_plan.extend_multiply(parent_v, msg);
        }
    }

    /// Multiplies separator `sep`'s **saved** collect message into clique
    /// `receiver` — the replay of an unchanged child's contribution when
    /// an ancestor on a dirty path is rebuilt.
    pub(crate) fn replay_saved_ratio(&mut self, prepared: &Prepared, receiver: usize, sep: usize) {
        debug_assert!(self.has_saved());
        let plan = prepared.plan_for(receiver, sep);
        let raw = self.raw();
        // SAFETY: the receiver clique and the saved collect region are
        // disjoint slab ranges; `&mut self` is exclusive.
        unsafe {
            let clique = raw.slice_mut(
                self.layout.clique_off[receiver],
                self.layout.clique_len[receiver],
            );
            let msg = raw.slice(self.layout.saved_col_off[sep], self.layout.sep_len[sep]);
            plan.extend_multiply(clique, msg);
        }
    }

    /// One on-demand distribute step: marginalizes the (final) `parent`
    /// clique onto `sep`'s fresh scratch, folds it into a ratio against
    /// the saved collect message ([`ops::sep_ratio`]), then rebuilds
    /// `child` as its saved post-collect snapshot times that ratio —
    /// exactly the arithmetic of the engines' eager distribute message,
    /// operand for operand.
    pub(crate) fn distribute_from_parent(
        &mut self,
        prepared: &Prepared,
        parent: usize,
        child: usize,
        sep: usize,
    ) {
        debug_assert!(self.has_saved());
        let send_plan = prepared.plan_for(parent, sep);
        let recv_plan = prepared.plan_for(child, sep);
        let raw = self.raw();
        // SAFETY: parent clique, child clique, fresh scratch, saved
        // collect message and saved child snapshot are pairwise-disjoint
        // slab ranges; `&mut self` is exclusive.
        unsafe {
            let parent_v = raw.slice(
                self.layout.clique_off[parent],
                self.layout.clique_len[parent],
            );
            let fresh = raw.slice_mut(self.layout.fresh_off[sep], self.layout.sep_len[sep]);
            let saved_msg = raw.slice(self.layout.saved_col_off[sep], self.layout.sep_len[sep]);
            let child_v =
                raw.slice_mut(self.layout.clique_off[child], self.layout.clique_len[child]);
            let child_saved = raw.slice(
                self.layout.saved_clique_off[child],
                self.layout.clique_len[child],
            );
            send_plan.marginalize(parent_v, fresh);
            ops::sep_ratio(fresh, saved_msg);
            child_v.copy_from_slice(child_saved);
            recv_plan.extend_multiply(child_v, fresh);
        }
    }

    /// Raw view of the slab for the parallel engines, which hand disjoint
    /// regions to worker closures the borrow checker cannot see through.
    #[inline]
    pub(crate) fn raw(&mut self) -> SlabRaw {
        let raw = SlabRaw {
            base: self.slab.as_mut_ptr(),
            len: self.slab.len(),
        };
        // A fresh raw view starts a fresh tracking generation: borrows
        // handed out before it cannot alias the ones handed out after.
        slab_track::begin_phase(raw.base);
        raw
    }

    /// Enters evidence by reducing, for each observation, the potential of
    /// the variable's home clique (one clique per finding suffices —
    /// propagation spreads it).
    pub fn absorb_evidence(&mut self, prepared: &Prepared, evidence: &Evidence) {
        for (var, state) in evidence.iter() {
            let home = prepared.home[var.index()];
            let dom = &prepared.clique_domains[home];
            let (stride, card) = (dom.stride_of(var), dom.card_of(var));
            ops::reduce_evidence_slice(self.clique_mut(home), stride, card, state);
        }
    }

    /// `P(evidence)`: after propagation every clique of a component sums to
    /// that component's evidence probability; the network-wide value is the
    /// product over components (read at the roots).
    pub fn prob_evidence(&self, prepared: &Prepared) -> f64 {
        prepared
            .built
            .rooted
            .roots
            .iter()
            .map(|&r| self.clique(r).iter().sum::<f64>())
            .product()
    }

    /// One variable's normalized posterior (point mass if observed), read
    /// from its home clique. Requires a propagated state.
    // fastbn: allow(hot-alloc): read-path output allocation (posterior
    // vector handed to the caller).
    pub(crate) fn marginal_of(
        &self,
        prepared: &Prepared,
        evidence: &Evidence,
        var: VarId,
    ) -> Result<Vec<f64>, InferenceError> {
        if let Some(state) = evidence.get(var) {
            let mut point = vec![0.0; prepared.cards[var.index()]];
            point[state] = 1.0;
            return Ok(point);
        }
        let home = prepared.home[var.index()];
        let mut m =
            ops::marginal_of_var_slice(self.clique(home), &prepared.clique_domains[home], var);
        let total: f64 = m.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(InferenceError::ImpossibleEvidence);
        }
        for p in &mut m {
            *p /= total;
        }
        Ok(m)
    }

    /// Checks that `P(evidence)` is positive and finite, returning it.
    pub(crate) fn checked_prob_evidence(&self, prepared: &Prepared) -> Result<f64, InferenceError> {
        let prob_evidence = self.prob_evidence(prepared);
        if prob_evidence <= 0.0 || !prob_evidence.is_finite() {
            return Err(InferenceError::ImpossibleEvidence);
        }
        Ok(prob_evidence)
    }

    /// Extracts normalized posteriors for every variable (point masses for
    /// observed ones). Fails with [`InferenceError::ImpossibleEvidence`]
    /// when `P(evidence) = 0`.
    pub fn extract_posteriors(
        &self,
        prepared: &Prepared,
        evidence: &Evidence,
    ) -> Result<Posteriors, InferenceError> {
        let prob_evidence = self.checked_prob_evidence(prepared)?;
        let n = prepared.num_vars();
        let mut marginals = Vec::with_capacity(n);
        for v in 0..n {
            marginals.push(self.marginal_of(prepared, evidence, VarId::from_index(v))?);
        }
        Ok(Posteriors::new(marginals, prob_evidence))
    }

    /// Extracts posteriors for `targets` only — the work scales with the
    /// target count, not the network size. `targets` must be sorted and
    /// deduplicated (the [`Query`](crate::query::Query) builder
    /// guarantees this); a target outside the network fails with
    /// [`InferenceError::InvalidTarget`].
    pub fn extract_posteriors_for(
        &self,
        prepared: &Prepared,
        evidence: &Evidence,
        targets: &[VarId],
    ) -> Result<Posteriors, InferenceError> {
        if let Some(&bad) = targets.iter().find(|v| v.index() >= prepared.num_vars()) {
            return Err(InferenceError::InvalidTarget {
                var: bad.index(),
                num_vars: prepared.num_vars(),
            });
        }
        let prob_evidence = self.checked_prob_evidence(prepared)?;
        let mut entries = Vec::with_capacity(targets.len());
        for &var in targets {
            entries.push((var, self.marginal_of(prepared, evidence, var)?));
        }
        Ok(Posteriors::targeted(
            prepared.num_vars(),
            entries,
            prob_evidence,
        ))
    }
}

/// One sequential collect/distribute message executing precompiled plans
/// on slab slices (shared by the Seq, Reference-adjacent and Direct
/// paths; Primitive/Element/Hybrid have their own parallel versions):
/// marginalize the sender onto `fresh`, fold the separator update
/// (`ratio = fresh / sep; sep = fresh` — bitwise identical to the old
/// divide-then-swap), then multiply the ratio into the receiver.
#[inline]
pub fn message_kernel(
    send_plan: &KernelPlan,
    recv_plan: &KernelPlan,
    sender: &[f64],
    receiver: &mut [f64],
    sep: &mut [f64],
    fresh: &mut [f64],
    ratio: &mut [f64],
) {
    send_plan.marginalize(sender, fresh);
    ops::sep_update(fresh, sep, ratio);
    recv_plan.extend_multiply(receiver, ratio);
}

/// Raw slab view: base pointer + length, `Send + Sync` so parallel
/// engines can hand disjoint regions to worker closures. All safety
/// obligations sit on the callers, who must only touch pairwise-disjoint
/// regions per parallel phase (guaranteed by the layer schedules).
#[derive(Clone, Copy)]
pub(crate) struct SlabRaw {
    base: *mut f64,
    len: usize,
}

// SAFETY: a `SlabRaw` is just (base, len) into a slab owned by a live
// `WorkState` borrow; parallel phases hand out pairwise-disjoint regions
// only (layer-schedule invariant), so cross-thread access never aliases.
unsafe impl Send for SlabRaw {}
unsafe impl Sync for SlabRaw {}

impl SlabRaw {
    /// Opens a new race-tracking generation mid-view: claims handed out
    /// before this call no longer conflict with claims after it. The
    /// Hybrid engine calls this at each intra-layer phase boundary — a
    /// clique written as a phase's receiver is legally *read* as a
    /// sender in the next phase, and the phases are separated by a
    /// pool barrier. No-op in untracked builds.
    #[inline]
    pub(crate) fn begin_phase(&self) {
        slab_track::begin_phase(self.base);
    }

    /// # Safety
    /// `[off, off + len)` must be in bounds and not concurrently written.
    #[inline]
    #[track_caller]
    pub(crate) unsafe fn slice(&self, off: usize, len: usize) -> &[f64] {
        debug_assert!(off + len <= self.len);
        slab_track::claim(self.base, off, len, false);
        // SAFETY: in-bounds per the debug_assert and the caller contract.
        unsafe { std::slice::from_raw_parts(self.base.add(off), len) }
    }

    /// # Safety
    /// `[off, off + len)` must be in bounds and disjoint from every other
    /// slice handed out for the duration of this borrow.
    #[inline]
    #[track_caller]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice_mut(&self, off: usize, len: usize) -> &mut [f64] {
        debug_assert!(off + len <= self.len);
        slab_track::claim(self.base, off, len, true);
        // SAFETY: in-bounds and exclusive per the caller contract.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(off), len) }
    }
}

impl Drop for WorkState {
    fn drop(&mut self) {
        // Forget the slab's claims so a future allocation reusing this
        // address starts clean. (No-op when tracking is compiled out,
        // keeping the release build warning-free.)
        slab_track::retire(self.slab.as_ptr());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::datasets;
    use fastbn_jtree::JtreeOptions;

    #[test]
    fn reset_restores_initial_tables() {
        let net = datasets::sprinkler();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let mut state = WorkState::new(&prepared);
        let rain = net.var_id("Rain").unwrap();
        state.absorb_evidence(&prepared, &Evidence::from_pairs([(rain, 0)]));
        let changed = state.clique(prepared.home[rain.index()]).contains(&0.0);
        assert!(changed, "evidence must zero some entries");
        state.set_pending(0, 3);
        state.reset(&prepared);
        for c in 0..prepared.num_cliques() {
            assert_eq!(state.clique(c), prepared.initial_clique(c));
            assert_eq!(state.pending(c), None);
        }
        for s in 0..prepared.num_separators() {
            assert!(state.sep(s).iter().all(|&v| v == 1.0));
        }
    }

    #[test]
    fn message_slices_are_disjoint_and_correctly_placed() {
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let mut state = WorkState::new(&prepared);
        let edge = prepared.sep_plans[0].clone();
        let (sender_len, receiver_len) = (
            prepared.layout.clique_len[edge.child_clique],
            prepared.layout.clique_len[edge.parent_clique],
        );
        let (sender, receiver, sep, fresh, ratio) =
            state.message_slices(edge.child_clique, edge.parent_clique, 0);
        assert_eq!(sender.len(), sender_len);
        assert_eq!(receiver.len(), receiver_len);
        assert_eq!(sep.len(), prepared.layout.sep_len[0]);
        assert_eq!(fresh.len(), sep.len());
        assert_eq!(ratio.len(), sep.len());
        // Writing through the exclusive slices must not alias the sender.
        let before = sender.to_vec();
        receiver.fill(7.0);
        sep.fill(8.0);
        fresh.fill(9.0);
        ratio.fill(10.0);
        assert_eq!(sender, &before[..]);
    }

    #[test]
    fn pending_roundtrip() {
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let mut state = WorkState::new(&prepared);
        assert_eq!(state.pending(2), None);
        state.set_pending(2, 4);
        assert_eq!(state.pending(2), Some(4));
        assert_eq!(state.take_pending(2), Some(4));
        assert_eq!(state.pending(2), None);
        assert_eq!(state.take_pending(2), None);
    }

    #[test]
    fn prob_evidence_of_empty_query_is_one_after_noop() {
        // Without propagation, a single-clique network's root already sums
        // to 1 (it holds the whole joint).
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("a", &["x", "y"]);
        b.set_cpt(a, vec![], vec![0.3, 0.7]).unwrap();
        let net = b.build().unwrap();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let state = WorkState::new(&prepared);
        assert!((state.prob_evidence(&prepared) - 1.0).abs() < 1e-12);
        let post = state
            .extract_posteriors(&prepared, &Evidence::empty())
            .unwrap();
        assert_eq!(post.marginal(a), &[0.3, 0.7]);
    }

    #[test]
    fn impossible_evidence_is_detected() {
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("a", &["x", "y"]);
        b.set_cpt(a, vec![], vec![1.0, 0.0]).unwrap();
        let net = b.build().unwrap();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let mut state = WorkState::new(&prepared);
        let ev = Evidence::from_pairs([(a, 1)]); // P(a = y) = 0
        state.absorb_evidence(&prepared, &ev);
        assert_eq!(
            state.extract_posteriors(&prepared, &ev).unwrap_err(),
            InferenceError::ImpossibleEvidence
        );
    }

    #[test]
    fn targeted_extraction_matches_full_extraction() {
        // Single-clique network: no propagation needed to extract.
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("a", &["x", "y"]);
        let c = b.add_var("c", &["s", "t"]);
        b.set_cpt(a, vec![], vec![0.3, 0.7]).unwrap();
        b.set_cpt(c, vec![a], vec![0.9, 0.1, 0.4, 0.6]).unwrap();
        let net = b.build().unwrap();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let state = WorkState::new(&prepared);
        let full = state
            .extract_posteriors(&prepared, &Evidence::empty())
            .unwrap();
        let targeted = state
            .extract_posteriors_for(&prepared, &Evidence::empty(), &[c])
            .unwrap();
        assert_eq!(targeted.marginal(c), full.marginal(c));
        assert!(!targeted.has_marginal(a), "only targets computed");
        assert_eq!(
            targeted.prob_evidence.to_bits(),
            full.prob_evidence.to_bits()
        );
    }

    /// The dynamic race detector must abort on what it exists to catch:
    /// two threads claiming overlapping slab ranges, at least one
    /// mutably, inside one tracking generation — and the panic must name
    /// both claim sites.
    #[cfg(any(debug_assertions, feature = "slab-track"))]
    #[test]
    fn slab_tracker_panics_on_cross_thread_overlap() {
        use std::sync::mpsc;

        let net = datasets::sprinkler();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let mut state = WorkState::new(&prepared);
        let raw = state.raw();
        let (claimed_tx, claimed_rx) = mpsc::channel();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // SAFETY: sound on its own — [0, 8) is in bounds and
                // nothing else borrows it until after this claim lands.
                let chunk = unsafe { raw.slice_mut(0, 8) };
                chunk[0] += 0.0;
                claimed_tx.send(()).unwrap();
            });
            claimed_rx.recv().unwrap();
            let payload = std::panic::catch_unwind(|| {
                // SAFETY: never executes — the deliberately overlapping
                // claim panics inside the tracker first.
                let _ = unsafe { raw.slice_mut(4, 8) };
            })
            .expect_err("overlapping cross-thread mutable claims must panic");
            let msg = payload
                .downcast_ref::<String>()
                .expect("tracker panics with a formatted message");
            assert!(msg.contains("slab race"), "unexpected message: {msg}");
            assert!(
                msg.matches("state.rs").count() >= 2,
                "both claim sites should be reported: {msg}"
            );
        });
    }

    /// Same-thread overlaps are legal sequential re-borrows (the Seq
    /// engine's pending-ratio corner) and must stay silent.
    #[cfg(any(debug_assertions, feature = "slab-track"))]
    #[test]
    fn slab_tracker_allows_same_thread_reclaims() {
        let net = datasets::sprinkler();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let mut state = WorkState::new(&prepared);
        let raw = state.raw();
        // SAFETY: sequential re-borrows on one thread; the earlier
        // reference is dead before the next one is created.
        unsafe {
            let _ = raw.slice_mut(0, 8);
            let _ = raw.slice_mut(4, 8); // overlapping, same thread: ok
            let _ = raw.slice(0, 16); // shared over both: ok
        }
    }
}
