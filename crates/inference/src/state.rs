//! Per-query mutable state and the shared pieces of Hugin propagation.

use fastbn_bayesnet::{Evidence, VarId};
use fastbn_potential::{ops, PotentialTable};

use crate::error::InferenceError;
use crate::posterior::Posteriors;
use crate::prepared::Prepared;

/// The mutable tables of one in-flight query: clique potentials, separator
/// potentials, plus two per-separator scratch buffers (the freshly
/// marginalized message and the `new/old` ratio).
///
/// A `WorkState` is the unit of scratch a [`Session`](crate::solver::Session)
/// holds: allocated once, reset per query (`copy_from_slice` into existing
/// allocations — no per-query malloc), and recycled through the solver's
/// scratch pool when the session drops.
#[derive(Debug, Clone)]
pub struct WorkState {
    /// Clique potentials (reset from `Prepared::initial_cliques`).
    pub cliques: Vec<PotentialTable>,
    /// Current separator potentials (reset to ones).
    pub seps: Vec<PotentialTable>,
    /// Scratch: newly marginalized separator message.
    pub fresh: Vec<PotentialTable>,
    /// Scratch: `fresh / old` ratio to multiply into the receiver.
    pub ratio: Vec<PotentialTable>,
}

impl WorkState {
    /// Allocates working tables shaped like `prepared`'s.
    pub fn new(prepared: &Prepared) -> Self {
        let cliques = prepared.initial_cliques.clone();
        let seps: Vec<PotentialTable> = prepared
            .sep_domains
            .iter()
            .map(|d| PotentialTable::ones(d.clone()))
            .collect();
        WorkState {
            fresh: seps.clone(),
            ratio: seps.clone(),
            cliques,
            seps,
        }
    }

    /// Restores the pre-evidence state, reusing all allocations.
    pub fn reset(&mut self, prepared: &Prepared) {
        for (work, init) in self.cliques.iter_mut().zip(&prepared.initial_cliques) {
            work.copy_values_from(init);
        }
        for sep in &mut self.seps {
            sep.fill(1.0);
        }
    }

    /// Enters evidence by reducing, for each observation, the potential of
    /// the variable's home clique (one clique per finding suffices —
    /// propagation spreads it).
    pub fn absorb_evidence(&mut self, prepared: &Prepared, evidence: &Evidence) {
        for (var, state) in evidence.iter() {
            ops::reduce_evidence(&mut self.cliques[prepared.home[var.index()]], var, state);
        }
    }

    /// `P(evidence)`: after propagation every clique of a component sums to
    /// that component's evidence probability; the network-wide value is the
    /// product over components (read at the roots).
    pub fn prob_evidence(&self, prepared: &Prepared) -> f64 {
        prepared
            .built
            .rooted
            .roots
            .iter()
            .map(|&r| self.cliques[r].sum())
            .product()
    }

    /// One variable's normalized posterior (point mass if observed), read
    /// from its home clique. Requires a propagated state.
    fn marginal_of(
        &self,
        prepared: &Prepared,
        evidence: &Evidence,
        var: VarId,
    ) -> Result<Vec<f64>, InferenceError> {
        if let Some(state) = evidence.get(var) {
            let mut point = vec![0.0; prepared.cards[var.index()]];
            point[state] = 1.0;
            return Ok(point);
        }
        let mut m = ops::marginal_of_var(&self.cliques[prepared.home[var.index()]], var);
        let total: f64 = m.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return Err(InferenceError::ImpossibleEvidence);
        }
        for p in &mut m {
            *p /= total;
        }
        Ok(m)
    }

    /// Checks that `P(evidence)` is positive and finite, returning it.
    fn checked_prob_evidence(&self, prepared: &Prepared) -> Result<f64, InferenceError> {
        let prob_evidence = self.prob_evidence(prepared);
        if prob_evidence <= 0.0 || !prob_evidence.is_finite() {
            return Err(InferenceError::ImpossibleEvidence);
        }
        Ok(prob_evidence)
    }

    /// Extracts normalized posteriors for every variable (point masses for
    /// observed ones). Fails with [`InferenceError::ImpossibleEvidence`]
    /// when `P(evidence) = 0`.
    pub fn extract_posteriors(
        &self,
        prepared: &Prepared,
        evidence: &Evidence,
    ) -> Result<Posteriors, InferenceError> {
        let prob_evidence = self.checked_prob_evidence(prepared)?;
        let n = prepared.num_vars();
        let mut marginals = Vec::with_capacity(n);
        for v in 0..n {
            marginals.push(self.marginal_of(prepared, evidence, VarId::from_index(v))?);
        }
        Ok(Posteriors::new(marginals, prob_evidence))
    }

    /// Extracts posteriors for `targets` only — the work scales with the
    /// target count, not the network size. `targets` must be sorted and
    /// deduplicated (the [`Query`](crate::query::Query) builder
    /// guarantees this); a target outside the network fails with
    /// [`InferenceError::InvalidTarget`].
    pub fn extract_posteriors_for(
        &self,
        prepared: &Prepared,
        evidence: &Evidence,
        targets: &[VarId],
    ) -> Result<Posteriors, InferenceError> {
        if let Some(&bad) = targets.iter().find(|v| v.index() >= prepared.num_vars()) {
            return Err(InferenceError::InvalidTarget {
                var: bad.index(),
                num_vars: prepared.num_vars(),
            });
        }
        let prob_evidence = self.checked_prob_evidence(prepared)?;
        let mut entries = Vec::with_capacity(targets.len());
        for &var in targets {
            entries.push((var, self.marginal_of(prepared, evidence, var)?));
        }
        Ok(Posteriors::targeted(
            prepared.num_vars(),
            entries,
            prob_evidence,
        ))
    }
}

/// One sequential collect/distribute message using the odometer-fused ops
/// (shared by the Seq and Direct engines; Primitive/Element/Hybrid have
/// their own parallel versions).
pub fn message_seq(state_parts: MessageParts<'_>) {
    let MessageParts {
        sender,
        receiver,
        sep,
        fresh,
        ratio,
    } = state_parts;
    ops::marginalize_into(sender, fresh);
    ops::divide_into(fresh, sep, ratio);
    std::mem::swap(sep, fresh);
    ops::extend_multiply(receiver, ratio);
}

/// Borrowed pieces of one message, so engines can split `WorkState`
/// mutably without aliasing.
pub struct MessageParts<'a> {
    /// Clique being marginalized (read-only).
    pub sender: &'a PotentialTable,
    /// Clique receiving the ratio (read-write).
    pub receiver: &'a mut PotentialTable,
    /// Current separator table (swapped with `fresh`).
    pub sep: &'a mut PotentialTable,
    /// Scratch for the new message.
    pub fresh: &'a mut PotentialTable,
    /// Scratch for the ratio.
    pub ratio: &'a mut PotentialTable,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::datasets;
    use fastbn_jtree::JtreeOptions;

    #[test]
    fn reset_restores_initial_tables() {
        let net = datasets::sprinkler();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let mut state = WorkState::new(&prepared);
        let rain = net.var_id("Rain").unwrap();
        state.absorb_evidence(&prepared, &Evidence::from_pairs([(rain, 0)]));
        let changed = state.cliques[prepared.home[rain.index()]]
            .values()
            .contains(&0.0);
        assert!(changed, "evidence must zero some entries");
        state.reset(&prepared);
        for (work, init) in state.cliques.iter().zip(&prepared.initial_cliques) {
            assert_eq!(work.values(), init.values());
        }
        assert!(state
            .seps
            .iter()
            .all(|s| s.values().iter().all(|&v| v == 1.0)));
    }

    #[test]
    fn prob_evidence_of_empty_query_is_one_after_noop() {
        // Without propagation, a single-clique network's root already sums
        // to 1 (it holds the whole joint).
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("a", &["x", "y"]);
        b.set_cpt(a, vec![], vec![0.3, 0.7]).unwrap();
        let net = b.build().unwrap();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let state = WorkState::new(&prepared);
        assert!((state.prob_evidence(&prepared) - 1.0).abs() < 1e-12);
        let post = state
            .extract_posteriors(&prepared, &Evidence::empty())
            .unwrap();
        assert_eq!(post.marginal(a), &[0.3, 0.7]);
    }

    #[test]
    fn impossible_evidence_is_detected() {
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("a", &["x", "y"]);
        b.set_cpt(a, vec![], vec![1.0, 0.0]).unwrap();
        let net = b.build().unwrap();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let mut state = WorkState::new(&prepared);
        let ev = Evidence::from_pairs([(a, 1)]); // P(a = y) = 0
        state.absorb_evidence(&prepared, &ev);
        assert_eq!(
            state.extract_posteriors(&prepared, &ev).unwrap_err(),
            InferenceError::ImpossibleEvidence
        );
    }

    #[test]
    fn targeted_extraction_matches_full_extraction() {
        // Single-clique network: no propagation needed to extract.
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("a", &["x", "y"]);
        let c = b.add_var("c", &["s", "t"]);
        b.set_cpt(a, vec![], vec![0.3, 0.7]).unwrap();
        b.set_cpt(c, vec![a], vec![0.9, 0.1, 0.4, 0.6]).unwrap();
        let net = b.build().unwrap();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let state = WorkState::new(&prepared);
        let full = state
            .extract_posteriors(&prepared, &Evidence::empty())
            .unwrap();
        let targeted = state
            .extract_posteriors_for(&prepared, &Evidence::empty(), &[c])
            .unwrap();
        assert_eq!(targeted.marginal(c), full.marginal(c));
        assert!(!targeted.has_marginal(a), "only targets computed");
        assert_eq!(
            targeted.prob_evidence.to_bits(),
            full.prob_evidence.to_bits()
        );
    }
}
