//! The per-solver query-result cache: memoized posteriors keyed by
//! canonicalized queries.
//!
//! The paper's premise is that the expensive part of exact inference is
//! propagation over the junction tree; under serving traffic many
//! requests repeat the same evidence sets, so the cheapest propagation
//! is the one never run. A [`QueryCache`] sits between the session layer
//! and engine dispatch: after validation accepts a query, its canonical
//! [`QueryKey`] is looked up, and only misses pay for propagation (the
//! result is inserted on the way out). Because a [`Solver`]'s compiled
//! model is **immutable**, invalidation is a no-op — an entry can never
//! go stale — and because equal keys imply the exact same engine
//! arithmetic (see [`QueryKey`]), a hit is **bit-identical** to the
//! recomputation it replaces.
//!
//! The cache is sharded: keys hash to one of N independent shards, each
//! behind its own mutex (the vendored `parking_lot` shim — non-poisoning
//! `lock()`, swappable for the real crate), so concurrent sessions on
//! different keys rarely contend. Each shard bounds both its **entry
//! count** and its **approximate byte footprint**, evicting via the
//! CLOCK second-chance sweep (an LRU approximation that avoids
//! re-linking on every hit: a hit just marks the entry; the evictor
//! skips marked entries once before reclaiming them).
//!
//! Only `Ok` results are cached. Errors are cheap to rediscover —
//! validation failures never reach the engine, and impossible evidence
//! is detected during propagation, which a poisoned entry would have to
//! pay for anyway.
//!
//! [`Solver`]: crate::solver::Solver

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::query::{QueryKey, QueryResult};

/// Configuration of a [`QueryCache`], passed to
/// [`SolverBuilder::cache`](crate::solver::SolverBuilder::cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum cached results across all shards (default 8192). `0`
    /// disables insertion entirely — every lookup misses and nothing is
    /// retained (useful for measuring key-derivation overhead alone).
    pub max_entries: usize,
    /// Approximate maximum bytes of cached keys + results across all
    /// shards (default 64 MiB). Results larger than one shard's byte
    /// share are never inserted.
    pub max_bytes: usize,
    /// Number of independent shards (default 8; rounded up to a power of
    /// two, minimum 1, and capped so there are never more shards than
    /// `max_entries` — each shard retains at least one entry, so
    /// uncapped shards could exceed a smaller entry budget). More shards
    /// mean less lock contention between concurrent sessions.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 8192,
            max_bytes: 64 << 20,
            shards: 8,
        }
    }
}

/// A snapshot of a cache's counters and occupancy (monotonic counters;
/// occupancy is exact at the moment each shard is sampled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Results stored (one per miss that computed an `Ok` result and won
    /// the insert race).
    pub insertions: u64,
    /// Entries reclaimed by the CLOCK sweep to stay within budget.
    pub evictions: u64,
    /// Results currently cached.
    pub entries: usize,
    /// Approximate bytes currently cached (keys + results).
    pub bytes: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked
    /// up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas since `baseline` (an earlier snapshot of the
    /// same cache), keeping this snapshot's occupancy — how benchmarks
    /// report a timed window with the warm-up traffic baselined away.
    pub fn delta_since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - baseline.hits,
            misses: self.misses - baseline.misses,
            insertions: self.insertions - baseline.insertions,
            evictions: self.evictions - baseline.evictions,
            entries: self.entries,
            bytes: self.bytes,
        }
    }
}

/// One cached result plus its accounting. The result sits behind an
/// `Arc` so a hit clones a pointer under the shard lock and deep-copies
/// outside it — concurrent hits on one hot key don't serialize on the
/// mutex for the duration of a marginal-vector memcpy.
struct Entry {
    result: Arc<QueryResult>,
    /// Approximate bytes of key + result (computed once at insert).
    bytes: usize,
    /// CLOCK reference mark: set on every hit, cleared (with a second
    /// chance granted) when the sweep passes over the entry.
    touched: bool,
}

/// One shard: its map, the CLOCK queue over its keys, and its byte
/// count. The queue holds exactly the map's keys (entries leave the
/// queue only when they leave the map), so the sweep terminates. Map
/// and queue share each key through one `Arc`, so a key's heap data —
/// which the byte budget counts once — is stored once.
#[derive(Default)]
struct Shard {
    map: HashMap<Arc<QueryKey>, Entry>,
    clock: VecDeque<Arc<QueryKey>>,
    bytes: usize,
}

/// A sharded, bounded, `Send + Sync` cache of query results, owned by a
/// [`Solver`](crate::solver::Solver) and consulted by every session run
/// path (single queries, both `run_batch` strategies, and therefore the
/// serve front end).
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard budgets (global budget split evenly).
    entries_per_shard: usize,
    bytes_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    /// Builds an empty cache with `config`'s budgets.
    pub(crate) fn new(config: CacheConfig) -> QueryCache {
        // Power of two for the index mask, but never more shards than
        // the entry budget: the per-shard floor of one entry would
        // otherwise let `shards` entries exceed a smaller `max_entries`.
        let floor_pow2 = |n: usize| 1usize << (usize::BITS - 1 - n.max(1).leading_zeros());
        let shards = config
            .shards
            .max(1)
            .next_power_of_two()
            .min(floor_pow2(config.max_entries));
        QueryCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            // 0 stays 0 (insertion disabled); otherwise each shard
            // retains at least one entry.
            entries_per_shard: if config.max_entries == 0 {
                0
            } else {
                (config.max_entries / shards).max(1)
            },
            bytes_per_shard: (config.max_bytes / shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        // Shard count is a power of two; take the hash's top bits so the
        // shard index and the HashMap's bucket index (low bits) stay
        // decorrelated.
        let index = (hasher.finish() >> 32) as usize & (self.shards.len() - 1);
        &self.shards[index]
    }

    /// Looks `key` up, cloning the cached result on a hit (the deep copy
    /// happens outside the shard lock).
    pub(crate) fn get(&self, key: &QueryKey) -> Option<QueryResult> {
        let mut shard = self.shard(key).lock();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.touched = true;
                let result = Arc::clone(&entry.result);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((*result).clone())
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `result` under `key`, evicting via CLOCK until the shard
    /// is back under its entry and byte budgets. Results too large for
    /// one shard's byte share are skipped (caching them would evict the
    /// entire shard for one entry). A concurrent insert of the same key
    /// wins benignly — both computed the same bits.
    pub(crate) fn insert(&self, key: QueryKey, result: &QueryResult) {
        if self.entries_per_shard == 0 {
            return; // max_entries: 0 — caching disabled
        }
        let bytes = key.approx_bytes() + approx_result_bytes(result);
        if bytes > self.bytes_per_shard {
            return;
        }
        // Deep-copy before taking the lock; the critical section only
        // moves pointers and runs the sweep.
        let result = Arc::new(result.clone());
        let key = Arc::new(key);
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(&key).lock();
            if shard.map.contains_key(&*key) {
                return;
            }
            shard.bytes += bytes;
            shard.clock.push_back(Arc::clone(&key));
            shard.map.insert(
                key,
                Entry {
                    result,
                    bytes,
                    touched: false,
                },
            );
            while shard.map.len() > self.entries_per_shard || shard.bytes > self.bytes_per_shard {
                let candidate = shard
                    .clock
                    .pop_front()
                    .expect("clock queue mirrors the map, which is non-empty");
                let entry = shard
                    .map
                    .get_mut(&*candidate)
                    .expect("clock queue holds only live keys");
                if entry.touched {
                    // Second chance: clear the mark, move to the back.
                    // Marks only come from hits, so a full sweep leaves
                    // everything unmarked and the loop terminates.
                    entry.touched = false;
                    shard.clock.push_back(candidate);
                } else {
                    let entry = shard
                        .map
                        .remove(&*candidate)
                        .expect("checked present just above");
                    shard.bytes -= entry.bytes;
                    evicted += 1;
                }
            }
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drops every cached entry (counters keep running). Handy for
    /// benchmarks comparing cold and warm traffic; never *required* —
    /// the model is immutable, so entries cannot go stale.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.clock.clear();
            shard.bytes = 0;
        }
    }

    /// A snapshot of the counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0usize;
        let mut bytes = 0usize;
        for shard in &self.shards {
            let shard = shard.lock();
            entries += shard.map.len();
            bytes += shard.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("shards", &self.shards.len())
            .field("entries_per_shard", &self.entries_per_shard)
            .field("bytes_per_shard", &self.bytes_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Approximate heap footprint of a result, for the byte budget.
fn approx_result_bytes(result: &QueryResult) -> usize {
    std::mem::size_of::<QueryResult>()
        + match result {
            QueryResult::Marginals(p) => p
                .marginals()
                .iter()
                .map(|m| std::mem::size_of::<Vec<f64>>() + m.len() * 8)
                .sum::<usize>(),
            QueryResult::Mpe(m) => m.assignment.len() * std::mem::size_of::<usize>(),
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posterior::Posteriors;
    use crate::query::Query;
    use fastbn_bayesnet::VarId;

    fn assert_send_sync<T: Send + Sync>() {}

    fn key(state: usize) -> QueryKey {
        Query::new().observe(VarId(0), state).key()
    }

    fn result(p: f64) -> QueryResult {
        QueryResult::Marginals(Posteriors::new(vec![vec![p, 1.0 - p]], p))
    }

    #[test]
    fn cache_is_send_and_sync() {
        assert_send_sync::<QueryCache>();
    }

    #[test]
    fn get_after_insert_returns_the_exact_result() {
        let cache = QueryCache::new(CacheConfig::default());
        assert_eq!(cache.get(&key(0)), None);
        cache.insert(key(0), &result(0.25));
        assert_eq!(cache.get(&key(0)), Some(result(0.25)));
        assert_eq!(cache.get(&key(1)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn entry_budget_evicts_the_coldest() {
        let config = CacheConfig {
            max_entries: 4,
            shards: 1,
            ..CacheConfig::default()
        };
        let cache = QueryCache::new(config);
        for s in 0..4 {
            cache.insert(key(s), &result(0.5));
        }
        // Touch 0 so the sweep grants it a second chance; inserting a
        // fifth entry must evict 1 (the oldest untouched).
        assert!(cache.get(&key(0)).is_some());
        cache.insert(key(4), &result(0.5));
        assert_eq!(cache.stats().entries, 4);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&key(0)).is_some(), "touched entry survived");
        assert!(cache.get(&key(1)).is_none(), "coldest entry evicted");
        assert!(cache.get(&key(4)).is_some());
    }

    #[test]
    fn byte_budget_bounds_the_footprint() {
        let wide = result(0.5); // ~80 bytes of payload + key
        let per_entry = approx_result_bytes(&wide) + key(0).approx_bytes();
        let config = CacheConfig {
            max_entries: usize::MAX,
            max_bytes: 3 * per_entry,
            shards: 1,
        };
        let cache = QueryCache::new(config);
        for s in 0..16 {
            cache.insert(key(s), &wide);
        }
        let stats = cache.stats();
        assert!(stats.bytes <= 3 * per_entry, "byte budget respected");
        assert!(stats.entries >= 1 && stats.entries <= 3);
        assert_eq!(stats.evictions, 16 - stats.entries as u64);
    }

    #[test]
    fn zero_entry_budget_disables_caching() {
        let cache = QueryCache::new(CacheConfig {
            max_entries: 0,
            ..CacheConfig::default()
        });
        cache.insert(key(0), &result(0.5));
        assert_eq!(cache.get(&key(0)), None);
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.insertions), (0, 0));
        assert_eq!(stats.misses, 1, "lookups still count");
    }

    #[test]
    fn delta_since_subtracts_counters_and_keeps_occupancy() {
        let cache = QueryCache::new(CacheConfig::default());
        cache.insert(key(0), &result(0.5));
        let _ = cache.get(&key(0));
        let baseline = cache.stats();
        let _ = cache.get(&key(0));
        let _ = cache.get(&key(1));
        cache.insert(key(1), &result(0.25));
        let delta = cache.stats().delta_since(&baseline);
        assert_eq!((delta.hits, delta.misses, delta.insertions), (1, 1, 1));
        assert_eq!(delta.entries, 2, "occupancy is final, not a delta");
    }

    #[test]
    fn shard_count_never_exceeds_the_entry_budget() {
        // With a per-shard floor of one entry, more shards than
        // max_entries would silently raise the global budget.
        let cache = QueryCache::new(CacheConfig {
            max_entries: 2,
            shards: 16,
            ..CacheConfig::default()
        });
        for s in 0..32 {
            cache.insert(key(s), &result(0.5));
        }
        assert!(
            cache.stats().entries <= 2,
            "entry budget respected: {:?}",
            cache.stats()
        );
    }

    #[test]
    fn oversized_results_are_never_cached() {
        let config = CacheConfig {
            max_entries: 8,
            max_bytes: 8, // smaller than any real entry
            shards: 1,
        };
        let cache = QueryCache::new(config);
        cache.insert(key(0), &result(0.5));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().insertions, 0);
        assert_eq!(cache.get(&key(0)), None);
    }

    #[test]
    fn duplicate_insert_is_benign() {
        let cache = QueryCache::new(CacheConfig::default());
        cache.insert(key(0), &result(0.25));
        cache.insert(key(0), &result(0.25));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 1, "second insert observed the first");
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = QueryCache::new(CacheConfig {
            shards: 4,
            ..CacheConfig::default()
        });
        for s in 0..32 {
            cache.insert(key(s), &result(0.5));
        }
        assert!(cache.stats().entries > 0);
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.bytes), (0, 0));
        assert_eq!(cache.get(&key(0)), None);
    }

    #[test]
    fn concurrent_mixed_traffic_stays_consistent() {
        let cache = std::sync::Arc::new(QueryCache::new(CacheConfig {
            max_entries: 64,
            shards: 4,
            ..CacheConfig::default()
        }));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..500 {
                        let s = (t * 131 + i * 7) % 96;
                        if let Some(got) = cache.get(&key(s)) {
                            assert_eq!(got, result(s as f64 / 96.0), "payload matches key");
                        } else {
                            cache.insert(key(s), &result(s as f64 / 96.0));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.entries <= 64);
        assert_eq!(
            stats.entries as u64,
            stats.insertions - stats.evictions,
            "every entry is an insertion that has not been evicted"
        );
        assert!(stats.hits > 0 && stats.misses > 0);
    }
}
