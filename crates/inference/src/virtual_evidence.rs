//! Virtual (likelihood) evidence — Pearl's "soft findings".
//!
//! A virtual finding attaches a likelihood vector `L(v)` to a variable
//! instead of a hard observation: the posterior is conditioned on an
//! imaginary sensor whose report has likelihood `L(v)[s]` given `v = s`.
//! Junction trees absorb such findings by multiplying the likelihood into
//! any clique containing the variable — a single-variable *extension*,
//! i.e. the same primitive the paper already parallelizes.
//!
//! Hard evidence is the special case of a one-hot likelihood; the tests
//! verify that equivalence, plus agreement with a likelihood-weighted
//! variable-elimination oracle.

use fastbn_bayesnet::VarId;
use fastbn_potential::{Domain, KernelPlan};

use crate::prepared::Prepared;
use crate::state::WorkState;

/// A set of likelihood findings, sorted by variable id. Multiple findings
/// on the same variable **multiply together** (independent sensors) —
/// unlike hard evidence, where re-observing a variable replaces the
/// earlier finding. Both behaviors are part of the API contract (see
/// [`Query::likelihood`](crate::query::Query::likelihood) and
/// [`Query::observe`](crate::query::Query::observe)) and both are
/// reflected faithfully in the canonical
/// [`QueryKey`](crate::query::QueryKey) the result cache is keyed by.
///
/// # Scale canonicalization
///
/// Only the *ratios* within a likelihood vector are meaningful: `L(v)`
/// and `c · L(v)` describe the same soft finding. The engine therefore
/// canonicalizes every vector before absorbing it — each entry is
/// divided by the vector's maximum (so the largest entry becomes exactly
/// `1.0`) and negative zeros become positive zeros. Consequences:
///
/// * posteriors and `prob_evidence` are **bit-identical** for
///   proportional vectors (`[0.8, 0.2]` vs `[1.6, 0.4]` vs `[4.0, 1.0]`),
///   which is what lets the query-result cache treat them as one query;
/// * `prob_evidence` under virtual findings is reported against the
///   canonical (max = 1) vectors, so it never exceeds the hard-evidence
///   `P(e)` of the same query — adding a soft finding can only shrink it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VirtualEvidence {
    entries: Vec<(VarId, Vec<f64>)>,
}

impl VirtualEvidence {
    /// No virtual findings.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a likelihood vector for `var`.
    ///
    /// The vector is accepted as-is; validation happens when the finding
    /// is *used*: running a query rejects vectors that are mis-sized for
    /// the variable ([`InferenceError::InvalidLikelihood`]) or malformed —
    /// negative, NaN/infinite, or all-zero entries
    /// ([`InferenceError::MalformedLikelihood`]) — with a typed error
    /// instead of a panic, so one bad finding in a batch fails only its
    /// own slot.
    ///
    /// [`InferenceError::InvalidLikelihood`]: crate::error::InferenceError::InvalidLikelihood
    /// [`InferenceError::MalformedLikelihood`]: crate::error::InferenceError::MalformedLikelihood
    pub fn add(&mut self, var: VarId, likelihood: Vec<f64>) {
        self.entries.push((var, likelihood));
        self.entries.sort_by_key(|e| e.0);
    }

    /// Builder-style [`VirtualEvidence::add`].
    pub fn with(mut self, var: VarId, likelihood: Vec<f64>) -> Self {
        self.add(var, likelihood);
        self
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no findings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates findings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &[f64])> + '_ {
        self.entries.iter().map(|(v, l)| (*v, l.as_slice()))
    }
}

/// The canonical form of one likelihood vector: every entry divided by
/// the vector's maximum (so the largest entry is exactly `1.0`) and
/// `-0.0` replaced by `+0.0`. This is what the engine actually absorbs
/// and what [`QueryKey`](crate::query::QueryKey) hashes, so two queries
/// with the same key perform the exact same arithmetic — the foundation
/// of the cache's bit-identity guarantee.
///
/// Total on malformed input: vectors containing non-finite entries, or
/// without a positive maximum (all-zero / negative-only), are returned
/// unchanged — validation rejects them with a typed error before they
/// can reach the engine, and key derivation (which runs pre-validation
/// in the serve dedup path) still distinguishes them.
pub(crate) fn canonical_likelihood(likelihood: &[f64]) -> Vec<f64> {
    let mut max = 0.0f64;
    for &p in likelihood {
        if !p.is_finite() {
            return likelihood.to_vec();
        }
        if p > max {
            max = p;
        }
    }
    if max <= 0.0 {
        return likelihood.to_vec();
    }
    likelihood
        .iter()
        .map(|&p| if p == 0.0 { 0.0 } else { p / max })
        .collect()
}

/// In-place form of [`canonical_likelihood`] for pre-validated vectors
/// (finite entries, positive maximum): divides by the maximum and maps
/// `-0.0` to `+0.0`, producing bit-identical values to the allocating
/// form. The incremental edit path canonicalizes the caller's vector at
/// edit time so the steady-state replay multiplies stored canonical
/// entries without allocating.
pub(crate) fn canonicalize_likelihood(likelihood: &mut [f64]) {
    let mut max = 0.0f64;
    for &p in likelihood.iter() {
        debug_assert!(p.is_finite());
        if p > max {
            max = p;
        }
    }
    debug_assert!(
        max > 0.0,
        "canonicalize_likelihood needs a validated vector"
    );
    for p in likelihood {
        *p = if *p == 0.0 { 0.0 } else { *p / max };
    }
}

/// Absorbs virtual findings into a work state (after hard evidence,
/// before propagation). Each vector is absorbed in its
/// [`canonical_likelihood`] form, so proportional findings perform
/// identical arithmetic.
pub(crate) fn absorb_virtual(
    state: &mut WorkState,
    prepared: &Prepared,
    virtual_evidence: &VirtualEvidence,
) {
    for (var, likelihood) in virtual_evidence.iter() {
        debug_assert_eq!(likelihood.len(), prepared.cards[var.index()]);
        let msg = canonical_likelihood(likelihood);
        let home = prepared.home[var.index()];
        // One-off plan per finding — absorption is per-query, not
        // steady-state, so the transient compile is acceptable here.
        let plan = KernelPlan::new(
            &prepared.clique_domains[home],
            &Domain::new(vec![(var, likelihood.len())]),
        );
        plan.extend_multiply(state.clique_mut(home), &msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::variable_elimination as ve;
    use crate::posterior::Posteriors;
    use crate::query::Query;
    use crate::solver::Solver;
    use fastbn_bayesnet::{datasets, BayesianNetwork, Evidence};

    /// Oracle: VE over CPT factors with likelihood factors appended.
    fn ve_with_virtual(
        net: &BayesianNetwork,
        evidence: &Evidence,
        virt: &VirtualEvidence,
    ) -> Posteriors {
        // Build an equivalent network trick is messy; instead reuse the
        // public VE on an augmented factor list by monkey-approach:
        // represent each likelihood as an extra "sensor" child variable
        // with the likelihood as its CPT row, observed in state 0 —
        // mathematically identical to virtual evidence (Pearl's
        // construction).
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        for var in net.variables() {
            b.add_variable(var.clone());
        }
        let mut sensor_ids = Vec::new();
        for (i, (var, likelihood)) in virt.iter().enumerate() {
            // Sensor with 2 states; P(sensor = 0 | v = s) ∝ likelihood[s].
            // Scale so probabilities stay in [0, 1].
            let max = likelihood.iter().cloned().fold(0.0f64, f64::max);
            let id = b.add_variable(fastbn_bayesnet::Variable::with_cardinality(
                format!("sensor{i}"),
                2,
            ));
            let mut values = Vec::new();
            for &l in likelihood {
                let p = l / (max * 2.0); // headroom keeps rows valid
                values.extend([p, 1.0 - p]);
            }
            sensor_ids.push((id, var));
            b.set_cpt(id, vec![var], values).unwrap();
        }
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            let cpt = net.cpt(id);
            b.set_cpt(id, cpt.parents().to_vec(), cpt.values().to_vec())
                .unwrap();
        }
        let augmented = b.build().unwrap();
        let mut ev = evidence.clone();
        for (sensor, _) in &sensor_ids {
            ev.set(*sensor, 0);
        }
        let post = ve::all_posteriors(&augmented, &ev).unwrap();
        // Truncate to the original variables.
        Posteriors::new(
            (0..net.num_vars())
                .map(|v| post.marginal(VarId::from_index(v)).to_vec())
                .collect(),
            post.prob_evidence, // scaled, compared only up to normalization
        )
    }

    #[test]
    fn one_hot_virtual_equals_hard_evidence() {
        let net = datasets::asia();
        let solver = Solver::new(&net);
        let mut session = solver.session();
        let dysp = net.var_id("Dyspnea").unwrap();
        let hard = session
            .posteriors(&Evidence::from_pairs([(dysp, 0)]))
            .unwrap();
        let virt = session
            .run(&Query::new().likelihood(dysp, vec![1.0, 0.0]))
            .unwrap()
            .into_posteriors()
            .unwrap();
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            if id == dysp {
                continue; // hard query reports a point mass there
            }
            for (a, b) in hard.marginal(id).iter().zip(virt.marginal(id)) {
                assert!((a - b).abs() < 1e-12, "var {v}: {a} vs {b}");
            }
        }
        assert!((hard.prob_evidence - virt.prob_evidence).abs() < 1e-12);
    }

    #[test]
    fn virtual_evidence_matches_sensor_construction_oracle() {
        let net = datasets::cancer();
        let solver = Solver::new(&net);
        let xray = net.var_id("XRay").unwrap();
        let smoker = net.var_id("Smoker").unwrap();
        // A blurry x-ray: 3:1 likelihood toward "positive".
        let virt = VirtualEvidence::empty().with(xray, vec![0.75, 0.25]);
        let hard = Evidence::from_pairs([(smoker, 0)]);
        let got = solver
            .query(
                &Query::new()
                    .evidence(hard.clone())
                    .virtual_evidence(virt.clone()),
            )
            .unwrap()
            .into_posteriors()
            .unwrap();
        let oracle = ve_with_virtual(&net, &hard, &virt);
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            for (a, b) in got.marginal(id).iter().zip(oracle.marginal(id)) {
                assert!((a - b).abs() < 1e-9, "var {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn uniform_likelihood_is_a_noop() {
        let net = datasets::student();
        let solver = Solver::new(&net);
        let mut session = solver.session();
        let grade = net.var_id("Grade").unwrap();
        let base = session.posteriors(&Evidence::empty()).unwrap();
        let flat = session
            .run(&Query::new().likelihood(grade, vec![1.0, 1.0, 1.0]))
            .unwrap()
            .into_posteriors()
            .unwrap();
        assert!(base.max_abs_diff(&flat) < 1e-12);
    }

    #[test]
    fn repeated_findings_multiply() {
        // Two independent noisy sensors on the same variable.
        let net = datasets::cancer();
        let solver = Solver::new(&net);
        let mut session = solver.session();
        let cancer = net.var_id("Cancer").unwrap();
        let a = session
            .run(&Query::new().likelihood(cancer, vec![0.8 * 0.8, 0.2 * 0.2]))
            .unwrap()
            .into_posteriors()
            .unwrap();
        let b = session
            .run(
                &Query::new()
                    .likelihood(cancer, vec![0.8, 0.2])
                    .likelihood(cancer, vec![0.8, 0.2]),
            )
            .unwrap()
            .into_posteriors()
            .unwrap();
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn proportional_likelihoods_are_bit_identical() {
        // Only the ratios of a likelihood vector are meaningful; the
        // engine canonicalizes scale away, so proportional vectors give
        // bitwise-equal posteriors *and* prob_evidence. This is what the
        // query-result cache's key relies on.
        let net = datasets::cancer();
        let solver = Solver::new(&net);
        let mut session = solver.session();
        let xray = net.var_id("XRay").unwrap();
        let base = session
            .run(&Query::new().likelihood(xray, vec![0.75, 0.25]))
            .unwrap()
            .into_posteriors()
            .unwrap();
        for scale in [2.0, 0.5, 1e6, 1e-6] {
            let scaled = session
                .run(&Query::new().likelihood(xray, vec![0.75 * scale, 0.25 * scale]))
                .unwrap()
                .into_posteriors()
                .unwrap();
            assert_eq!(base.max_abs_diff(&scaled), 0.0, "scale {scale}");
            assert_eq!(
                base.prob_evidence.to_bits(),
                scaled.prob_evidence.to_bits(),
                "scale {scale}"
            );
        }
    }

    #[test]
    fn negative_zero_likelihood_entry_is_canonicalized() {
        // -0.0 passes validation (it is not negative in the IEEE
        // comparison sense) and must behave exactly like +0.0 — bit for
        // bit — so the two cannot alias distinct cache entries with
        // different payloads.
        let net = datasets::asia();
        let solver = Solver::new(&net);
        let mut session = solver.session();
        let dysp = net.var_id("Dyspnea").unwrap();
        let pos = session
            .run(&Query::new().likelihood(dysp, vec![1.0, 0.0]))
            .unwrap()
            .into_posteriors()
            .unwrap();
        let neg = session
            .run(&Query::new().likelihood(dysp, vec![1.0, -0.0]))
            .unwrap()
            .into_posteriors()
            .unwrap();
        assert_eq!(pos.max_abs_diff(&neg), 0.0);
        assert_eq!(pos.prob_evidence.to_bits(), neg.prob_evidence.to_bits());
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            for (a, b) in pos.marginal(id).iter().zip(neg.marginal(id)) {
                assert_eq!(a.to_bits(), b.to_bits(), "var {v}");
            }
        }
    }

    #[test]
    fn canonical_likelihood_normalizes_by_max_and_fixes_negative_zero() {
        assert_eq!(
            canonical_likelihood(&[0.5, 1.0, 0.25]),
            vec![0.5, 1.0, 0.25]
        );
        assert_eq!(canonical_likelihood(&[1.0, 2.0, 0.5]), vec![0.5, 1.0, 0.25]);
        let canon = canonical_likelihood(&[-0.0, 2.0]);
        assert_eq!(canon, vec![0.0, 1.0]);
        assert_eq!(canon[0].to_bits(), 0.0f64.to_bits(), "-0.0 becomes +0.0");
        // Malformed vectors pass through untouched (validation rejects
        // them before the engine ever sees them).
        assert!(canonical_likelihood(&[f64::NAN, 1.0])[0].is_nan());
        assert_eq!(
            canonical_likelihood(&[f64::INFINITY, 1.0]),
            vec![f64::INFINITY, 1.0]
        );
        assert_eq!(canonical_likelihood(&[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(canonical_likelihood(&[-1.0, -2.0]), vec![-1.0, -2.0]);
        assert_eq!(canonical_likelihood(&[]), Vec::<f64>::new());
    }

    #[test]
    fn all_zero_likelihood_rejected_at_query_time() {
        // Construction accepts the vector (builders stay infallible);
        // running it returns the typed error.
        let virt = VirtualEvidence::empty().with(VarId(0), vec![0.0, 0.0]);
        assert_eq!(virt.len(), 1);
        let net = datasets::sprinkler();
        let solver = Solver::new(&net);
        let err = solver
            .query(&Query::new().virtual_evidence(virt))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::InferenceError::MalformedLikelihood { .. }
        ));
    }
}
