//! `SeqJt` — Fast-BNI-seq: the optimized sequential engine.
//!
//! All three bottleneck operations run as single plan-driven linear scans
//! (no per-entry decoding, no per-message allocation — the plans are
//! precompiled in [`Prepared`]); this is the sequential baseline that
//! beats UnBBayes by the Table-1 "seq speedup" column.
//!
//! On top of the plans, this engine **defers ratio extension**: instead of
//! eagerly multiplying each incoming ratio into the receiver, it records
//! the separator in the state's per-clique pending slot, and fuses the
//! multiplication into the receiver's *next outgoing marginalization* via
//! [`multiply_marginalize`] — one pass over the clique instead of two.
//! Bit-identity is preserved: if a second message arrives before the
//! clique sends, the older ratio is flushed first (so ratios multiply in
//! the same ascending message order the eager path uses), the fused pass
//! forms the same per-element products and the same ascending-source
//! sums, and every remaining pending ratio is flushed before `propagate`
//! returns. A ratio region is never overwritten between deferral and
//! fusion — each separator carries exactly one message per phase, and in
//! the one same-separator corner (a root whose last collect edge is also
//! its first distribute edge) the fused read consumes `ratio` before
//! `sep_update` rewrites it.
//!
//! fastbn: deny-hot-alloc

use std::sync::Arc;

use fastbn_potential::{multiply_marginalize, ops};

use crate::engines::InferenceEngine;
use crate::prepared::Prepared;
use crate::state::WorkState;

/// The optimized sequential junction-tree engine (Fast-BNI-seq).
///
/// Stateless: holds only the shared [`Prepared`]; per-query scratch is
/// passed in by the caller (normally a
/// [`Session`](crate::solver::Session)).
pub struct SeqJt {
    prepared: Arc<Prepared>,
}

impl SeqJt {
    /// Creates an engine over prepared structures.
    pub fn new(prepared: Arc<Prepared>) -> Self {
        SeqJt { prepared }
    }

    /// One message `sender → receiver` over `sep`, with deferred ratio
    /// extension: marginalize (fusing the sender's own pending ratio, if
    /// any), update the separator, and record — not apply — the ratio for
    /// the receiver.
    fn send(&self, state: &mut WorkState, sender: usize, receiver: usize, sep: usize) {
        let prepared = &*self.prepared;
        // Keep the receiver's ratios in ascending message order: apply an
        // older deferred ratio before deferring this one.
        state.flush_pending(prepared, receiver);
        let pending = state.take_pending(sender);
        let marg_plan = prepared.plan_for(sender, sep);
        let layout = &*prepared.layout;
        let raw = state.raw();
        crate::trace::kernel(
            crate::trace::layout_class(marg_plan.layout()),
            sender as u64,
            ||
            // SAFETY: every slice below is a distinct slab region (clique,
            // sep, fresh and ratio regions are pairwise disjoint by layout
            // construction; `ratio[p]` vs `fresh[sep]` are distinct regions
            // even when `p == sep`), and this engine is single-threaded.
            unsafe {
                let fresh = raw.slice_mut(layout.fresh_off[sep], layout.sep_len[sep]);
                match pending {
                    Some(p) => {
                        let mul_plan = prepared.plan_for(sender, p);
                        let clique =
                            raw.slice_mut(layout.clique_off[sender], layout.clique_len[sender]);
                        let ratio_p = raw.slice(layout.ratio_off[p], layout.sep_len[p]);
                        multiply_marginalize(mul_plan, marg_plan, clique, ratio_p, fresh);
                    }
                    None => {
                        let clique =
                            raw.slice(layout.clique_off[sender], layout.clique_len[sender]);
                        marg_plan.marginalize(clique, fresh);
                    }
                }
                let sep_vals = raw.slice_mut(layout.sep_off[sep], layout.sep_len[sep]);
                let ratio = raw.slice_mut(layout.ratio_off[sep], layout.sep_len[sep]);
                ops::sep_update(fresh, sep_vals, ratio);
            },
        );
        state.set_pending(receiver, sep);
    }
}

impl InferenceEngine for SeqJt {
    fn name(&self) -> &'static str {
        "Fast-BNI-seq"
    }

    fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    fn propagate(&self, state: &mut WorkState) {
        let schedule = &self.prepared.built.schedule;
        crate::trace::collect(|| {
            for layer in &schedule.collect_layers {
                for &id in layer {
                    let m = schedule.messages[id];
                    self.send(state, m.child, m.parent, m.sep);
                }
            }
        });
        crate::trace::distribute(|| {
            for layer in &schedule.distribute_layers {
                for &id in layer {
                    let m = schedule.messages[id];
                    self.send(state, m.parent, m.child, m.sep);
                }
            }
            // Leaves (and any clique that never sent again) still hold a
            // deferred ratio; apply them before extraction reads the
            // cliques.
            for c in 0..self.prepared.num_cliques() {
                state.flush_pending(&self.prepared, c);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::error::InferenceError;
    use crate::solver::Solver;
    use fastbn_bayesnet::{datasets, Evidence, VarId};

    fn solver_for(net: &fastbn_bayesnet::BayesianNetwork) -> Solver {
        Solver::new(net) // defaults to SeqJt
    }

    #[test]
    fn asia_prior_marginals_match_published_values() {
        let net = datasets::asia();
        let solver = solver_for(&net);
        let post = solver.posteriors(&Evidence::empty()).unwrap();
        let get = |name: &str| post.marginal(net.var_id(name).unwrap())[0];
        assert!((get("Tuberculosis") - 0.0104).abs() < 1e-6);
        assert!((get("LungCancer") - 0.055).abs() < 1e-6);
        assert!((get("Bronchitis") - 0.45).abs() < 1e-6);
        assert!((get("TbOrCa") - 0.064828).abs() < 1e-6);
        assert!((get("XRay") - 0.11029).abs() < 1e-5);
        assert!((get("Dyspnea") - 0.4359706).abs() < 1e-6);
        assert!((post.prob_evidence - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sprinkler_posterior_given_wet_grass() {
        // Classic Russell & Norvig result:
        // P(Rain | Wet) = 0.4581/0.6471 ≈ 0.70793, P(Sprinkler | Wet) ≈ 0.42976.
        let net = datasets::sprinkler();
        let solver = solver_for(&net);
        let wet = net.var_id("WetGrass").unwrap();
        let post = solver
            .posteriors(&Evidence::from_pairs([(wet, 0)]))
            .unwrap();
        let rain = post.marginal(net.var_id("Rain").unwrap())[0];
        let spr = post.marginal(net.var_id("Sprinkler").unwrap())[0];
        assert!((rain - 0.70793).abs() < 1e-4, "rain {rain}");
        assert!((spr - 0.42976).abs() < 1e-4, "sprinkler {spr}");
        assert!(
            (post.prob_evidence - 0.6471).abs() < 1e-9,
            "P(Wet) = 0.6471"
        );
    }

    #[test]
    fn evidence_marginal_is_point_mass() {
        let net = datasets::cancer();
        let solver = solver_for(&net);
        let smoker = net.var_id("Smoker").unwrap();
        let post = solver
            .posteriors(&Evidence::from_pairs([(smoker, 1)]))
            .unwrap();
        assert_eq!(post.marginal(smoker), &[0.0, 1.0]);
    }

    #[test]
    fn explaining_away_in_cancer_network() {
        let net = datasets::cancer();
        let solver = solver_for(&net);
        let mut session = solver.session();
        let cancer = net.var_id("Cancer").unwrap();
        let xray = net.var_id("XRay").unwrap();
        let prior = session
            .posteriors(&Evidence::empty())
            .unwrap()
            .marginal(cancer)[0];
        let with_xray = session
            .posteriors(&Evidence::from_pairs([(xray, 0)]))
            .unwrap()
            .marginal(cancer)[0];
        assert!(
            with_xray > prior * 3.0,
            "positive x-ray must sharply raise P(cancer): {prior} -> {with_xray}"
        );
    }

    #[test]
    fn repeated_queries_are_independent() {
        // Session state must fully reset between queries.
        let net = datasets::asia();
        let solver = solver_for(&net);
        let mut session = solver.session();
        let dysp = net.var_id("Dyspnea").unwrap();
        let baseline = session.posteriors(&Evidence::empty()).unwrap();
        let _ = session
            .posteriors(&Evidence::from_pairs([(dysp, 0)]))
            .unwrap();
        let again = session.posteriors(&Evidence::empty()).unwrap();
        assert_eq!(baseline.max_abs_diff(&again), 0.0, "bitwise reset");
    }

    #[test]
    fn impossible_evidence_reported() {
        let net = datasets::asia();
        let solver = solver_for(&net);
        let mut session = solver.session();
        // TbOrCa is a deterministic OR: tub=yes & either=no is impossible.
        let tub = net.var_id("Tuberculosis").unwrap();
        let either = net.var_id("TbOrCa").unwrap();
        let err = session
            .posteriors(&Evidence::from_pairs([(tub, 0), (either, 1)]))
            .unwrap_err();
        assert_eq!(err, InferenceError::ImpossibleEvidence);
        // And the session still works afterwards.
        assert!(session.posteriors(&Evidence::empty()).is_ok());
    }

    #[test]
    fn joint_posterior_within_a_clique() {
        // Sprinkler & Rain share a clique; their joint given WetGrass must
        // match brute-force enumeration and its marginals must match the
        // per-variable posteriors.
        let net = datasets::sprinkler();
        let solver = solver_for(&net);
        let mut session = solver.session();
        let wet = net.var_id("WetGrass").unwrap();
        let spr = net.var_id("Sprinkler").unwrap();
        let rain = net.var_id("Rain").unwrap();
        let ev = Evidence::from_pairs([(wet, 0)]);
        let joint = session
            .joint_posterior(&ev, &[rain, spr])
            .unwrap()
            .expect("S and R share a clique");
        assert!((joint.sum() - 1.0).abs() < 1e-12);
        // Marginals of the joint equal the single-variable posteriors.
        let post = session.posteriors(&ev).unwrap();
        let spr_marginal = fastbn_potential::ops::marginal_of_var(&joint, spr);
        for (a, b) in spr_marginal.iter().zip(post.marginal(spr)) {
            assert!((a - b).abs() < 1e-12);
        }
        // Exact joint value: P(S=t, R=t | W=t) = 0.5*(0.1*0.8*0.99 + 0.5*0.2*0.99)/0.6471.
        let expected = 0.5 * (0.1 * 0.8 * 0.99 + 0.5 * 0.2 * 0.99) / 0.6471;
        let got = joint.value_at(&[0, 0]); // sorted order: (Sprinkler, Rain)
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn joint_posterior_out_of_clique_is_none() {
        // VisitAsia and Smoker never co-occur in a clique of the Asia tree.
        let net = datasets::asia();
        let solver = solver_for(&net);
        let mut session = solver.session();
        let a = net.var_id("VisitAsia").unwrap();
        let s = net.var_id("Smoker").unwrap();
        assert!(session
            .joint_posterior(&Evidence::empty(), &[a, s])
            .unwrap()
            .is_none());
    }

    #[test]
    fn all_variables_observed() {
        let net = datasets::student();
        let solver = solver_for(&net);
        let ev = Evidence::from_pairs((0..net.num_vars()).map(|v| (VarId::from_index(v), 0)));
        let post = solver.posteriors(&ev).unwrap();
        for v in 0..net.num_vars() {
            assert_eq!(post.marginal(VarId::from_index(v))[0], 1.0);
        }
        assert!(post.prob_evidence > 0.0 && post.prob_evidence < 1.0);
    }
}
