//! `DirectJt` — coarse-grained inter-clique parallelism only (the Kozlov &
//! Singh '94 analogue).
//!
//! Within each BFS layer, messages are independent *except* that several
//! children may update the same parent during collect; messages are
//! therefore grouped by receiving parent and the groups run in parallel,
//! each group processing its children sequentially in child-id order (the
//! same order the sequential engine uses, keeping results bit-identical).
//!
//! Every table operation inside a message is sequential — that is this
//! engine's defining limitation: one huge clique in a layer stalls the
//! whole team (the load imbalance the paper attributes to this family).
//!
//! fastbn: deny-hot-alloc

use std::sync::Arc;

use fastbn_parallel::{Schedule, ThreadPool};

use crate::engines::InferenceEngine;
use crate::prepared::Prepared;
use crate::state::{message_kernel, WorkState};

/// One parallel work item: all same-layer messages into one receiver.
#[derive(Debug, Clone)]
struct ReceiverGroup {
    receiver: usize,
    /// Message ids, ascending (determinism).
    msgs: Vec<usize>,
}

/// Coarse-grained (inter-clique only) parallel engine.
pub struct DirectJt {
    prepared: Arc<Prepared>,
    pool: Arc<ThreadPool>,
    /// Per collect layer: receiver groups.
    collect_groups: Vec<Vec<ReceiverGroup>>,
    /// Per distribute layer: receiver groups (each holds one message,
    /// since every child has a unique parent edge).
    distribute_groups: Vec<Vec<ReceiverGroup>>,
}

/// Groups a layer's messages by the receiving clique.
// fastbn: allow(hot-alloc): plan construction, runs once per engine build.
fn group_by_receiver(
    messages: &[fastbn_jtree::Message],
    layer: &[usize],
    receiver_of: impl Fn(&fastbn_jtree::Message) -> usize,
) -> Vec<ReceiverGroup> {
    let mut groups: Vec<ReceiverGroup> = Vec::new();
    for &id in layer {
        let r = receiver_of(&messages[id]);
        match groups.iter_mut().find(|g| g.receiver == r) {
            Some(g) => g.msgs.push(id),
            None => groups.push(ReceiverGroup {
                receiver: r,
                msgs: vec![id],
            }),
        }
    }
    for g in &mut groups {
        g.msgs.sort_unstable();
    }
    groups
}

impl DirectJt {
    /// Creates the engine with a private pool of `threads` workers.
    pub fn new(prepared: Arc<Prepared>, threads: usize) -> Self {
        DirectJt::with_pool(prepared, ThreadPool::shared(threads))
    }

    /// Creates the engine on an **injected** (possibly shared) pool —
    /// the multi-model path, where many engines run their regions on
    /// one worker team instead of spawning a team each.
    pub fn with_pool(prepared: Arc<Prepared>, pool: Arc<ThreadPool>) -> Self {
        let schedule = &prepared.built.schedule;
        let collect_groups = schedule
            .collect_layers
            .iter()
            .map(|layer| group_by_receiver(&schedule.messages, layer, |m| m.parent))
            .collect();
        let distribute_groups = schedule
            .distribute_layers
            .iter()
            .map(|layer| group_by_receiver(&schedule.messages, layer, |m| m.child))
            .collect();
        DirectJt {
            pool,
            prepared,
            collect_groups,
            distribute_groups,
        }
    }

    /// Runs one layer: receiver groups in parallel, sequential ops inside.
    fn run_layer(&self, state: &mut WorkState, groups: &[ReceiverGroup], collect: bool) {
        let prepared = &*self.prepared;
        let messages = &prepared.built.schedule.messages;
        let layout = &*prepared.layout;
        let raw = state.raw();
        self.pool
            .parallel_for(0..groups.len(), Schedule::Dynamic { grain: 1 }, |g| {
                let group = &groups[g];
                for &id in &group.msgs {
                    let m = messages[id];
                    let sender = if collect { m.child } else { m.parent };
                    // SAFETY: layer schedule invariants —
                    // * `group.receiver`'s region is written by exactly
                    //   this task — receivers are distinct across a
                    //   layer's groups;
                    // * `sender` regions are only read this layer: in
                    //   collect, a layer's senders are strictly deeper than
                    //   its receivers; in distribute, strictly shallower —
                    //   so no clique is both read and written concurrently;
                    // * `m.sep`'s regions (sep/fresh/ratio) belong to
                    //   exactly one message of the layer.
                    unsafe {
                        message_kernel(
                            prepared.plan_for(sender, m.sep),
                            prepared.plan_for(group.receiver, m.sep),
                            raw.slice(layout.clique_off[sender], layout.clique_len[sender]),
                            raw.slice_mut(
                                layout.clique_off[group.receiver],
                                layout.clique_len[group.receiver],
                            ),
                            raw.slice_mut(layout.sep_off[m.sep], layout.sep_len[m.sep]),
                            raw.slice_mut(layout.fresh_off[m.sep], layout.sep_len[m.sep]),
                            raw.slice_mut(layout.ratio_off[m.sep], layout.sep_len[m.sep]),
                        );
                    }
                }
            });
    }
}

impl InferenceEngine for DirectJt {
    fn name(&self) -> &'static str {
        "Direct"
    }

    fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn pool(&self) -> Option<&ThreadPool> {
        Some(&self.pool)
    }

    fn pool_handle(&self) -> Option<Arc<ThreadPool>> {
        Some(Arc::clone(&self.pool))
    }

    fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    fn propagate(&self, state: &mut WorkState) {
        crate::trace::collect(|| {
            for groups in &self.collect_groups {
                self.run_layer(state, groups, true);
            }
        });
        crate::trace::distribute(|| {
            for groups in &self.distribute_groups {
                self.run_layer(state, groups, false);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineKind;
    use crate::error::InferenceError;
    use crate::solver::Solver;
    use fastbn_bayesnet::{datasets, generators, sampler, Evidence};
    use fastbn_jtree::JtreeOptions;

    #[test]
    fn grouping_collects_common_parents() {
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let engine = DirectJt::new(Arc::new(prepared), 2);
        for (layer_groups, layer) in engine
            .collect_groups
            .iter()
            .zip(&engine.prepared.built.schedule.collect_layers)
        {
            let total: usize = layer_groups.iter().map(|g| g.msgs.len()).sum();
            assert_eq!(total, layer.len(), "groups partition the layer");
            let mut receivers: Vec<usize> = layer_groups.iter().map(|g| g.receiver).collect();
            receivers.sort_unstable();
            receivers.dedup();
            assert_eq!(receivers.len(), layer_groups.len(), "receivers unique");
        }
    }

    #[test]
    fn direct_matches_seq_bitwise_across_thread_counts() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let mut seq_session = seq.session();
        let cases = sampler::generate_cases(&net, 20, 0.2, 5);
        for threads in [1, 2, 4] {
            let direct = Solver::from_prepared(prepared.clone())
                .engine(EngineKind::Direct)
                .threads(threads)
                .build();
            let mut session = direct.session();
            for case in &cases {
                let a = seq_session.posteriors(&case.evidence).unwrap();
                let b = session.posteriors(&case.evidence).unwrap();
                assert_eq!(a.max_abs_diff(&b), 0.0, "t={threads}");
            }
        }
    }

    #[test]
    fn direct_matches_seq_on_synthetic_network() {
        let spec = generators::WindowedDagSpec {
            nodes: 40,
            target_arcs: 55,
            max_parents: 3,
            window: 6,
            seed: 3,
            ..generators::WindowedDagSpec::new("direct-test", 40)
        };
        let net = generators::windowed_dag(&spec);
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let direct = Solver::from_prepared(prepared)
            .engine(EngineKind::Direct)
            .threads(4)
            .build();
        let mut seq_session = seq.session();
        let mut session = direct.session();
        for case in sampler::generate_cases(&net, 10, 0.2, 6) {
            let a = seq_session.posteriors(&case.evidence).unwrap();
            let b = session.posteriors(&case.evidence).unwrap();
            assert_eq!(a.max_abs_diff(&b), 0.0);
        }
    }

    #[test]
    fn impossible_evidence_propagates_error() {
        let net = datasets::asia();
        let direct = Solver::builder(&net)
            .engine(EngineKind::Direct)
            .threads(2)
            .build();
        let tub = net.var_id("Tuberculosis").unwrap();
        let either = net.var_id("TbOrCa").unwrap();
        let err = direct
            .posteriors(&Evidence::from_pairs([(tub, 0), (either, 1)]))
            .unwrap_err();
        assert_eq!(err, InferenceError::ImpossibleEvidence);
    }
}
