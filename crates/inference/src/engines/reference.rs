//! `ReferenceJt` — the UnBBayes-substitute sequential baseline.
//!
//! DESIGN.md §1: the paper's sequential comparison target is UnBBayes, a
//! Java junction-tree implementation whose per-entry cost is dominated by
//! object/dictionary overhead rather than asymptotics. This engine
//! reproduces that cost model faithfully in safe Rust:
//!
//! * every table entry is processed via a **full mixed-radix decode into a
//!   freshly allocated assignment vector** (no odometers, no stride
//!   fusion, no precompiled plans);
//! * variable positions are found by **linear scans** of the scope (like
//!   attribute-list lookups);
//! * every message allocates **fresh separator tables** instead of reusing
//!   the slab's scratch regions.
//!
//! Results are bit-identical to the optimized engines (same accumulation
//! order); only the constant factor differs — which is exactly what the
//! Table-1 "sequential speedup" column measures.
//!
//! fastbn: deny-hot-alloc

use std::sync::Arc;

use fastbn_bayesnet::{Evidence, VarId};
use fastbn_potential::Domain;

use crate::engines::InferenceEngine;
use crate::prepared::Prepared;
use crate::state::WorkState;

/// Textbook-style sequential junction-tree engine (UnBBayes analogue).
pub struct ReferenceJt {
    prepared: Arc<Prepared>,
}

impl ReferenceJt {
    /// Creates an engine over prepared structures.
    pub fn new(prepared: Arc<Prepared>) -> Self {
        ReferenceJt { prepared }
    }
}

/// Decodes `idx` into a freshly allocated assignment vector (the "object
/// per configuration" cost model).
// fastbn: allow(hot-alloc): deliberate — this engine reproduces UnBBayes'
// allocation-per-entry cost model.
fn decode_fresh(domain: &Domain, idx: usize) -> Vec<usize> {
    let mut states = vec![0usize; domain.num_vars()];
    domain.decode(idx, &mut states);
    states
}

/// Linear-scan position lookup (no binary search).
fn position_linear(domain: &Domain, var: VarId) -> usize {
    domain
        .vars()
        .iter()
        .position(|&v| v == var)
        .expect("variable in domain")
}

/// Index of the sub-assignment of `states` (over `src`) in `target`.
fn project_index(src: &Domain, states: &[usize], target: &Domain) -> usize {
    let mut idx = 0;
    for (pos, &v) in target.vars().iter().enumerate() {
        let src_pos = position_linear(src, v);
        idx += states[src_pos] * target.strides()[pos];
    }
    idx
}

// fastbn: allow(hot-alloc): deliberate — see `decode_fresh`.
fn naive_marginalize(src: &[f64], src_dom: &Domain, target: &Domain) -> Vec<f64> {
    let mut out = vec![0.0; target.size()];
    for (i, &v) in src.iter().enumerate() {
        let states = decode_fresh(src_dom, i);
        out[project_index(src_dom, &states, target)] += v;
    }
    out
}

fn naive_divide(num: &[f64], den: &[f64]) -> Vec<f64> {
    num.iter()
        .zip(den)
        .map(|(&n, &d)| if d == 0.0 { 0.0 } else { n / d })
        .collect()
}

fn naive_extend_multiply(table: &mut [f64], dom: &Domain, msg: &[f64], msg_dom: &Domain) {
    for (i, v) in table.iter_mut().enumerate() {
        let states = decode_fresh(dom, i);
        *v *= msg[project_index(dom, &states, msg_dom)];
    }
}

fn naive_reduce(table: &mut [f64], dom: &Domain, var: VarId, state: usize) {
    for (i, v) in table.iter_mut().enumerate() {
        let states = decode_fresh(dom, i);
        if states[position_linear(dom, var)] != state {
            *v = 0.0;
        }
    }
}

impl ReferenceJt {
    fn message(&self, state: &mut WorkState, sender: usize, receiver: usize, sep: usize) {
        let prepared = &*self.prepared;
        let send_dom = &prepared.clique_domains[sender];
        let recv_dom = &prepared.clique_domains[receiver];
        let sep_dom = &prepared.sep_domains[sep];
        let (s, r, sp, _fresh, _ratio) = state.message_slices(sender, receiver, sep);
        // Fresh allocations per message, like the Java baseline — the
        // slab's scratch regions stay deliberately unused here.
        let fresh = naive_marginalize(s, send_dom, sep_dom);
        let ratio = naive_divide(&fresh, sp);
        sp.copy_from_slice(&fresh);
        naive_extend_multiply(r, recv_dom, &ratio, sep_dom);
    }
}

impl InferenceEngine for ReferenceJt {
    fn name(&self) -> &'static str {
        "Reference"
    }

    fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    fn enter_evidence(&self, state: &mut WorkState, evidence: &Evidence) {
        // Per-entry decode even for reduction, as the baseline would.
        for (var, observed) in evidence.iter() {
            let home = self.prepared.home[var.index()];
            let dom = &self.prepared.clique_domains[home];
            naive_reduce(state.clique_mut(home), dom, var, observed);
        }
    }

    fn propagate(&self, state: &mut WorkState) {
        let schedule = &self.prepared.built.schedule;
        crate::trace::collect(|| {
            for layer in &schedule.collect_layers {
                for &id in layer {
                    let m = schedule.messages[id];
                    self.message(state, m.child, m.parent, m.sep);
                }
            }
        });
        crate::trace::distribute(|| {
            for layer in &schedule.distribute_layers {
                for &id in layer {
                    let m = schedule.messages[id];
                    self.message(state, m.parent, m.child, m.sep);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineKind;
    use crate::solver::Solver;
    use fastbn_bayesnet::{datasets, sampler};
    use fastbn_jtree::JtreeOptions;
    use fastbn_potential::PotentialTable;

    fn naive_marginal_of_var(values: &[f64], dom: &Domain, var: VarId, card: usize) -> Vec<f64> {
        let mut out = vec![0.0; card];
        for (i, &v) in values.iter().enumerate() {
            let states = decode_fresh(dom, i);
            out[states[position_linear(dom, var)]] += v;
        }
        out
    }

    #[test]
    fn reference_matches_seq_bitwise_on_asia() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let reference = Solver::from_prepared(prepared.clone())
            .engine(EngineKind::Reference)
            .build();
        let seq = Solver::from_prepared(prepared).build();
        let mut ref_session = reference.session();
        let mut seq_session = seq.session();
        for case in sampler::generate_cases(&net, 25, 0.25, 11) {
            let a = ref_session.posteriors(&case.evidence).unwrap();
            let b = seq_session.posteriors(&case.evidence).unwrap();
            assert_eq!(a.max_abs_diff(&b), 0.0, "case {:?}", case.evidence);
            assert_eq!(a.prob_evidence.to_bits(), b.prob_evidence.to_bits());
        }
    }

    #[test]
    fn reference_matches_seq_on_student_no_evidence() {
        let net = datasets::student();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let reference = Solver::from_prepared(prepared.clone())
            .engine(EngineKind::Reference)
            .build();
        let seq = Solver::from_prepared(prepared).build();
        let a = reference.posteriors(&Evidence::empty()).unwrap();
        let b = seq.posteriors(&Evidence::empty()).unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn naive_helpers_match_optimized_ops() {
        use fastbn_potential::ops;
        let domain = Arc::new(Domain::new(vec![
            (VarId(0), 2),
            (VarId(2), 3),
            (VarId(5), 2),
        ]));
        let values: Vec<f64> = (0..domain.size()).map(|i| (i * i % 13) as f64).collect();
        let table = PotentialTable::from_values(domain.clone(), values);
        let target = Arc::new(Domain::new(vec![(VarId(2), 3)]));

        let naive = naive_marginalize(table.values(), table.domain(), &target);
        let fast = ops::marginalize(&table, target.clone());
        assert_eq!(naive.as_slice(), fast.values());

        let msg_dom = Arc::new(Domain::new(vec![(VarId(5), 2)]));
        let msg = PotentialTable::from_values(msg_dom.clone(), vec![0.5, 2.0]);
        let mut a = table.clone();
        let mut b = table.clone();
        naive_extend_multiply(a.values_mut(), &domain, msg.values(), &msg_dom);
        ops::extend_multiply(&mut b, &msg);
        assert_eq!(a.values(), b.values());

        let mut c = table.clone();
        let mut d = table.clone();
        naive_reduce(c.values_mut(), &domain, VarId(2), 1);
        ops::reduce_evidence(&mut d, VarId(2), 1);
        assert_eq!(c.values(), d.values());

        assert_eq!(
            naive_marginal_of_var(table.values(), &domain, VarId(0), 2),
            ops::marginal_of_var(&table, VarId(0))
        );
    }
}
