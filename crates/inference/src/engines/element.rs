//! `ElementJt` — element-wise fine-grained parallelism (the Zheng '13 GPU
//! analogue).
//!
//! Zheng's GPU junction tree precomputes index-mapping tables in device
//! memory once per network, then launches one kernel per elementary table
//! operation, each thread handling one element via the mapping tables.
//! The CPU analogue (DESIGN.md §1):
//!
//! * all mapping arrays are **materialized up front** (engine
//!   construction), one per separator and direction;
//! * each table operation is one parallel region whose tasks read the
//!   mapping arrays (indirect, memory-bound access — the GPU cost shape);
//! * the dynamic schedule uses a deliberately small grain, mimicking
//!   element-granularity task issue.
//!
//! Compared to `PrimitiveJt` this trades index arithmetic for memory
//! traffic; both share the "one region per operation" overhead the hybrid
//! engine eliminates.
//!
//! fastbn: deny-hot-alloc

use std::sync::Arc;

use fastbn_bayesnet::Evidence;
use fastbn_parallel::{Schedule, ThreadPool};
use fastbn_potential::{fiber_offsets, ops_par};

use crate::engines::InferenceEngine;
use crate::prepared::Prepared;
use crate::state::WorkState;

/// Element-level task issue for the query-time kernels: tiny claimable
/// tasks, as in one-thread-per-element GPU kernels. The fine-grain claim
/// traffic is this engine's defining overhead (the paper: "large
/// parallelization overhead since the table operations are invoked
/// frequently").
const ELEMENT_GRAIN: usize = 2;

/// The one-time construction phase (materializing mapping tables) is the
/// GPU's "upload" step and is not part of query time; it uses a normal
/// coarse schedule.
const SETUP_GRAIN: usize = 4096;

/// Per-separator mapping tables, both directions.
struct SepMaps {
    /// sep-entry → base index in the child clique.
    bases_in_child: Vec<u32>,
    /// sep-entry → base index in the parent clique.
    bases_in_parent: Vec<u32>,
    /// Source offsets completing a sep assignment in the child clique.
    fibers_child: Vec<usize>,
    /// Same for the parent clique.
    fibers_parent: Vec<usize>,
    /// child-clique-entry → sep entry (extension during distribute).
    map_child: Vec<u32>,
    /// parent-clique-entry → sep entry (extension during collect).
    map_parent: Vec<u32>,
}

/// Element-wise (GPU-analogue) parallel engine.
pub struct ElementJt {
    prepared: Arc<Prepared>,
    pool: Arc<ThreadPool>,
    sched: Schedule,
    maps: Vec<SepMaps>,
}

impl ElementJt {
    /// Creates the engine; materializes every mapping array in parallel
    /// (the GPU "upload tables" phase).
    pub fn new(prepared: Arc<Prepared>, threads: usize) -> Self {
        ElementJt::with_pool(prepared, ThreadPool::shared(threads))
    }

    /// Creates the engine on an **injected** (possibly shared) pool —
    /// the multi-model path, where many engines run their regions on
    /// one worker team instead of spawning a team each. The mapping
    /// arrays are materialized on that pool.
    pub fn with_pool(prepared: Arc<Prepared>, pool: Arc<ThreadPool>) -> Self {
        let sched = Schedule::Dynamic { grain: SETUP_GRAIN };
        let mut maps = Vec::with_capacity(prepared.num_separators());
        for (s, edge) in prepared.sep_plans.iter().enumerate() {
            // Parent/child orientation is precomputed with the plans.
            let (child, parent) = (edge.child_clique, edge.parent_clique);
            let sep_dom = &prepared.sep_domains[s];
            let child_dom = &prepared.clique_domains[child];
            let parent_dom = &prepared.clique_domains[parent];
            maps.push(SepMaps {
                bases_in_child: ops_par::materialize_map_par(&pool, sched, sep_dom, child_dom),
                bases_in_parent: ops_par::materialize_map_par(&pool, sched, sep_dom, parent_dom),
                fibers_child: fiber_offsets(child_dom, sep_dom),
                fibers_parent: fiber_offsets(parent_dom, sep_dom),
                map_child: ops_par::materialize_map_par(&pool, sched, child_dom, sep_dom),
                map_parent: ops_par::materialize_map_par(&pool, sched, parent_dom, sep_dom),
            });
        }
        ElementJt {
            pool,
            sched: Schedule::Dynamic {
                grain: ELEMENT_GRAIN,
            },
            maps,
            prepared,
        }
    }

    /// One message as three mapped element-wise kernels.
    fn message(
        &self,
        state: &mut WorkState,
        sender: usize,
        receiver: usize,
        sep: usize,
        collect: bool,
    ) {
        let maps = &self.maps[sep];
        let (bases, fibers, ext_map) = if collect {
            (&maps.bases_in_child, &maps.fibers_child, &maps.map_parent)
        } else {
            (&maps.bases_in_parent, &maps.fibers_parent, &maps.map_child)
        };
        let (s, r, sp, fresh, ratio) = state.message_slices(sender, receiver, sep);
        ops_par::marginalize_mapped_slice_par(&self.pool, self.sched, s, fresh, bases, fibers);
        ops_par::sep_update_par(&self.pool, self.sched, fresh, sp, ratio);
        ops_par::extend_multiply_mapped_slice_par(&self.pool, self.sched, r, ratio, ext_map);
    }
}

impl InferenceEngine for ElementJt {
    fn name(&self) -> &'static str {
        "Element"
    }

    fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn pool(&self) -> Option<&ThreadPool> {
        Some(&self.pool)
    }

    fn pool_handle(&self) -> Option<Arc<ThreadPool>> {
        Some(Arc::clone(&self.pool))
    }

    fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    fn enter_evidence(&self, state: &mut WorkState, evidence: &Evidence) {
        // Reduction as an element-wise kernel, like the other ops.
        for (var, observed) in evidence.iter() {
            let home = self.prepared.home[var.index()];
            let dom = &self.prepared.clique_domains[home];
            let (stride, card) = (dom.stride_of(var), dom.card_of(var));
            ops_par::reduce_evidence_slice_par(
                &self.pool,
                self.sched,
                state.clique_mut(home),
                stride,
                card,
                observed,
            );
        }
    }

    fn propagate(&self, state: &mut WorkState) {
        let schedule = &self.prepared.built.schedule;
        crate::trace::collect(|| {
            for layer in &schedule.collect_layers {
                for &id in layer {
                    let m = schedule.messages[id];
                    self.message(state, m.child, m.parent, m.sep, true);
                }
            }
        });
        crate::trace::distribute(|| {
            for layer in &schedule.distribute_layers {
                for &id in layer {
                    let m = schedule.messages[id];
                    self.message(state, m.parent, m.child, m.sep, false);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineKind;
    use crate::solver::Solver;
    use fastbn_bayesnet::{datasets, generators, sampler};
    use fastbn_jtree::JtreeOptions;

    #[test]
    fn element_matches_seq_bitwise() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let mut seq_session = seq.session();
        let cases = sampler::generate_cases(&net, 15, 0.2, 13);
        for threads in [1, 2, 4] {
            let element = Solver::from_prepared(prepared.clone())
                .engine(EngineKind::Element)
                .threads(threads)
                .build();
            let mut session = element.session();
            for case in &cases {
                let a = seq_session.posteriors(&case.evidence).unwrap();
                let b = session.posteriors(&case.evidence).unwrap();
                assert_eq!(a.max_abs_diff(&b), 0.0, "t={threads}");
            }
        }
    }

    #[test]
    fn element_matches_seq_on_polytree() {
        let net = generators::polytree(35, 3, 4);
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let element = Solver::from_prepared(prepared)
            .engine(EngineKind::Element)
            .threads(2)
            .build();
        let mut seq_session = seq.session();
        let mut session = element.session();
        for case in sampler::generate_cases(&net, 8, 0.2, 5) {
            let a = seq_session.posteriors(&case.evidence).unwrap();
            let b = session.posteriors(&case.evidence).unwrap();
            assert_eq!(a.max_abs_diff(&b), 0.0);
        }
    }

    #[test]
    fn mapping_tables_have_expected_shapes() {
        let net = datasets::sprinkler();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let engine = ElementJt::new(prepared.clone(), 2);
        assert_eq!(engine.maps.len(), prepared.num_separators());
        for (s, maps) in engine.maps.iter().enumerate() {
            let sep_size = prepared.sep_domains[s].size();
            assert_eq!(maps.bases_in_child.len(), sep_size);
            assert_eq!(maps.bases_in_parent.len(), sep_size);
            // fibers × sep entries = clique entries.
            assert_eq!(maps.fibers_child.len() * sep_size, maps.map_child.len());
            assert_eq!(maps.fibers_parent.len() * sep_size, maps.map_parent.len());
        }
    }
}
