//! `PrimitiveJt` — fine-grained intra-clique parallelism only (the Xia &
//! Prasanna '07 "node-level primitives" analogue).
//!
//! Messages are processed strictly sequentially (no inter-clique
//! parallelism at all); each of the table operations inside a message —
//! marginalization, division, extension — is its own parallel region over
//! table entries. That means **three parallel-region invocations per
//! message**, so on trees with many small cliques the per-region overhead
//! dominates: exactly the pathology the paper reports for this family.
//!
//! fastbn: deny-hot-alloc

use std::sync::Arc;

use fastbn_bayesnet::Evidence;
use fastbn_parallel::{Schedule, ThreadPool};
use fastbn_potential::ops_par;

use crate::engines::InferenceEngine;
use crate::prepared::Prepared;
use crate::state::WorkState;

/// Fine-grained (intra-clique only) parallel engine.
pub struct PrimitiveJt {
    prepared: Arc<Prepared>,
    pool: Arc<ThreadPool>,
    /// OpenMP-default-style static split, as in the original primitives.
    sched: Schedule,
}

impl PrimitiveJt {
    /// Creates the engine with a private pool of `threads` workers.
    pub fn new(prepared: Arc<Prepared>, threads: usize) -> Self {
        PrimitiveJt::with_pool(prepared, ThreadPool::shared(threads))
    }

    /// Creates the engine on an **injected** (possibly shared) pool —
    /// the multi-model path, where many engines run their regions on
    /// one worker team instead of spawning a team each.
    pub fn with_pool(prepared: Arc<Prepared>, pool: Arc<ThreadPool>) -> Self {
        PrimitiveJt {
            pool,
            prepared,
            sched: Schedule::Static,
        }
    }

    /// One message: three parallel primitives, invoked back-to-back, all
    /// executing the precompiled plans on slab slices.
    fn message(&self, state: &mut WorkState, sender: usize, receiver: usize, sep: usize) {
        let send_plan = self.prepared.plan_for(sender, sep);
        let recv_plan = self.prepared.plan_for(receiver, sep);
        let (s, r, sp, fresh, ratio) = state.message_slices(sender, receiver, sep);
        ops_par::marginalize_plan_par(&self.pool, self.sched, send_plan, s, fresh);
        ops_par::sep_update_par(&self.pool, self.sched, fresh, sp, ratio);
        ops_par::extend_multiply_plan_par(&self.pool, self.sched, recv_plan, r, ratio);
    }
}

impl InferenceEngine for PrimitiveJt {
    fn name(&self) -> &'static str {
        "Primitive"
    }

    fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn pool(&self) -> Option<&ThreadPool> {
        Some(&self.pool)
    }

    fn pool_handle(&self) -> Option<Arc<ThreadPool>> {
        Some(Arc::clone(&self.pool))
    }

    fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    fn enter_evidence(&self, state: &mut WorkState, evidence: &Evidence) {
        // Evidence reduction is also a node-level primitive here.
        for (var, observed) in evidence.iter() {
            let home = self.prepared.home[var.index()];
            let dom = &self.prepared.clique_domains[home];
            let (stride, card) = (dom.stride_of(var), dom.card_of(var));
            ops_par::reduce_evidence_slice_par(
                &self.pool,
                self.sched,
                state.clique_mut(home),
                stride,
                card,
                observed,
            );
        }
    }

    fn propagate(&self, state: &mut WorkState) {
        let schedule = &self.prepared.built.schedule;
        crate::trace::collect(|| {
            for layer in &schedule.collect_layers {
                for &id in layer {
                    let m = schedule.messages[id];
                    self.message(state, m.child, m.parent, m.sep);
                }
            }
        });
        crate::trace::distribute(|| {
            for layer in &schedule.distribute_layers {
                for &id in layer {
                    let m = schedule.messages[id];
                    self.message(state, m.parent, m.child, m.sep);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineKind;
    use crate::solver::Solver;
    use fastbn_bayesnet::{datasets, generators, sampler};
    use fastbn_jtree::JtreeOptions;

    #[test]
    fn primitive_matches_seq_bitwise() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let mut seq_session = seq.session();
        let cases = sampler::generate_cases(&net, 15, 0.2, 9);
        for threads in [1, 2, 4] {
            let primitive = Solver::from_prepared(prepared.clone())
                .engine(EngineKind::Primitive)
                .threads(threads)
                .build();
            let mut session = primitive.session();
            for case in &cases {
                let a = seq_session.posteriors(&case.evidence).unwrap();
                let b = session.posteriors(&case.evidence).unwrap();
                assert_eq!(a.max_abs_diff(&b), 0.0, "t={threads}");
                assert_eq!(a.prob_evidence.to_bits(), b.prob_evidence.to_bits());
            }
        }
    }

    #[test]
    fn primitive_matches_seq_on_wider_network() {
        let net = generators::grid(3, 5, 2, 1);
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let primitive = Solver::from_prepared(prepared)
            .engine(EngineKind::Primitive)
            .threads(3)
            .build();
        let mut seq_session = seq.session();
        let mut session = primitive.session();
        for case in sampler::generate_cases(&net, 8, 0.25, 2) {
            let a = seq_session.posteriors(&case.evidence).unwrap();
            let b = session.posteriors(&case.evidence).unwrap();
            assert_eq!(a.max_abs_diff(&b), 0.0);
        }
    }
}
