//! The six inference engines and their common trait.
//!
//! Engines are **stateless strategies**: they own only query-independent
//! structure (the shared [`Prepared`], precomputed task plans, a thread
//! pool for the parallel families) and are therefore `Send + Sync`. All
//! per-query mutable state lives in an explicit
//! [`WorkState`] passed into every call, which
//! is what lets one compiled [`Solver`](crate::solver::Solver) serve any
//! number of concurrent [`Session`](crate::solver::Session)s.

pub mod direct;
pub mod element;
pub mod hybrid;
pub mod primitive;
pub mod reference;
pub mod seq;

use std::str::FromStr;
use std::sync::Arc;

use fastbn_bayesnet::Evidence;
use fastbn_parallel::ThreadPool;

use crate::prepared::Prepared;
use crate::state::WorkState;

/// A junction-tree propagation strategy over shared [`Prepared`]
/// structures.
///
/// Implementations hold no per-query state (`&self` everywhere); the
/// caller supplies a [`WorkState`] that has been `reset` and
/// evidence-absorbed. The driving sequence — reset, evidence, virtual
/// evidence, propagate, extract — lives in
/// [`Session::run`](crate::solver::Session::run), so every engine answers
/// every query type (targeted marginals, virtual evidence, joints)
/// identically.
pub trait InferenceEngine: Send + Sync {
    /// Short display name (matches the paper's column headers).
    fn name(&self) -> &'static str;

    /// Worker count used by parallel regions (1 for sequential engines).
    fn threads(&self) -> usize {
        1
    }

    /// The worker pool driving this engine's parallel regions, if any
    /// (`None` for the sequential engines). Batch execution reuses it for
    /// *outer* parallelism — independent queries dispatched across the
    /// team, with each query's own regions nesting on the same pool.
    fn pool(&self) -> Option<&ThreadPool> {
        None
    }

    /// A co-ownable handle to the engine's pool (`None` for the
    /// sequential engines). Engines hold their pool through an `Arc`
    /// precisely so it can be **shared**: hand this to
    /// [`make_engine_on`] (or [`SolverBuilder::pool`](crate::solver::SolverBuilder::pool))
    /// and another model's engine will run its regions on the same
    /// worker team.
    fn pool_handle(&self) -> Option<Arc<ThreadPool>> {
        None
    }

    /// The shared query-independent structures this engine runs over.
    fn prepared(&self) -> &Arc<Prepared>;

    /// Enters hard evidence into `state` (before propagation). The
    /// default reduces each finding's home clique sequentially; the
    /// fine-grained engines override this with their parallel reduction
    /// primitive, preserving their cost model. All overrides are
    /// bit-identical.
    fn enter_evidence(&self, state: &mut WorkState, evidence: &Evidence) {
        state.absorb_evidence(self.prepared(), evidence);
    }

    /// Runs the two Hugin passes (collect, distribute) on an
    /// evidence-absorbed `state`. After this, every clique holds its
    /// unnormalized posterior.
    fn propagate(&self, state: &mut WorkState);
}

/// Engine selector for harnesses and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// UnBBayes-substitute textbook baseline.
    Reference,
    /// Fast-BNI-seq.
    Seq,
    /// Kozlov & Singh-style coarse parallelism.
    Direct,
    /// Xia & Prasanna-style node-level primitives.
    Primitive,
    /// Zheng-style element-wise (GPU-analogue) parallelism.
    Element,
    /// Fast-BNI-par hybrid.
    Hybrid,
}

impl EngineKind {
    /// All engines, in the paper's Table 1 column order.
    pub fn all() -> [EngineKind; 6] {
        [
            EngineKind::Reference,
            EngineKind::Seq,
            EngineKind::Direct,
            EngineKind::Primitive,
            EngineKind::Element,
            EngineKind::Hybrid,
        ]
    }

    /// The parallel engines compared in Table 1's right half.
    pub fn parallel() -> [EngineKind; 4] {
        [
            EngineKind::Direct,
            EngineKind::Primitive,
            EngineKind::Element,
            EngineKind::Hybrid,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Reference => "Reference",
            EngineKind::Seq => "Fast-BNI-seq",
            EngineKind::Direct => "Direct",
            EngineKind::Primitive => "Primitive",
            EngineKind::Element => "Element",
            EngineKind::Hybrid => "Fast-BNI-par",
        }
    }

    /// Canonical lowercase identifier, the inverse of [`FromStr`]'s
    /// preferred spelling (useful for CLI flags and file names).
    pub fn id(&self) -> &'static str {
        match self {
            EngineKind::Reference => "reference",
            EngineKind::Seq => "seq",
            EngineKind::Direct => "direct",
            EngineKind::Primitive => "primitive",
            EngineKind::Element => "element",
            EngineKind::Hybrid => "hybrid",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad`, not `write_str`: width/alignment flags ({:<14}) must
        // work, the bench bins rely on them for column layout.
        f.pad(self.name())
    }
}

/// Error from parsing an [`EngineKind`]; lists the accepted names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineKindError {
    input: String,
}

impl std::fmt::Display for ParseEngineKindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine {:?}; expected one of: reference, seq, direct, primitive, \
             element, hybrid (display names like \"Fast-BNI-par\" also accepted)",
            self.input
        )
    }
}

impl std::error::Error for ParseEngineKindError {}

impl FromStr for EngineKind {
    type Err = ParseEngineKindError;

    /// Parses canonical ids (`seq`, `hybrid`, …) and display names
    /// (`Fast-BNI-par`, …), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        for kind in EngineKind::all() {
            if lower == kind.id() || lower == kind.name().to_ascii_lowercase() {
                return Ok(kind);
            }
        }
        Err(ParseEngineKindError {
            input: s.to_string(),
        })
    }
}

/// Instantiates a stateless engine of the requested kind. `threads` is
/// ignored by the sequential engines; parallel engines spawn a private
/// pool of that width. Most callers want
/// [`Solver::builder`](crate::solver::Solver::builder) instead, which
/// pairs the engine with a scratch pool.
pub fn make_engine(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    threads: usize,
) -> Box<dyn InferenceEngine> {
    match kind {
        EngineKind::Reference | EngineKind::Seq => make_sequential(kind, prepared),
        _ => make_engine_on(kind, prepared, ThreadPool::shared(threads)),
    }
}

/// Instantiates a stateless engine of the requested kind on an
/// **injected** worker pool — the multi-model path: every engine handed
/// the same `Arc` runs its parallel regions on one shared team instead
/// of spawning `threads` workers each. Task plans (and therefore chunk
/// layouts, and therefore bits) are sized to `pool.threads()`, exactly
/// as a private pool of the same width would size them. The sequential
/// kinds ignore the pool.
pub fn make_engine_on(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    pool: Arc<ThreadPool>,
) -> Box<dyn InferenceEngine> {
    match kind {
        EngineKind::Reference | EngineKind::Seq => make_sequential(kind, prepared),
        EngineKind::Direct => Box::new(direct::DirectJt::with_pool(prepared, pool)),
        EngineKind::Primitive => Box::new(primitive::PrimitiveJt::with_pool(prepared, pool)),
        EngineKind::Element => Box::new(element::ElementJt::with_pool(prepared, pool)),
        EngineKind::Hybrid => Box::new(hybrid::HybridJt::with_pool(prepared, pool)),
    }
}

/// The pool-less kinds, shared by both `make_engine` flavors.
fn make_sequential(kind: EngineKind, prepared: Arc<Prepared>) -> Box<dyn InferenceEngine> {
    match kind {
        EngineKind::Reference => Box::new(reference::ReferenceJt::new(prepared)),
        EngineKind::Seq => Box::new(seq::SeqJt::new(prepared)),
        _ => unreachable!("caller dispatches only sequential kinds here"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_names_are_stable() {
        assert_eq!(EngineKind::Hybrid.name(), "Fast-BNI-par");
        assert_eq!(EngineKind::all().len(), 6);
        assert_eq!(EngineKind::parallel().len(), 4);
    }

    #[test]
    fn engine_kind_display_matches_name() {
        for kind in EngineKind::all() {
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn engine_kind_round_trips_through_id_and_name() {
        for kind in EngineKind::all() {
            assert_eq!(kind.id().parse::<EngineKind>().unwrap(), kind);
            assert_eq!(kind.name().parse::<EngineKind>().unwrap(), kind);
            assert_eq!(
                kind.name().to_uppercase().parse::<EngineKind>().unwrap(),
                kind
            );
        }
    }

    #[test]
    fn engine_kind_parse_rejects_unknown() {
        let err = "turbo".parse::<EngineKind>().unwrap_err();
        assert!(err.to_string().contains("turbo"));
        assert!(err.to_string().contains("hybrid"));
    }
}
