//! The six inference engines and their common trait.

pub mod direct;
pub mod element;
pub mod hybrid;
pub mod primitive;
pub mod reference;
pub mod seq;

use std::sync::Arc;

use fastbn_bayesnet::Evidence;
use fastbn_potential::PotentialTable;

use crate::error::InferenceError;
use crate::posterior::Posteriors;
use crate::prepared::Prepared;

/// A junction-tree inference engine: enter evidence, get every variable's
/// posterior marginal.
///
/// Engines keep mutable per-query scratch internally (`&mut self`), reset
/// it at the start of each query, and are cheap to call repeatedly — the
/// paper's workload runs 2,000 queries per network on one engine instance.
pub trait InferenceEngine {
    /// Short display name (matches the paper's column headers).
    fn name(&self) -> &'static str;

    /// Worker count used by parallel regions (1 for sequential engines).
    fn threads(&self) -> usize {
        1
    }

    /// Runs one full query: reset, absorb evidence, collect, distribute,
    /// extract posteriors.
    fn query(&mut self, evidence: &Evidence) -> Result<Posteriors, InferenceError>;
}

/// Engine selector for harnesses and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// UnBBayes-substitute textbook baseline.
    Reference,
    /// Fast-BNI-seq.
    Seq,
    /// Kozlov & Singh-style coarse parallelism.
    Direct,
    /// Xia & Prasanna-style node-level primitives.
    Primitive,
    /// Zheng-style element-wise (GPU-analogue) parallelism.
    Element,
    /// Fast-BNI-par hybrid.
    Hybrid,
}

impl EngineKind {
    /// All engines, in the paper's Table 1 column order.
    pub fn all() -> [EngineKind; 6] {
        [
            EngineKind::Reference,
            EngineKind::Seq,
            EngineKind::Direct,
            EngineKind::Primitive,
            EngineKind::Element,
            EngineKind::Hybrid,
        ]
    }

    /// The parallel engines compared in Table 1's right half.
    pub fn parallel() -> [EngineKind; 4] {
        [
            EngineKind::Direct,
            EngineKind::Primitive,
            EngineKind::Element,
            EngineKind::Hybrid,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Reference => "Reference",
            EngineKind::Seq => "Fast-BNI-seq",
            EngineKind::Direct => "Direct",
            EngineKind::Primitive => "Primitive",
            EngineKind::Element => "Element",
            EngineKind::Hybrid => "Fast-BNI-par",
        }
    }
}

/// Builds an engine of the requested kind. `threads` is ignored by the
/// sequential engines.
pub fn build_engine(
    kind: EngineKind,
    prepared: Arc<Prepared>,
    threads: usize,
) -> Box<dyn InferenceEngine + Send> {
    match kind {
        EngineKind::Reference => Box::new(reference::ReferenceJt::new(prepared)),
        EngineKind::Seq => Box::new(seq::SeqJt::new(prepared)),
        EngineKind::Direct => Box::new(direct::DirectJt::new(prepared, threads)),
        EngineKind::Primitive => Box::new(primitive::PrimitiveJt::new(prepared, threads)),
        EngineKind::Element => Box::new(element::ElementJt::new(prepared, threads)),
        EngineKind::Hybrid => Box::new(hybrid::HybridJt::new(prepared, threads)),
    }
}

/// Two disjoint mutable borrows out of one slice (standard split trick);
/// panics if `a == b`.
pub(crate) fn two_mut<T>(slice: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "indices must differ");
    if a < b {
        let (lo, hi) = slice.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Lifetime-bound shared view of a table slice for the parallel engines.
///
/// The layer schedule guarantees that, within one parallel region, every
/// table index is either written by exactly one task or only ever read
/// (see the safety comments at each use site); this wrapper carries the
/// pointers across the thread-pool boundary.
pub(crate) struct SharedTables<'a> {
    ptr: *mut PotentialTable,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [PotentialTable]>,
}

unsafe impl Send for SharedTables<'_> {}
unsafe impl Sync for SharedTables<'_> {}

impl<'a> SharedTables<'a> {
    pub(crate) fn new(tables: &'a mut [PotentialTable]) -> Self {
        SharedTables {
            ptr: tables.as_mut_ptr(),
            len: tables.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    /// `i` must be in bounds, and no other thread may hold a mutable
    /// reference to table `i` for the duration of this borrow.
    #[inline]
    pub(crate) unsafe fn get(&self, i: usize) -> &PotentialTable {
        debug_assert!(i < self.len);
        &*self.ptr.add(i)
    }

    /// # Safety
    /// `i` must be in bounds, and no other thread may hold *any* reference
    /// to table `i` for the duration of this borrow.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut PotentialTable {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_mut_returns_disjoint_references() {
        let mut v = vec![1, 2, 3, 4];
        let (a, b) = two_mut(&mut v, 3, 1);
        *a += 10;
        *b += 20;
        assert_eq!(v, vec![1, 22, 3, 14]);
    }

    #[test]
    #[should_panic(expected = "indices must differ")]
    fn two_mut_rejects_equal_indices() {
        let mut v = vec![1, 2];
        let _ = two_mut(&mut v, 1, 1);
    }

    #[test]
    fn engine_kind_names_are_stable() {
        assert_eq!(EngineKind::Hybrid.name(), "Fast-BNI-par");
        assert_eq!(EngineKind::all().len(), 6);
        assert_eq!(EngineKind::parallel().len(), 4);
    }
}
