//! `HybridJt` — **Fast-BNI-par**: hybrid inter-/intra-clique parallelism
//! with flattened per-layer task lists (the paper's §2 contribution).
//!
//! "At the beginning of each layer, all the potential table entries
//! corresponding to this layer are packed to constitute one of the
//! parallel tasks. The tasks are then distributed to the parallel threads
//! to perform concurrently."
//!
//! Concretely, each layer of each pass runs exactly **two parallel
//! regions**, independent of how many messages the layer contains:
//!
//! 1. **Separator phase** — the separator entries of *every* message in
//!    the layer are packed into one flat task list; each task computes,
//!    for its entry range, the fresh marginal (fiber sum over the sender
//!    clique) fused with the ratio `fresh / old` (marginalization +
//!    division in a single pass).
//! 2. **Receiver phase** — the receiver-clique entries of the layer are
//!    packed likewise; each task multiplies every incoming ratio into its
//!    entry range (extension), handling multi-child parents without
//!    write conflicts because tasks partition the *receiver* entries.
//!
//! This yields the paper's three advantages: (i) tasks are sized by entry
//! counts, so skewed clique sizes balance across threads; (ii) two regions
//! per layer instead of three per message; (iii) the same code path is
//! efficient on few-large-clique and many-small-clique trees.
//!
//! All index mappings live in the [`Prepared`]'s precompiled
//! [`KernelPlan`](fastbn_potential::KernelPlan)s (one per clique/separator
//! incidence) and the task lists are precomputed at engine construction;
//! the engine itself is stateless, so one instance serves any number of
//! concurrent sessions, each supplying its own `WorkState` slab.
//!
//! fastbn: deny-hot-alloc

use std::sync::Arc;

use fastbn_jtree::Message;
use fastbn_parallel::{Schedule, ThreadPool};
use fastbn_potential::ops::safe_div;

use crate::engines::InferenceEngine;
use crate::prepared::Prepared;
use crate::state::WorkState;

/// Flat chunks per thread and phase; 4 gives the dynamic schedule room to
/// balance without inflating claim traffic.
const CHUNKS_PER_THREAD: usize = 4;

/// One separator-phase chunk: entries `[lo, hi)` of `msg`'s separator.
struct SepTask {
    msg: usize,
    lo: usize,
    hi: usize,
}

/// Messages sharing a receiver in one layer.
struct RecvGroup {
    receiver: usize,
    /// Message ids ascending — multiplication order matches `SeqJt`.
    msgs: Vec<usize>,
}

/// One receiver-phase chunk: entries `[lo, hi)` of `group`'s receiver.
struct RecvTask {
    group: usize,
    lo: usize,
    hi: usize,
}

/// The flattened task lists of one layer of one pass.
struct LayerPlan {
    /// Message ids of this layer (kept for tests and diagnostics; the hot
    /// path only walks the task lists).
    #[allow(dead_code)]
    msgs: Vec<usize>,
    sep_tasks: Vec<SepTask>,
    recv_groups: Vec<RecvGroup>,
    recv_tasks: Vec<RecvTask>,
}

/// Fast-BNI-par: the hybrid flattened engine.
pub struct HybridJt {
    prepared: Arc<Prepared>,
    pool: Arc<ThreadPool>,
    collect_plans: Vec<LayerPlan>,
    distribute_plans: Vec<LayerPlan>,
}

impl HybridJt {
    /// Builds the engine, precomputing all task lists for a pool of
    /// `threads` workers.
    pub fn new(prepared: Arc<Prepared>, threads: usize) -> Self {
        HybridJt::with_pool(prepared, ThreadPool::shared(threads))
    }

    /// Builds the engine on an **injected** (possibly shared) pool — the
    /// multi-model path, where many engines run their regions on one
    /// worker team instead of spawning a team each. Task plans are sized
    /// to the pool's width.
    pub fn with_pool(prepared: Arc<Prepared>, pool: Arc<ThreadPool>) -> Self {
        let threads = pool.threads();
        let schedule = &prepared.built.schedule;
        let collect_plans = schedule
            .collect_layers
            .iter()
            .map(|layer| build_layer_plan(&prepared, layer, true, threads))
            .collect();
        let distribute_plans = schedule
            .distribute_layers
            .iter()
            .map(|layer| build_layer_plan(&prepared, layer, false, threads))
            .collect();

        HybridJt {
            pool,
            collect_plans,
            distribute_plans,
            prepared,
        }
    }

    /// Runs one layer: separator phase (fused marginalize + ratio +
    /// in-place separator update), then receiver phase (extension).
    fn run_layer(&self, raw: crate::state::SlabRaw, plan: &LayerPlan, collect: bool) {
        let prepared = &*self.prepared;
        let messages = &prepared.built.schedule.messages;
        let layout = &*prepared.layout;

        // ---- Phase 1: flat over sep entries — fresh marginal, ratio
        // against the old value, separator updated in place (each entry is
        // owned by exactly one task, so read-then-overwrite is safe).
        raw.begin_phase();
        self.pool.parallel_for(
            0..plan.sep_tasks.len(),
            Schedule::Dynamic { grain: 1 },
            |t| {
                let task = &plan.sep_tasks[t];
                let m = messages[task.msg];
                let edge = &prepared.sep_plans[m.sep];
                let (sender, sender_plan) = if collect {
                    (edge.child_clique, &edge.child)
                } else {
                    (edge.parent_clique, &edge.parent)
                };
                // SAFETY: sender cliques are not written during this phase
                // (only separators and ratios are); each sep entry range
                // `[lo, hi)` belongs to exactly one task, and sep/ratio
                // regions are disjoint slab ranges.
                unsafe {
                    let sender_values =
                        raw.slice(layout.clique_off[sender], layout.clique_len[sender]);
                    let sep_chunk =
                        raw.slice_mut(layout.sep_off[m.sep] + task.lo, task.hi - task.lo);
                    let ratio_chunk =
                        raw.slice_mut(layout.ratio_off[m.sep] + task.lo, task.hi - task.lo);
                    sender_plan.marginalize_fold(sender_values, task.lo, task.hi, |i, acc| {
                        let k = i - task.lo;
                        ratio_chunk[k] = safe_div(acc, sep_chunk[k]);
                        sep_chunk[k] = acc;
                    });
                }
            },
        );

        // ---- Phase 2: extension over flat receiver entries. The pool
        // barrier between the phases is what makes re-claiming phase-1
        // regions sound, so the tracker generation resets here too.
        raw.begin_phase();
        self.pool.parallel_for(
            0..plan.recv_tasks.len(),
            Schedule::Dynamic { grain: 1 },
            |t| {
                let task = &plan.recv_tasks[t];
                let group = &plan.recv_groups[task.group];
                // SAFETY: receiver entry ranges partition each receiver
                // exactly once across tasks; ratios are read-only; sender
                // cliques are untouched this phase.
                unsafe {
                    let recv_chunk = raw.slice_mut(
                        layout.clique_off[group.receiver] + task.lo,
                        task.hi - task.lo,
                    );
                    for &id in &group.msgs {
                        let m = messages[id];
                        let edge = &prepared.sep_plans[m.sep];
                        // The *receiver*-side plan maps its entries onto
                        // the separator.
                        let recv_plan = if collect { &edge.parent } else { &edge.child };
                        let ratio_values =
                            raw.slice(layout.ratio_off[m.sep], layout.sep_len[m.sep]);
                        recv_plan.extend_multiply_range(recv_chunk, ratio_values, task.lo);
                    }
                }
            },
        );
    }
}

/// Builds the flattened task lists for one layer.
// fastbn: allow(hot-alloc): plan construction, runs once per engine build.
fn build_layer_plan(
    prepared: &Prepared,
    layer: &[usize],
    collect: bool,
    threads: usize,
) -> LayerPlan {
    let messages: &[Message] = &prepared.built.schedule.messages;
    let threads = threads.max(1);

    // Separator tasks: pack all sep entries of the layer, cut by grain.
    let total_sep: usize = layer
        .iter()
        .map(|&id| prepared.sep_domains[messages[id].sep].size())
        .sum();
    let sep_grain = (total_sep / (threads * CHUNKS_PER_THREAD)).max(1);
    let mut sep_tasks = Vec::new();
    for &id in layer {
        let size = prepared.sep_domains[messages[id].sep].size();
        let mut lo = 0;
        while lo < size {
            let hi = (lo + sep_grain).min(size);
            sep_tasks.push(SepTask { msg: id, lo, hi });
            lo = hi;
        }
    }

    // Receiver groups: by parent in collect (several children may share
    // one), one per message in distribute.
    let mut recv_groups: Vec<RecvGroup> = Vec::new();
    for &id in layer {
        let receiver = if collect {
            messages[id].parent
        } else {
            messages[id].child
        };
        match recv_groups.iter_mut().find(|g| g.receiver == receiver) {
            Some(g) => g.msgs.push(id),
            None => recv_groups.push(RecvGroup {
                receiver,
                msgs: vec![id],
            }),
        }
    }
    for g in &mut recv_groups {
        g.msgs.sort_unstable();
    }

    // Receiver tasks: weight = entries × incoming messages.
    let total_weight: usize = recv_groups
        .iter()
        .map(|g| prepared.clique_domains[g.receiver].size() * g.msgs.len())
        .sum();
    let weight_grain = (total_weight / (threads * CHUNKS_PER_THREAD)).max(1);
    let mut recv_tasks = Vec::new();
    for (gi, g) in recv_groups.iter().enumerate() {
        let size = prepared.clique_domains[g.receiver].size();
        let chunk = (weight_grain / g.msgs.len()).max(1);
        let mut lo = 0;
        while lo < size {
            let hi = (lo + chunk).min(size);
            recv_tasks.push(RecvTask { group: gi, lo, hi });
            lo = hi;
        }
    }

    LayerPlan {
        msgs: layer.to_vec(),
        sep_tasks,
        recv_groups,
        recv_tasks,
    }
}

impl InferenceEngine for HybridJt {
    fn name(&self) -> &'static str {
        "Fast-BNI-par"
    }

    fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn pool(&self) -> Option<&ThreadPool> {
        Some(&self.pool)
    }

    fn pool_handle(&self) -> Option<Arc<ThreadPool>> {
        Some(Arc::clone(&self.pool))
    }

    fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    fn propagate(&self, state: &mut WorkState) {
        let raw = state.raw();
        crate::trace::collect(|| {
            for plan in &self.collect_plans {
                self.run_layer(raw, plan, true);
            }
        });
        crate::trace::distribute(|| {
            for plan in &self.distribute_plans {
                self.run_layer(raw, plan, false);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineKind;
    use crate::solver::Solver;
    use fastbn_bayesnet::{datasets, generators, sampler, Evidence};
    use fastbn_jtree::JtreeOptions;

    #[test]
    fn task_lists_cover_every_entry_exactly_once() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let engine = HybridJt::new(prepared.clone(), 3);
        for plan in engine.collect_plans.iter().chain(&engine.distribute_plans) {
            // Sep tasks partition each message's separator range.
            for &id in &plan.msgs {
                let m = prepared.built.schedule.messages[id];
                let size = prepared.sep_domains[m.sep].size();
                let mut covered: Vec<(usize, usize)> = plan
                    .sep_tasks
                    .iter()
                    .filter(|t| t.msg == id)
                    .map(|t| (t.lo, t.hi))
                    .collect();
                covered.sort_unstable();
                assert_eq!(covered.first().map(|c| c.0), Some(0));
                assert_eq!(covered.last().map(|c| c.1), Some(size));
                assert!(covered.windows(2).all(|w| w[0].1 == w[1].0));
            }
            // Recv tasks partition each group's receiver range.
            for (gi, g) in plan.recv_groups.iter().enumerate() {
                let size = prepared.clique_domains[g.receiver].size();
                let mut covered: Vec<(usize, usize)> = plan
                    .recv_tasks
                    .iter()
                    .filter(|t| t.group == gi)
                    .map(|t| (t.lo, t.hi))
                    .collect();
                covered.sort_unstable();
                assert_eq!(covered.first().map(|c| c.0), Some(0));
                assert_eq!(covered.last().map(|c| c.1), Some(size));
                assert!(covered.windows(2).all(|w| w[0].1 == w[1].0));
            }
        }
    }

    #[test]
    fn hybrid_matches_seq_bitwise_across_thread_counts() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let mut seq_session = seq.session();
        let cases = sampler::generate_cases(&net, 20, 0.2, 17);
        for threads in [1, 2, 3, 4] {
            let hybrid = Solver::from_prepared(prepared.clone())
                .engine(EngineKind::Hybrid)
                .threads(threads)
                .build();
            let mut session = hybrid.session();
            for case in &cases {
                let a = seq_session.posteriors(&case.evidence).unwrap();
                let b = session.posteriors(&case.evidence).unwrap();
                assert_eq!(a.max_abs_diff(&b), 0.0, "t={threads}");
                assert_eq!(a.prob_evidence.to_bits(), b.prob_evidence.to_bits());
            }
        }
    }

    #[test]
    fn hybrid_matches_seq_on_multi_child_parents() {
        // Naive-Bayes trees have one parent clique with many children —
        // the multi-ratio receiver-phase case.
        let net = generators::naive_bayes(12, 3, 2, 8);
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let hybrid = Solver::from_prepared(prepared)
            .engine(EngineKind::Hybrid)
            .threads(4)
            .build();
        let mut seq_session = seq.session();
        let mut session = hybrid.session();
        for case in sampler::generate_cases(&net, 10, 0.3, 21) {
            let a = seq_session.posteriors(&case.evidence).unwrap();
            let b = session.posteriors(&case.evidence).unwrap();
            assert_eq!(a.max_abs_diff(&b), 0.0);
        }
    }

    #[test]
    fn hybrid_matches_seq_on_random_windowed_dags() {
        for seed in 0..4 {
            let spec = generators::WindowedDagSpec {
                nodes: 45,
                target_arcs: 60,
                max_parents: 3,
                window: 6,
                seed,
                ..generators::WindowedDagSpec::new("hybrid-test", 45)
            };
            let net = generators::windowed_dag(&spec);
            let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
            let seq = Solver::from_prepared(prepared.clone()).build();
            let hybrid = Solver::from_prepared(prepared)
                .engine(EngineKind::Hybrid)
                .threads(2)
                .build();
            let mut seq_session = seq.session();
            let mut session = hybrid.session();
            for case in sampler::generate_cases(&net, 6, 0.2, seed) {
                let a = seq_session.posteriors(&case.evidence).unwrap();
                let b = session.posteriors(&case.evidence).unwrap();
                assert_eq!(a.max_abs_diff(&b), 0.0, "seed {seed}");
            }
        }
    }

    #[test]
    fn hybrid_handles_disconnected_networks() {
        // Forest: schedule merges components into shared layers.
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a0 = b.add_var("a0", &["t", "f"]);
        let a1 = b.add_var("a1", &["t", "f"]);
        let c0 = b.add_var("c0", &["t", "f"]);
        b.set_cpt(a0, vec![], vec![0.4, 0.6]).unwrap();
        b.set_cpt(a1, vec![a0], vec![0.9, 0.1, 0.3, 0.7]).unwrap();
        b.set_cpt(c0, vec![], vec![0.2, 0.8]).unwrap();
        let net = b.build().unwrap();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let hybrid = Solver::from_prepared(prepared)
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build();
        let ev = Evidence::from_pairs([(a1, 0)]);
        let x = seq.posteriors(&ev).unwrap();
        let y = hybrid.posteriors(&ev).unwrap();
        assert_eq!(x.max_abs_diff(&y), 0.0);
        assert!(
            (x.marginal(c0)[0] - 0.2).abs() < 1e-12,
            "other component untouched"
        );
    }
}
