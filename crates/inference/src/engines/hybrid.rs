//! `HybridJt` — **Fast-BNI-par**: hybrid inter-/intra-clique parallelism
//! with flattened per-layer task lists (the paper's §2 contribution).
//!
//! "At the beginning of each layer, all the potential table entries
//! corresponding to this layer are packed to constitute one of the
//! parallel tasks. The tasks are then distributed to the parallel threads
//! to perform concurrently."
//!
//! Concretely, each layer of each pass runs exactly **two parallel
//! regions**, independent of how many messages the layer contains:
//!
//! 1. **Separator phase** — the separator entries of *every* message in
//!    the layer are packed into one flat task list; each task computes,
//!    for its entry range, the fresh marginal (fiber sum over the sender
//!    clique) fused with the ratio `fresh / old` (marginalization +
//!    division in a single pass).
//! 2. **Receiver phase** — the receiver-clique entries of the layer are
//!    packed likewise; each task multiplies every incoming ratio into its
//!    entry range (extension), handling multi-child parents without
//!    write conflicts because tasks partition the *receiver* entries.
//!
//! This yields the paper's three advantages: (i) tasks are sized by entry
//! counts, so skewed clique sizes balance across threads; (ii) two regions
//! per layer instead of three per message; (iii) the same code path is
//! efficient on few-large-clique and many-small-clique trees.
//!
//! All index mappings (fiber offsets, base strides, extension strides) and
//! the task lists themselves are precomputed at engine construction; the
//! engine itself is stateless, so one instance serves any number of
//! concurrent sessions, each supplying its own `WorkState`.

use std::sync::Arc;

use fastbn_jtree::Message;
use fastbn_parallel::{Schedule, ThreadPool};
use fastbn_potential::{embedding_strides, fiber_offsets, ops::safe_div, Odometer, PotentialTable};

use crate::engines::InferenceEngine;
use crate::prepared::Prepared;
use crate::state::WorkState;

/// Flat chunks per thread and phase; 4 gives the dynamic schedule room to
/// balance without inflating claim traffic.
const CHUNKS_PER_THREAD: usize = 4;

/// Precomputed index-mapping data for one separator.
struct SepInfo {
    /// Offsets completing a separator assignment inside the child clique.
    fibers_child: Vec<usize>,
    /// Same, inside the parent clique.
    fibers_parent: Vec<usize>,
    /// Strides of separator variables inside the child clique (odometer
    /// seed for fiber bases when the child is the sender).
    base_strides_child: Vec<usize>,
    /// Same for the parent clique.
    base_strides_parent: Vec<usize>,
    /// Strides mapping a *parent-clique* enumeration onto separator
    /// indices (extension during collect).
    ext_strides_parent: Vec<usize>,
    /// Same for a child-clique enumeration (extension during distribute).
    ext_strides_child: Vec<usize>,
}

/// One separator-phase chunk: entries `[lo, hi)` of `msg`'s separator.
struct SepTask {
    msg: usize,
    lo: usize,
    hi: usize,
}

/// Messages sharing a receiver in one layer.
struct RecvGroup {
    receiver: usize,
    /// Message ids ascending — multiplication order matches `SeqJt`.
    msgs: Vec<usize>,
}

/// One receiver-phase chunk: entries `[lo, hi)` of `group`'s receiver.
struct RecvTask {
    group: usize,
    lo: usize,
    hi: usize,
}

/// The flattened task lists of one layer of one pass.
struct LayerPlan {
    /// Message ids of this layer (kept for tests and diagnostics; the hot
    /// path only walks the task lists).
    #[allow(dead_code)]
    msgs: Vec<usize>,
    sep_tasks: Vec<SepTask>,
    recv_groups: Vec<RecvGroup>,
    recv_tasks: Vec<RecvTask>,
}

/// Raw value-pointer view of a table slice, so flat tasks can write
/// disjoint entry ranges of shared tables without materializing aliasing
/// `&mut` references. Soundness is argued at the use sites (the layer
/// schedule guarantees range-disjoint writes and read/write separation).
struct RawTables {
    ptrs: Vec<*mut f64>,
    lens: Vec<usize>,
}

unsafe impl Send for RawTables {}
unsafe impl Sync for RawTables {}

impl RawTables {
    fn new(tables: &mut [PotentialTable]) -> Self {
        RawTables {
            ptrs: tables
                .iter_mut()
                .map(|t| t.values_mut().as_mut_ptr())
                .collect(),
            lens: tables.iter().map(PotentialTable::len).collect(),
        }
    }

    /// # Safety
    /// `[lo, hi)` must be in bounds of table `i` and disjoint from every
    /// range concurrently borrowed from table `i`.
    #[inline]
    #[allow(clippy::mut_from_ref)] // exclusivity established by the task plan
    unsafe fn slice_mut(&self, i: usize, lo: usize, hi: usize) -> &mut [f64] {
        debug_assert!(hi <= self.lens[i] && lo <= hi);
        std::slice::from_raw_parts_mut(self.ptrs[i].add(lo), hi - lo)
    }

    /// # Safety
    /// No thread may concurrently write any part of table `i`.
    #[inline]
    unsafe fn read(&self, i: usize) -> &[f64] {
        std::slice::from_raw_parts(self.ptrs[i], self.lens[i])
    }
}

/// The three pointer views of one query's `WorkState`, rebuilt per
/// `propagate` call (three small `Vec`s — negligible against even one
/// layer's table work).
struct RawState {
    cliques: RawTables,
    seps: RawTables,
    ratio: RawTables,
}

impl RawState {
    fn new(state: &mut WorkState) -> Self {
        RawState {
            cliques: RawTables::new(&mut state.cliques),
            seps: RawTables::new(&mut state.seps),
            ratio: RawTables::new(&mut state.ratio),
        }
    }
}

/// Fast-BNI-par: the hybrid flattened engine.
pub struct HybridJt {
    prepared: Arc<Prepared>,
    pool: Arc<ThreadPool>,
    sep_info: Vec<SepInfo>,
    collect_plans: Vec<LayerPlan>,
    distribute_plans: Vec<LayerPlan>,
}

impl HybridJt {
    /// Builds the engine, precomputing all mappings and task lists for a
    /// pool of `threads` workers.
    pub fn new(prepared: Arc<Prepared>, threads: usize) -> Self {
        HybridJt::with_pool(prepared, ThreadPool::shared(threads))
    }

    /// Builds the engine on an **injected** (possibly shared) pool — the
    /// multi-model path, where many engines run their regions on one
    /// worker team instead of spawning a team each. Task plans are sized
    /// to the pool's width.
    pub fn with_pool(prepared: Arc<Prepared>, pool: Arc<ThreadPool>) -> Self {
        let threads = pool.threads();
        let rooted = &prepared.built.rooted;
        let sep_info = prepared
            .built
            .tree
            .separators
            .iter()
            .enumerate()
            .map(|(s, sep)| {
                let (child, parent) = if rooted.depth[sep.a] > rooted.depth[sep.b] {
                    (sep.a, sep.b)
                } else {
                    (sep.b, sep.a)
                };
                let sep_dom = &prepared.sep_domains[s];
                let child_dom = &prepared.clique_domains[child];
                let parent_dom = &prepared.clique_domains[parent];
                SepInfo {
                    fibers_child: fiber_offsets(child_dom, sep_dom),
                    fibers_parent: fiber_offsets(parent_dom, sep_dom),
                    base_strides_child: embedding_strides(sep_dom, child_dom),
                    base_strides_parent: embedding_strides(sep_dom, parent_dom),
                    ext_strides_parent: embedding_strides(parent_dom, sep_dom),
                    ext_strides_child: embedding_strides(child_dom, sep_dom),
                }
            })
            .collect();

        let schedule = &prepared.built.schedule;
        let collect_plans = schedule
            .collect_layers
            .iter()
            .map(|layer| build_layer_plan(&prepared, layer, true, threads))
            .collect();
        let distribute_plans = schedule
            .distribute_layers
            .iter()
            .map(|layer| build_layer_plan(&prepared, layer, false, threads))
            .collect();

        HybridJt {
            pool,
            sep_info,
            collect_plans,
            distribute_plans,
            prepared,
        }
    }

    /// Runs one layer: separator phase (fused marginalize + ratio +
    /// in-place separator update), then receiver phase (extension).
    fn run_layer(&self, raw: &RawState, plan: &LayerPlan, collect: bool) {
        let messages = &self.prepared.built.schedule.messages;
        let sep_domains = &self.prepared.sep_domains;
        let clique_domains = &self.prepared.clique_domains;
        let sep_info = &self.sep_info;
        let (cliques, seps, ratio) = (&raw.cliques, &raw.seps, &raw.ratio);

        // ---- Phase 1: flat over sep entries — fresh marginal, ratio
        // against the old value, separator updated in place (each entry is
        // owned by exactly one task, so read-then-overwrite is safe).
        self.pool.parallel_for(
            0..plan.sep_tasks.len(),
            Schedule::Dynamic { grain: 1 },
            |t| {
                let task = &plan.sep_tasks[t];
                let m = messages[task.msg];
                let info = &sep_info[m.sep];
                let (sender, fibers, base_strides) = if collect {
                    (m.child, &info.fibers_child, &info.base_strides_child)
                } else {
                    (m.parent, &info.fibers_parent, &info.base_strides_parent)
                };
                // SAFETY: sender cliques are not written during this phase
                // (only separators and ratios are); each sep entry range
                // `[lo, hi)` belongs to exactly one task.
                unsafe {
                    let sender_values = cliques.read(sender);
                    let sep_chunk = seps.slice_mut(m.sep, task.lo, task.hi);
                    let ratio_chunk = ratio.slice_mut(m.sep, task.lo, task.hi);
                    let mut odo = Odometer::new(sep_domains[m.sep].cards(), base_strides);
                    odo.seek(task.lo);
                    for (slot, r) in sep_chunk.iter_mut().zip(ratio_chunk) {
                        let base = odo.mapped();
                        let mut acc = 0.0;
                        for &off in fibers {
                            acc += sender_values[base + off];
                        }
                        *r = safe_div(acc, *slot);
                        *slot = acc;
                        odo.advance();
                    }
                }
            },
        );

        // ---- Phase 2: extension over flat receiver entries.
        self.pool.parallel_for(
            0..plan.recv_tasks.len(),
            Schedule::Dynamic { grain: 1 },
            |t| {
                let task = &plan.recv_tasks[t];
                let group = &plan.recv_groups[task.group];
                // SAFETY: receiver entry ranges partition each receiver
                // exactly once across tasks; ratios are read-only; sender
                // cliques are untouched this phase.
                unsafe {
                    let recv_chunk = cliques.slice_mut(group.receiver, task.lo, task.hi);
                    for &id in &group.msgs {
                        let m = messages[id];
                        let info = &sep_info[m.sep];
                        let strides = if collect {
                            &info.ext_strides_parent
                        } else {
                            &info.ext_strides_child
                        };
                        let ratio_values = ratio.read(m.sep);
                        let mut odo =
                            Odometer::new(clique_domains[group.receiver].cards(), strides);
                        odo.seek(task.lo);
                        for v in recv_chunk.iter_mut() {
                            *v *= ratio_values[odo.mapped()];
                            odo.advance();
                        }
                    }
                }
            },
        );
    }
}

/// Builds the flattened task lists for one layer.
fn build_layer_plan(
    prepared: &Prepared,
    layer: &[usize],
    collect: bool,
    threads: usize,
) -> LayerPlan {
    let messages: &[Message] = &prepared.built.schedule.messages;
    let threads = threads.max(1);

    // Separator tasks: pack all sep entries of the layer, cut by grain.
    let total_sep: usize = layer
        .iter()
        .map(|&id| prepared.sep_domains[messages[id].sep].size())
        .sum();
    let sep_grain = (total_sep / (threads * CHUNKS_PER_THREAD)).max(1);
    let mut sep_tasks = Vec::new();
    for &id in layer {
        let size = prepared.sep_domains[messages[id].sep].size();
        let mut lo = 0;
        while lo < size {
            let hi = (lo + sep_grain).min(size);
            sep_tasks.push(SepTask { msg: id, lo, hi });
            lo = hi;
        }
    }

    // Receiver groups: by parent in collect (several children may share
    // one), one per message in distribute.
    let mut recv_groups: Vec<RecvGroup> = Vec::new();
    for &id in layer {
        let receiver = if collect {
            messages[id].parent
        } else {
            messages[id].child
        };
        match recv_groups.iter_mut().find(|g| g.receiver == receiver) {
            Some(g) => g.msgs.push(id),
            None => recv_groups.push(RecvGroup {
                receiver,
                msgs: vec![id],
            }),
        }
    }
    for g in &mut recv_groups {
        g.msgs.sort_unstable();
    }

    // Receiver tasks: weight = entries × incoming messages.
    let total_weight: usize = recv_groups
        .iter()
        .map(|g| prepared.clique_domains[g.receiver].size() * g.msgs.len())
        .sum();
    let weight_grain = (total_weight / (threads * CHUNKS_PER_THREAD)).max(1);
    let mut recv_tasks = Vec::new();
    for (gi, g) in recv_groups.iter().enumerate() {
        let size = prepared.clique_domains[g.receiver].size();
        let chunk = (weight_grain / g.msgs.len()).max(1);
        let mut lo = 0;
        while lo < size {
            let hi = (lo + chunk).min(size);
            recv_tasks.push(RecvTask { group: gi, lo, hi });
            lo = hi;
        }
    }

    LayerPlan {
        msgs: layer.to_vec(),
        sep_tasks,
        recv_groups,
        recv_tasks,
    }
}

impl InferenceEngine for HybridJt {
    fn name(&self) -> &'static str {
        "Fast-BNI-par"
    }

    fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn pool(&self) -> Option<&ThreadPool> {
        Some(&self.pool)
    }

    fn pool_handle(&self) -> Option<Arc<ThreadPool>> {
        Some(Arc::clone(&self.pool))
    }

    fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    fn propagate(&self, state: &mut WorkState) {
        let raw = RawState::new(state);
        for plan in &self.collect_plans {
            self.run_layer(&raw, plan, true);
        }
        for plan in &self.distribute_plans {
            self.run_layer(&raw, plan, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineKind;
    use crate::solver::Solver;
    use fastbn_bayesnet::{datasets, generators, sampler, Evidence};
    use fastbn_jtree::JtreeOptions;

    #[test]
    fn task_lists_cover_every_entry_exactly_once() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let engine = HybridJt::new(prepared.clone(), 3);
        for plan in engine.collect_plans.iter().chain(&engine.distribute_plans) {
            // Sep tasks partition each message's separator range.
            for &id in &plan.msgs {
                let m = prepared.built.schedule.messages[id];
                let size = prepared.sep_domains[m.sep].size();
                let mut covered: Vec<(usize, usize)> = plan
                    .sep_tasks
                    .iter()
                    .filter(|t| t.msg == id)
                    .map(|t| (t.lo, t.hi))
                    .collect();
                covered.sort_unstable();
                assert_eq!(covered.first().map(|c| c.0), Some(0));
                assert_eq!(covered.last().map(|c| c.1), Some(size));
                assert!(covered.windows(2).all(|w| w[0].1 == w[1].0));
            }
            // Recv tasks partition each group's receiver range.
            for (gi, g) in plan.recv_groups.iter().enumerate() {
                let size = prepared.clique_domains[g.receiver].size();
                let mut covered: Vec<(usize, usize)> = plan
                    .recv_tasks
                    .iter()
                    .filter(|t| t.group == gi)
                    .map(|t| (t.lo, t.hi))
                    .collect();
                covered.sort_unstable();
                assert_eq!(covered.first().map(|c| c.0), Some(0));
                assert_eq!(covered.last().map(|c| c.1), Some(size));
                assert!(covered.windows(2).all(|w| w[0].1 == w[1].0));
            }
        }
    }

    #[test]
    fn hybrid_matches_seq_bitwise_across_thread_counts() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let mut seq_session = seq.session();
        let cases = sampler::generate_cases(&net, 20, 0.2, 17);
        for threads in [1, 2, 3, 4] {
            let hybrid = Solver::from_prepared(prepared.clone())
                .engine(EngineKind::Hybrid)
                .threads(threads)
                .build();
            let mut session = hybrid.session();
            for case in &cases {
                let a = seq_session.posteriors(&case.evidence).unwrap();
                let b = session.posteriors(&case.evidence).unwrap();
                assert_eq!(a.max_abs_diff(&b), 0.0, "t={threads}");
                assert_eq!(a.prob_evidence.to_bits(), b.prob_evidence.to_bits());
            }
        }
    }

    #[test]
    fn hybrid_matches_seq_on_multi_child_parents() {
        // Naive-Bayes trees have one parent clique with many children —
        // the multi-ratio receiver-phase case.
        let net = generators::naive_bayes(12, 3, 2, 8);
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let hybrid = Solver::from_prepared(prepared)
            .engine(EngineKind::Hybrid)
            .threads(4)
            .build();
        let mut seq_session = seq.session();
        let mut session = hybrid.session();
        for case in sampler::generate_cases(&net, 10, 0.3, 21) {
            let a = seq_session.posteriors(&case.evidence).unwrap();
            let b = session.posteriors(&case.evidence).unwrap();
            assert_eq!(a.max_abs_diff(&b), 0.0);
        }
    }

    #[test]
    fn hybrid_matches_seq_on_random_windowed_dags() {
        for seed in 0..4 {
            let spec = generators::WindowedDagSpec {
                nodes: 45,
                target_arcs: 60,
                max_parents: 3,
                window: 6,
                seed,
                ..generators::WindowedDagSpec::new("hybrid-test", 45)
            };
            let net = generators::windowed_dag(&spec);
            let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
            let seq = Solver::from_prepared(prepared.clone()).build();
            let hybrid = Solver::from_prepared(prepared)
                .engine(EngineKind::Hybrid)
                .threads(2)
                .build();
            let mut seq_session = seq.session();
            let mut session = hybrid.session();
            for case in sampler::generate_cases(&net, 6, 0.2, seed) {
                let a = seq_session.posteriors(&case.evidence).unwrap();
                let b = session.posteriors(&case.evidence).unwrap();
                assert_eq!(a.max_abs_diff(&b), 0.0, "seed {seed}");
            }
        }
    }

    #[test]
    fn hybrid_handles_disconnected_networks() {
        // Forest: schedule merges components into shared layers.
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a0 = b.add_var("a0", &["t", "f"]);
        let a1 = b.add_var("a1", &["t", "f"]);
        let c0 = b.add_var("c0", &["t", "f"]);
        b.set_cpt(a0, vec![], vec![0.4, 0.6]).unwrap();
        b.set_cpt(a1, vec![a0], vec![0.9, 0.1, 0.3, 0.7]).unwrap();
        b.set_cpt(c0, vec![], vec![0.2, 0.8]).unwrap();
        let net = b.build().unwrap();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let hybrid = Solver::from_prepared(prepared)
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build();
        let ev = Evidence::from_pairs([(a1, 0)]);
        let x = seq.posteriors(&ev).unwrap();
        let y = hybrid.posteriors(&ev).unwrap();
        assert_eq!(x.max_abs_diff(&y), 0.0);
        assert!(
            (x.marginal(c0)[0] - 0.2).abs() < 1e-12,
            "other component untouched"
        );
    }
}
