//! Most probable explanation (MPE) by max-product propagation — the
//! classic junction-tree extension (Dawid 1992): replace summation with
//! maximization in the collect pass, then back-track the arg-max
//! assignment from the root outward.
//!
//! The paper evaluates posterior-marginal inference only; MPE is provided
//! as the natural extension of the same machinery (identical tree,
//! identical index mappings, max instead of sum).

use fastbn_bayesnet::Evidence;
use fastbn_potential::Domain;

use crate::error::InferenceError;
use crate::prepared::Prepared;
use crate::state::WorkState;
use crate::virtual_evidence::{absorb_virtual, VirtualEvidence};

/// An MPE solution: the jointly most probable full assignment consistent
/// with the evidence, and its joint probability `P(x*, e)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MpeResult {
    /// One state per variable (evidence variables keep their observed
    /// state).
    pub assignment: Vec<usize>,
    /// Joint probability of the returned assignment.
    pub probability: f64,
}

/// Computes the MPE for `evidence` on a prepared network.
///
/// Ties between equally probable assignments are broken deterministically
/// (lowest flat index first), so repeated calls return the same solution.
/// Allocates a transient [`WorkState`]; use an MPE-mode
/// [`Query`](crate::query::Query) through a
/// [`Session`](crate::solver::Session) to amortize the scratch across
/// calls.
pub fn most_probable_explanation(
    prepared: &Prepared,
    evidence: &Evidence,
) -> Result<MpeResult, InferenceError> {
    let mut state = WorkState::new(prepared);
    mpe_on_state(prepared, evidence, &VirtualEvidence::empty(), &mut state)
}

/// MPE by max-product on caller-provided scratch — the session-API entry
/// point. Virtual findings multiply into the maximized objective, i.e.
/// the result maximizes `P(x, e) · ∏ L(v)` (hard evidence is the one-hot
/// special case).
pub(crate) fn mpe_on_state(
    prepared: &Prepared,
    evidence: &Evidence,
    virtual_evidence: &VirtualEvidence,
    state: &mut WorkState,
) -> Result<MpeResult, InferenceError> {
    // Working potentials: initial tables with evidence reduced in. The
    // max pass only touches cliques and the `fresh` scratch.
    state.reset(prepared);
    state.absorb_evidence(prepared, evidence);
    absorb_virtual(state, prepared, virtual_evidence);

    // Max-collect: each separator carries the max-marginal of its child's
    // subtree. Separators start at 1 and receive exactly one collect
    // message, so the Hugin division degenerates to a plain multiply. The
    // precompiled plans drive both kernels (`max_marginalize` initializes
    // its output itself, so the `fresh` scratch needs no reset).
    let schedule = &prepared.built.schedule;
    for layer in &schedule.collect_layers {
        for &id in layer {
            let m = schedule.messages[id];
            let send_plan = prepared.plan_for(m.child, m.sep);
            let recv_plan = prepared.plan_for(m.parent, m.sep);
            let (sender, receiver, _sep, fresh, _ratio) =
                state.message_slices(m.child, m.parent, m.sep);
            send_plan.max_marginalize(sender, fresh);
            recv_plan.extend_multiply(receiver, fresh);
        }
    }

    // Root(s): global maxima. Components are independent, so the MPE
    // probability is the product of the per-root maxima.
    let mut assignment = vec![usize::MAX; prepared.num_vars()];
    let mut probability = 1.0f64;
    for &root in &prepared.built.rooted.roots {
        let (best_idx, best_val) = argmax(state.clique(root));
        if best_val <= 0.0 || !best_val.is_finite() {
            return Err(InferenceError::ImpossibleEvidence);
        }
        probability *= best_val;
        fix_from_index(&prepared.clique_domains[root], best_idx, &mut assignment);
    }

    // Back-track outward in BFS order: each clique extends the partial
    // assignment by maximizing over its still-free variables, holding all
    // previously fixed variables (its separator and beyond) constant.
    for &c in &prepared.built.rooted.bfs_order {
        if prepared.built.rooted.parent[c].is_none() {
            continue; // roots handled above
        }
        extend_assignment(
            state.clique(c),
            &prepared.clique_domains[c],
            &mut assignment,
        );
    }
    debug_assert!(assignment.iter().all(|&s| s != usize::MAX));

    // Evidence must be reproduced exactly (its alternatives were zeroed).
    debug_assert!(evidence
        .iter()
        .all(|(var, state)| assignment[var.index()] == state));

    Ok(MpeResult {
        assignment,
        probability,
    })
}

/// Index and value of the maximum entry (first occurrence on ties).
fn argmax(values: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &v) in values.iter().enumerate() {
        if v > best.1 {
            best = (i, v);
        }
    }
    best
}

/// Writes the clique states of flat index `idx` into `assignment`.
fn fix_from_index(domain: &Domain, idx: usize, assignment: &mut [usize]) {
    let mut states = vec![0usize; domain.num_vars()];
    domain.decode(idx, &mut states);
    for (pos, &v) in domain.vars().iter().enumerate() {
        assignment[v.index()] = states[pos];
    }
}

/// Maximizes `values` (over `domain`) across its unassigned variables,
/// with all assigned variables clamped; writes the winners into
/// `assignment`.
fn extend_assignment(values: &[f64], domain: &Domain, assignment: &mut [usize]) {
    let mut base = 0usize;
    let mut free: Vec<usize> = Vec::new(); // positions within the domain
    for (pos, &v) in domain.vars().iter().enumerate() {
        match assignment[v.index()] {
            usize::MAX => free.push(pos),
            state => base += state * domain.strides()[pos],
        }
    }
    if free.is_empty() {
        return; // fully determined by ancestors
    }
    // Enumerate the free sub-lattice (mixed radix, last free var fastest).
    let cards: Vec<usize> = free.iter().map(|&p| domain.cards()[p]).collect();
    let strides: Vec<usize> = free.iter().map(|&p| domain.strides()[p]).collect();
    let total: usize = cards.iter().product();
    let mut digits = vec![0usize; free.len()];
    let mut offset = 0usize;
    let mut best = (vec![0usize; free.len()], f64::NEG_INFINITY);
    for _ in 0..total {
        let v = values[base + offset];
        if v > best.1 {
            best = (digits.clone(), v);
        }
        // Increment.
        let mut i = free.len();
        loop {
            if i == 0 {
                break;
            }
            i -= 1;
            digits[i] += 1;
            offset += strides[i];
            if digits[i] < cards[i] {
                break;
            }
            offset -= strides[i] * cards[i];
            digits[i] = 0;
        }
    }
    for ((&pos, &state), _) in free.iter().zip(&best.0).zip(std::iter::repeat(())) {
        assignment[domain.vars()[pos].index()] = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::{datasets, generators, sampler, BayesianNetwork, VarId};
    use fastbn_jtree::JtreeOptions;

    /// Brute-force MPE for cross-checking (joint ≤ ~2^20).
    fn brute_mpe(net: &BayesianNetwork, evidence: &Evidence) -> (Vec<usize>, f64) {
        let n = net.num_vars();
        let cards = net.cardinalities();
        let mut best = (vec![0usize; n], f64::NEG_INFINITY);
        let mut assignment = vec![0usize; n];
        loop {
            if evidence.iter().all(|(v, s)| assignment[v.index()] == s) {
                let p = joint_prob(net, &assignment);
                if p > best.1 {
                    best = (assignment.clone(), p);
                }
            }
            let mut i = n;
            loop {
                if i == 0 {
                    return best;
                }
                i -= 1;
                assignment[i] += 1;
                if assignment[i] < cards[i] {
                    break;
                }
                assignment[i] = 0;
            }
        }
    }

    fn joint_prob(net: &BayesianNetwork, assignment: &[usize]) -> f64 {
        (0..net.num_vars())
            .map(|v| {
                let cpt = net.cpt(VarId::from_index(v));
                let parents: Vec<usize> = cpt
                    .parents()
                    .iter()
                    .map(|p| assignment[p.index()])
                    .collect();
                cpt.probability(assignment[v], &parents)
            })
            .product()
    }

    fn check_against_brute(net: &BayesianNetwork, evidence: &Evidence) {
        let prepared = Prepared::new(net, &JtreeOptions::default());
        let mpe = most_probable_explanation(&prepared, evidence).unwrap();
        let (_, brute_p) = brute_mpe(net, evidence);
        // The returned assignment's probability must equal the true max
        // (ties may differ in the assignment itself).
        let own_p = joint_prob(net, &mpe.assignment);
        assert!(
            (own_p - brute_p).abs() <= 1e-12 * brute_p.max(1e-300),
            "assignment prob {own_p} vs true max {brute_p}"
        );
        assert!(
            (mpe.probability - brute_p).abs() <= 1e-9 * brute_p.max(1e-300),
            "reported {} vs true {}",
            mpe.probability,
            brute_p
        );
        for (var, state) in evidence.iter() {
            assert_eq!(mpe.assignment[var.index()], state);
        }
    }

    #[test]
    fn mpe_matches_brute_force_on_classic_networks() {
        for name in ["sprinkler", "asia", "cancer", "student"] {
            let net = datasets::by_name(name).unwrap();
            check_against_brute(&net, &Evidence::empty());
            let cases = sampler::generate_cases(&net, 4, 0.3, 31);
            for case in cases {
                check_against_brute(&net, &case.evidence);
            }
        }
    }

    #[test]
    fn mpe_matches_brute_force_on_random_networks() {
        for seed in 0..4 {
            let spec = generators::WindowedDagSpec {
                nodes: 12,
                target_arcs: 16,
                max_parents: 3,
                window: 5,
                seed,
                ..generators::WindowedDagSpec::new("mpe-test", 12)
            };
            let net = generators::windowed_dag(&spec);
            check_against_brute(&net, &Evidence::empty());
            for case in sampler::generate_cases(&net, 3, 0.25, seed + 7) {
                check_against_brute(&net, &case.evidence);
            }
        }
    }

    #[test]
    fn mpe_with_impossible_evidence_errors() {
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let tub = net.var_id("Tuberculosis").unwrap();
        let either = net.var_id("TbOrCa").unwrap();
        let err =
            most_probable_explanation(&prepared, &Evidence::from_pairs([(tub, 0), (either, 1)]))
                .unwrap_err();
        assert_eq!(err, InferenceError::ImpossibleEvidence);
    }

    #[test]
    fn mpe_of_fully_observed_network_is_the_observation() {
        let net = datasets::sprinkler();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let ev = Evidence::from_pairs((0..4).map(|v| (VarId(v), v as usize % 2)));
        let mpe = most_probable_explanation(&prepared, &ev).unwrap();
        assert_eq!(mpe.assignment, vec![0, 1, 0, 1]);
        let expected = joint_prob(&net, &mpe.assignment);
        assert!((mpe.probability - expected).abs() < 1e-12);
    }

    #[test]
    fn mpe_is_deterministic() {
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let dysp = net.var_id("Dyspnea").unwrap();
        let ev = Evidence::from_pairs([(dysp, 0)]);
        let a = most_probable_explanation(&prepared, &ev).unwrap();
        let b = most_probable_explanation(&prepared, &ev).unwrap();
        assert_eq!(a, b);
    }
}
