//! Deprecated pre-session API, forwarded onto the new one.
//!
//! Earlier releases exposed `build_engine(kind, prepared, threads)`
//! returning a boxed engine whose `query(&mut self, &Evidence)` owned its
//! scratch — one in-flight query per instance. That shape survives here
//! as a thin wrapper over [`Solver`](crate::solver::Solver) /
//! [`Session`](crate::solver::Session) so existing snippets keep
//! compiling, but new code should use the session API directly:
//!
//! ```
//! use fastbn_bayesnet::{datasets, Evidence};
//! use fastbn_inference::{EngineKind, Solver};
//!
//! let net = datasets::asia();
//! let solver = Solver::builder(&net).engine(EngineKind::Hybrid).threads(2).build();
//! let posteriors = solver.posteriors(&Evidence::empty()).unwrap();
//! assert!((posteriors.prob_evidence - 1.0).abs() < 1e-9);
//! ```
//!
//! In particular, the historical "loop over `query` calls" pattern this
//! API forced is superseded twice over: N independent queries belong in
//! a [`QueryBatch`](crate::query::QueryBatch) executed by
//! [`Session::run_batch`](crate::solver::Session::run_batch) (one call,
//! outer parallelism across the engine's pool), and live single-request
//! traffic belongs behind the `fastbn-serve` `Server`, which coalesces
//! queued requests into those same batches with a deadline. Both return
//! results bit-identical to the loop they replace.

use std::sync::Arc;

use fastbn_bayesnet::Evidence;

use crate::engines::{make_engine, EngineKind, InferenceEngine};
use crate::error::InferenceError;
use crate::posterior::Posteriors;
use crate::prepared::Prepared;
use crate::state::WorkState;

/// An engine bundled with one private [`WorkState`] — the old
/// one-query-at-a-time object. Forwarded onto the stateless engines.
#[deprecated(
    since = "0.1.0",
    note = "use Solver::builder(...).engine(kind).build() with Session::run / Query; batch repeated queries via Session::run_batch, or serve live traffic through fastbn_serve::Server"
)]
pub struct LegacyEngine {
    engine: Box<dyn InferenceEngine>,
    state: WorkState,
}

#[allow(deprecated)]
impl LegacyEngine {
    /// Short display name (matches the paper's column headers).
    pub fn name(&self) -> &'static str {
        self.engine.name()
    }

    /// Worker count used by parallel regions (1 for sequential engines).
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Runs one full query: reset, absorb evidence, collect, distribute,
    /// extract posteriors — the historical `InferenceEngine::query`
    /// signature.
    pub fn query(&mut self, evidence: &Evidence) -> Result<Posteriors, InferenceError> {
        let prepared = self.engine.prepared().clone();
        crate::validate::validate_evidence(&prepared, evidence)?;
        self.state.reset(&prepared);
        self.engine.enter_evidence(&mut self.state, evidence);
        self.engine.propagate(&mut self.state);
        self.state.extract_posteriors(&prepared, evidence)
    }
}

/// Builds an engine of the requested kind with its own scratch. `threads`
/// is ignored by the sequential engines.
#[deprecated(
    since = "0.1.0",
    note = "use Solver::builder(...).engine(kind).threads(n).build(); sessions replace the per-engine scratch, and repeated queries belong in Session::run_batch"
)]
#[allow(deprecated)]
pub fn build_engine(kind: EngineKind, prepared: Arc<Prepared>, threads: usize) -> LegacyEngine {
    let engine = make_engine(kind, prepared.clone(), threads);
    LegacyEngine {
        state: WorkState::new(&prepared),
        engine,
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use fastbn_bayesnet::datasets;
    use fastbn_jtree::JtreeOptions;

    #[test]
    fn legacy_engine_matches_session_api_bitwise() {
        let net = datasets::asia();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let solver = Solver::from_prepared(prepared.clone())
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build();
        let mut legacy = build_engine(EngineKind::Hybrid, prepared, 2);
        assert_eq!(legacy.name(), "Fast-BNI-par");
        assert_eq!(legacy.threads(), 2);
        let dysp = net.var_id("Dyspnea").unwrap();
        for ev in [Evidence::empty(), Evidence::from_pairs([(dysp, 0)])] {
            let old = legacy.query(&ev).unwrap();
            let new = solver.posteriors(&ev).unwrap();
            assert_eq!(old.max_abs_diff(&new), 0.0);
            assert_eq!(old.prob_evidence.to_bits(), new.prob_evidence.to_bits());
        }
    }

    #[test]
    fn legacy_engine_resets_between_queries() {
        let net = datasets::sprinkler();
        let prepared = Arc::new(Prepared::new(&net, &JtreeOptions::default()));
        let mut legacy = build_engine(EngineKind::Seq, prepared, 1);
        let wet = net.var_id("WetGrass").unwrap();
        let baseline = legacy.query(&Evidence::empty()).unwrap();
        let _ = legacy.query(&Evidence::from_pairs([(wet, 0)])).unwrap();
        let again = legacy.query(&Evidence::empty()).unwrap();
        assert_eq!(baseline.max_abs_diff(&again), 0.0);
    }
}
