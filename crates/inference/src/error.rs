//! Inference error type.

use fastbn_bayesnet::evidence::EvidenceError;

/// Why a query could not produce posteriors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// The entered evidence has probability zero under the model, so
    /// conditional posteriors are undefined.
    ImpossibleEvidence,
    /// The evidence refers to unknown variables or out-of-range states.
    InvalidEvidence(EvidenceError),
    /// A query's target set names a variable outside the network.
    InvalidTarget {
        /// The offending variable index.
        var: usize,
        /// The network's variable count.
        num_vars: usize,
    },
    /// A virtual finding's likelihood vector does not match its
    /// variable's cardinality.
    InvalidLikelihood {
        /// The offending variable index.
        var: usize,
        /// The variable's cardinality.
        expected: usize,
        /// The likelihood vector's length.
        got: usize,
    },
    /// A virtual finding's likelihood vector has well-formed length but
    /// malformed entries (negative, non-finite, or all zero). Multiplying
    /// such a vector in would yield NaN or all-zero posteriors, so it is
    /// rejected before touching any scratch.
    MalformedLikelihood {
        /// The offending variable index.
        var: usize,
        /// What is wrong with the vector.
        defect: LikelihoodDefect,
    },
}

/// Why a likelihood vector was rejected as malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LikelihoodDefect {
    /// Some entry is negative.
    Negative,
    /// Some entry is NaN or infinite.
    NonFinite,
    /// Every entry is zero — the virtual finding would make any state of
    /// the variable impossible.
    AllZero,
}

impl std::fmt::Display for LikelihoodDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LikelihoodDefect::Negative => write!(f, "a negative entry"),
            LikelihoodDefect::NonFinite => write!(f, "a NaN or infinite entry"),
            LikelihoodDefect::AllZero => write!(f, "no positive entry"),
        }
    }
}

impl std::fmt::Display for InferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferenceError::ImpossibleEvidence => {
                write!(f, "evidence has probability zero under the model")
            }
            InferenceError::InvalidEvidence(e) => write!(f, "invalid evidence: {e}"),
            InferenceError::InvalidTarget { var, num_vars } => write!(
                f,
                "target variable {var} is out of range for a network of {num_vars} variables"
            ),
            InferenceError::InvalidLikelihood { var, expected, got } => write!(
                f,
                "likelihood for variable {var} has {got} entries, expected {expected} \
                 (the variable's cardinality)"
            ),
            InferenceError::MalformedLikelihood { var, defect } => write!(
                f,
                "likelihood for variable {var} is malformed: it has {defect}"
            ),
        }
    }
}

impl std::error::Error for InferenceError {}

impl From<EvidenceError> for InferenceError {
    fn from(e: EvidenceError) -> Self {
        InferenceError::InvalidEvidence(e)
    }
}
