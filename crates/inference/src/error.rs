//! Inference error type.

use fastbn_bayesnet::evidence::EvidenceError;

/// Why a query could not produce posteriors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// The entered evidence has probability zero under the model, so
    /// conditional posteriors are undefined.
    ImpossibleEvidence,
    /// The evidence refers to unknown variables or out-of-range states.
    InvalidEvidence(EvidenceError),
}

impl std::fmt::Display for InferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferenceError::ImpossibleEvidence => {
                write!(f, "evidence has probability zero under the model")
            }
            InferenceError::InvalidEvidence(e) => write!(f, "invalid evidence: {e}"),
        }
    }
}

impl std::error::Error for InferenceError {}

impl From<EvidenceError> for InferenceError {
    fn from(e: EvidenceError) -> Self {
        InferenceError::InvalidEvidence(e)
    }
}
