//! Per-query trace propagation into engine execution.
//!
//! fastbn: deny-hot-alloc
//!
//! The serving layer owns trace/span identity (a [`Tracer`] mints ids
//! at admission);
//! this module carries that identity **into** the engines without
//! touching the [`InferenceEngine`](crate::engines::InferenceEngine)
//! trait: a [`TraceContext`] is installed in a thread-local by
//! [`scoped`] around each traced query
//! ([`Solver::query_batch_traced`](crate::solver::Solver::query_batch_traced)
//! does this per batch slot, on whichever pool thread runs the slot),
//! and the engines bracket their collect/distribute halves with the
//! `collect`/`distribute` helpers — no-ops costing one thread-local
//! read when no context is installed, so untraced serving pays nothing
//! measurable and computes
//! bit-identical results (the helpers never touch engine data).
//!
//! With the opt-in `trace-kernels` cargo feature, the sequential engine
//! additionally records one span per clique message, tagged by its
//! [`KernelPlan`](fastbn_potential::KernelPlan) layout class — the
//! per-clique attribution the paper's table kernels are classified by.

use std::cell::RefCell;
use std::sync::Arc;

use fastbn_telemetry::trace::{NameId, SpanRecord, Tracer, SPAN_COLLECT, SPAN_DISTRIBUTE};

/// The identity a traced query carries into the engine: which tracer to
/// record against, which trace the spans belong to, and the span to
/// parent them under (the serving layer's compute span).
#[derive(Debug, Clone)]
pub struct TraceContext {
    /// The tracing authority spans record against.
    pub tracer: Arc<Tracer>,
    /// The request's trace id.
    pub trace: u64,
    /// Parent span id for spans recorded under this context.
    pub parent: u64,
}

thread_local! {
    /// The context engine-phase spans attach to on this thread, if any.
    static ACTIVE: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
}

/// Installs `ctx` as the calling thread's active trace context for the
/// guard's lifetime (restoring whatever was active before on drop).
/// `scoped(None)` is a no-op guard, so batch loops can call it
/// unconditionally per slot.
pub fn scoped(ctx: Option<&TraceContext>) -> TraceScope {
    match ctx {
        None => TraceScope {
            prev: None,
            installed: false,
        },
        Some(ctx) => {
            let prev = ACTIVE.with(|cell| cell.replace(Some(TraceContext::clone(ctx))));
            TraceScope {
                prev,
                installed: true,
            }
        }
    }
}

/// Guard returned by [`scoped`]; restores the previous context on drop.
#[derive(Debug)]
pub struct TraceScope {
    prev: Option<TraceContext>,
    installed: bool,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.installed {
            let prev = self.prev.take();
            ACTIVE.with(|cell| *cell.borrow_mut() = prev);
        }
    }
}

/// A copy of the active context (one `Arc` bump; no allocation).
#[inline]
fn current() -> Option<TraceContext> {
    ACTIVE.with(|cell| cell.borrow().as_ref().map(TraceContext::clone))
}

/// Restores the thread-local parent span on drop — the panic-safe
/// bracket reparenting phase spans use so nested kernel spans attach to
/// the phase span rather than the compute span.
struct ParentGuard {
    prev: u64,
}

impl ParentGuard {
    fn reparent_to(span: u64, prev: u64) -> ParentGuard {
        ACTIVE.with(|cell| {
            if let Some(ctx) = cell.borrow_mut().as_mut() {
                ctx.parent = span;
            }
        });
        ParentGuard { prev }
    }
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        ACTIVE.with(|cell| {
            if let Some(ctx) = cell.borrow_mut().as_mut() {
                ctx.parent = self.prev;
            }
        });
    }
}

/// Times `f` as one `name` span under the active context; calls `f`
/// directly when none is installed. `reparent` makes spans recorded
/// *inside* `f` children of this span.
#[inline]
fn with_span<R>(name: NameId, tag: u64, aux: u64, reparent: bool, f: impl FnOnce() -> R) -> R {
    let Some(ctx) = current() else {
        return f();
    };
    let span = ctx.tracer.next_span();
    let _guard = reparent.then(|| ParentGuard::reparent_to(span, ctx.parent));
    let start = ctx.tracer.now_ns();
    let out = f();
    let dur = ctx.tracer.now_ns().saturating_sub(start);
    ctx.tracer.record(&SpanRecord {
        trace: ctx.trace,
        span,
        parent: ctx.parent,
        name,
        start_ns: start,
        dur_ns: dur,
        tag,
        aux,
    });
    out
}

/// Times `f` as this query's collect-phase span (no-op untraced).
#[inline]
pub(crate) fn collect<R>(f: impl FnOnce() -> R) -> R {
    with_span(SPAN_COLLECT, 0, 0, true, f)
}

/// Times `f` as this query's distribute-phase span (no-op untraced).
#[inline]
pub(crate) fn distribute<R>(f: impl FnOnce() -> R) -> R {
    with_span(SPAN_DISTRIBUTE, 0, 0, true, f)
}

/// Times `f` as one clique-kernel span (`tag` = layout class code from
/// [`layout_class`], `aux` = the sending clique index). Compiles to a
/// plain call without the `trace-kernels` feature.
#[inline]
#[cfg_attr(not(feature = "trace-kernels"), allow(unused_variables))]
pub(crate) fn kernel<R>(tag: u64, aux: u64, f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "trace-kernels")]
    {
        with_span(fastbn_telemetry::trace::SPAN_KERNEL, tag, aux, false, f)
    }
    #[cfg(not(feature = "trace-kernels"))]
    {
        f()
    }
}

/// The stable numeric code kernel spans carry as `tag` for a
/// [`Layout`](fastbn_potential::Layout) class.
pub fn layout_class(layout: fastbn_potential::Layout) -> u64 {
    match layout {
        fastbn_potential::Layout::Identity => 0,
        fastbn_potential::Layout::InnerBlock => 1,
        fastbn_potential::Layout::OuterBlock { .. } => 2,
        fastbn_potential::Layout::Generic => 3,
    }
}

/// The display name for a [`layout_class`] code (for trace rendering).
pub fn layout_class_name(class: u64) -> &'static str {
    match class {
        0 => "identity",
        1 => "inner-block",
        2 => "outer-block",
        3 => "generic",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_telemetry::trace::{TraceConfig, SPAN_COLLECT};

    #[test]
    fn phase_spans_record_only_under_a_scope() {
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        collect(|| ());
        assert_eq!(tracer.spans_recorded(), 0, "no scope, no spans");

        let ctx = TraceContext {
            tracer: Arc::clone(&tracer),
            trace: 9,
            parent: 1,
        };
        {
            let _scope = scoped(Some(&ctx));
            collect(|| ());
            distribute(|| ());
        }
        collect(|| ());
        assert_eq!(tracer.spans_recorded(), 2, "exactly the scoped phases");
        let spans = tracer.recent_spans();
        assert!(spans.iter().all(|s| s.trace == 9 && s.parent == 1));
        assert!(spans.iter().any(|s| s.name == SPAN_COLLECT));
    }

    #[test]
    fn scopes_nest_and_restore() {
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let outer = TraceContext {
            tracer: Arc::clone(&tracer),
            trace: 1,
            parent: 0,
        };
        let inner = TraceContext {
            tracer: Arc::clone(&tracer),
            trace: 2,
            parent: 0,
        };
        let _a = scoped(Some(&outer));
        {
            let _b = scoped(Some(&inner));
            assert_eq!(current().unwrap().trace, 2);
            // A scoped(None) guard changes nothing.
            let _c = scoped(None);
            assert_eq!(current().unwrap().trace, 2);
        }
        assert_eq!(current().unwrap().trace, 1);
    }

    #[test]
    fn phases_reparent_nested_spans() {
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let ctx = TraceContext {
            tracer: Arc::clone(&tracer),
            trace: 5,
            parent: 100,
        };
        let _scope = scoped(Some(&ctx));
        collect(|| {
            // Whatever records inside the phase parents under its span.
            let nested = current().unwrap();
            assert_ne!(nested.parent, 100);
        });
        assert_eq!(current().unwrap().parent, 100, "parent restored");
    }

    #[test]
    fn layout_classes_round_trip() {
        assert_eq!(layout_class(fastbn_potential::Layout::Identity), 0);
        assert_eq!(
            layout_class(fastbn_potential::Layout::OuterBlock { fiber_len: 4 }),
            2
        );
        assert_eq!(layout_class_name(3), "generic");
        assert_eq!(layout_class_name(42), "?");
    }
}
