//! # fastbn-inference
//!
//! The paper's contribution: exact Bayesian-network inference by junction
//! tree with six interchangeable engines (DESIGN.md §2.5):
//!
//! | Engine | Paper analogue | Parallel structure |
//! |---|---|---|
//! | [`ReferenceJt`] | UnBBayes | sequential, textbook/object-heavy |
//! | [`SeqJt`] | Fast-BNI-seq | sequential, odometer-fused ops |
//! | [`DirectJt`] | Kozlov & Singh '94 | coarse: parallel messages per layer |
//! | [`PrimitiveJt`] | Xia & Prasanna '07 | fine: one parallel region per table op |
//! | [`ElementJt`] | Zheng '13 (GPU) | fine: mapped two-pass element-wise regions |
//! | [`HybridJt`] | **Fast-BNI-par** | flattened per-layer regions (2 per layer) |
//!
//! All engines run Hugin-style two-phase propagation over the same
//! [`Prepared`] structures and produce **bit-identical posteriors** for any
//! thread count (asserted by the test suite). Correctness oracles —
//! variable elimination and brute-force enumeration — live in [`oracle`].
//!
//! ```
//! use fastbn_bayesnet::{datasets, Evidence};
//! use fastbn_inference::{Prepared, SeqJt, InferenceEngine};
//! use std::sync::Arc;
//!
//! let net = datasets::sprinkler();
//! let prepared = Arc::new(Prepared::new(&net, &Default::default()));
//! let mut engine = SeqJt::new(prepared);
//! let wet = net.var_id("WetGrass").unwrap();
//! let post = engine.query(&Evidence::from_pairs([(wet, 0)])).unwrap();
//! let rain = net.var_id("Rain").unwrap();
//! // P(Rain | WetGrass = true) ≈ 0.708 (Russell & Norvig).
//! assert!((post.marginal(rain)[0] - 0.7079).abs() < 1e-3);
//! ```

pub mod engines;
pub mod error;
pub mod mpe;
pub mod oracle;
pub mod posterior;
pub mod prepared;
pub mod state;
pub mod validate;
pub mod virtual_evidence;

pub use engines::direct::DirectJt;
pub use engines::element::ElementJt;
pub use engines::hybrid::HybridJt;
pub use engines::primitive::PrimitiveJt;
pub use engines::reference::ReferenceJt;
pub use engines::seq::SeqJt;
pub use engines::{build_engine, EngineKind, InferenceEngine};
pub use error::InferenceError;
pub use mpe::{most_probable_explanation, MpeResult};
pub use posterior::Posteriors;
pub use prepared::Prepared;
pub use virtual_evidence::VirtualEvidence;
