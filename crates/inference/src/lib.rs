//! # fastbn-inference
//!
//! Exact Bayesian-network inference by junction tree, served through a
//! three-layer concurrent API:
//!
//! * [`Solver`] — an immutable, `Send + Sync` **compiled model**: the
//!   junction tree, initial potentials and engine task plans, built once
//!   per network.
//! * [`Session`] — a cheap **per-caller handle** holding reusable scratch
//!   from the solver's lock-free pool; open one per thread and query
//!   concurrently. Its `'static` counterpart [`OwnedSession`] co-owns
//!   the solver through an `Arc`, so it can move into spawned threads
//!   and task runtimes (the `fastbn-serve` front end is built on it).
//! * [`Query`] — a **builder** describing one request: hard evidence,
//!   virtual (likelihood) evidence, an optional target-variable subset
//!   (pay only for the marginals you ask for), or MPE mode. Results come
//!   back as a unified [`QueryResult`]. Independent requests group into a
//!   [`QueryBatch`] and execute as one unit.
//!
//! For streaming/monitoring workloads where evidence changes one finding
//! at a time, [`LiveSession`] (module [`delta`]) keeps a fully propagated
//! state and re-propagates only the dirty part of the tree per
//! [`EvidenceDelta`] edit — bit-identical to a from-scratch query, with a
//! zero-allocation steady state.
//!
//! ```
//! use fastbn_bayesnet::datasets;
//! use fastbn_inference::{EngineKind, Query, QueryBatch, Solver};
//!
//! let net = datasets::sprinkler();
//! // Compile once (expensive), query from anywhere (cheap).
//! let solver = Solver::builder(&net).engine(EngineKind::Hybrid).threads(2).build();
//! let wet = net.var_id("WetGrass").unwrap();
//! let rain = net.var_id("Rain").unwrap();
//!
//! let mut session = solver.session();
//! let result = session.run(&Query::new().observe(wet, 0).targets([rain])).unwrap();
//! let posteriors = result.posteriors().unwrap();
//! // P(Rain | WetGrass = true) ≈ 0.708 (Russell & Norvig).
//! assert!((posteriors.marginal(rain)[0] - 0.7079).abs() < 1e-3);
//!
//! // Same entry point for the most probable explanation:
//! let mpe = session.run(&Query::new().observe(wet, 0).mpe()).unwrap();
//! assert_eq!(mpe.mpe().unwrap().assignment[wet.index()], 0);
//!
//! // Many independent requests? Batch them: results arrive in input
//! // order, each failure confined to its own slot, and batches at least
//! // as wide as the engine's pool run with *outer* parallelism — one
//! // query per worker, pooled scratch — instead of paying per-query
//! // setup serially.
//! let batch: QueryBatch = (0..8)
//!     .map(|i| Query::new().observe(wet, i % 2))
//!     .collect();
//! let results = session.run_batch(&batch);
//! assert_eq!(results.len(), 8);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```
//!
//! ## Engines
//!
//! Propagation is pluggable: six engines (DESIGN.md §2.5) implement the
//! stateless [`InferenceEngine`] trait — `&self` plus an explicit
//! [`WorkState`] — so one engine instance serves any number of sessions:
//!
//! | Engine | Paper analogue | Parallel structure |
//! |---|---|---|
//! | [`ReferenceJt`] | UnBBayes | sequential, textbook/object-heavy |
//! | [`SeqJt`] | Fast-BNI-seq | sequential, odometer-fused ops |
//! | [`DirectJt`] | Kozlov & Singh '94 | coarse: parallel messages per layer |
//! | [`PrimitiveJt`] | Xia & Prasanna '07 | fine: one parallel region per table op |
//! | [`ElementJt`] | Zheng '13 (GPU) | fine: mapped two-pass element-wise regions |
//! | [`HybridJt`] | **Fast-BNI-par** | flattened per-layer regions (2 per layer) |
//!
//! All engines run Hugin-style two-phase propagation over the same
//! [`Prepared`] structures and produce **bit-identical posteriors** for
//! any engine, thread count, or session interleaving (asserted by the
//! test suite). Correctness oracles — variable elimination and
//! brute-force enumeration — live in [`oracle`].
//!
//! The pre-session API (`build_engine` + `query(&mut self)`) survives as
//! a deprecated forwarding shim in [`compat`].
//!
//! How this crate relates to the layers below (junction trees, potential
//! tables, the thread pool) and above (the `fastbn-serve` micro-batching
//! front end) is mapped in `docs/ARCHITECTURE.md` at the repository
//! root.

// Every unsafe operation inside an `unsafe fn` must sit in its own
// `unsafe {}` block with a SAFETY comment (enforced by fastbn-analyze
// FB-L1 plus this lint).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod compat;
pub mod delta;
pub mod engines;
pub mod error;
pub mod mpe;
pub mod oracle;
pub mod owned;
pub mod posterior;
pub mod prepared;
pub mod query;
pub(crate) mod slab_track;
pub mod solver;
pub mod state;
pub mod trace;
pub mod validate;
pub mod virtual_evidence;

pub use cache::{CacheConfig, CacheStats, QueryCache};
pub use delta::{EvidenceDelta, LiveSession};
pub use engines::direct::DirectJt;
pub use engines::element::ElementJt;
pub use engines::hybrid::HybridJt;
pub use engines::primitive::PrimitiveJt;
pub use engines::reference::ReferenceJt;
pub use engines::seq::SeqJt;
pub use engines::{make_engine, make_engine_on, EngineKind, InferenceEngine, ParseEngineKindError};
pub use error::{InferenceError, LikelihoodDefect};
pub use mpe::{most_probable_explanation, MpeResult};
pub use owned::OwnedSession;
pub use posterior::Posteriors;
pub use prepared::Prepared;
pub use query::{Query, QueryBatch, QueryKey, QueryMode, QueryResult};
pub use solver::{Session, SessionCore, Solver, SolverBuilder};
pub use state::WorkState;
pub use trace::{layout_class, layout_class_name, scoped, TraceContext, TraceScope};
pub use virtual_evidence::VirtualEvidence;

#[allow(deprecated)]
pub use compat::{build_engine, LegacyEngine};
