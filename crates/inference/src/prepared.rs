//! Query-independent preparation: junction tree, domains, CPT assignment,
//! the slab layout, and precompiled kernel plans.
//!
//! Everything here is computed once per network and shared (via `Arc`)
//! by every engine instance; per-query work only ever touches the
//! [`crate::state::WorkState`] slab. `Prepared` also compiles one
//! [`KernelPlan`] per (clique, separator) incidence, so steady-state
//! propagation never re-derives an index mapping — and never allocates.

use std::sync::Arc;

use fastbn_bayesnet::{BayesianNetwork, VarId};
use fastbn_jtree::{build_junction_tree, BuiltTree, JtreeOptions};
use fastbn_potential::{ops, Domain, KernelPlan, PotentialTable};

/// Offsets of every table inside a [`crate::state::WorkState`] slab.
///
/// The slab holds four regions, in order: all clique tables, all current
/// separator tables, all `fresh` scratch tables, all `ratio` scratch
/// tables. Each table occupies a contiguous `[off, off + len)` range, so
/// any (clique, sep, fresh, ratio) quadruple is a set of pairwise-disjoint
/// slices of one allocation.
///
/// Two further **saved-message regions** extend the layout past `total`,
/// used only by incremental re-propagation
/// ([`LiveSession`](crate::delta::LiveSession)): a per-clique snapshot of
/// the post-collect clique values and a per-separator copy of the collect
/// message. A plain query [`WorkState`](crate::state::WorkState) allocates
/// `total` values and never touches them; a live state allocates
/// `live_total` and keeps them current across evidence-delta edits, so a
/// single-finding update replays only the dirty path against saved
/// messages — allocation-free.
#[derive(Debug, Clone)]
pub struct SlabLayout {
    /// Start of clique `c`'s values.
    pub clique_off: Vec<usize>,
    /// Length of clique `c`'s values (its domain size).
    pub clique_len: Vec<usize>,
    /// Start of separator `s`'s current values.
    pub sep_off: Vec<usize>,
    /// Length of separator `s`'s values (shared by sep/fresh/ratio).
    pub sep_len: Vec<usize>,
    /// Start of separator `s`'s `fresh` scratch.
    pub fresh_off: Vec<usize>,
    /// Start of separator `s`'s `ratio` scratch.
    pub ratio_off: Vec<usize>,
    /// Slab length in `f64`s for a plain query state (the four active
    /// regions; also the prefix a reset restores).
    pub total: usize,
    /// Start of clique `c`'s saved post-collect snapshot (live states
    /// only; the saved clique block begins at `total`).
    pub saved_clique_off: Vec<usize>,
    /// Start of separator `s`'s saved collect message (live states only).
    pub saved_col_off: Vec<usize>,
    /// Slab length including the saved-message regions.
    pub live_total: usize,
}

/// The two precompiled plans of one junction-tree edge: both endpoint
/// cliques against the separator between them.
#[derive(Debug, Clone)]
pub struct EdgePlans {
    /// The deeper endpoint (message sender during collect).
    pub child_clique: usize,
    /// The shallower endpoint (message sender during distribute).
    pub parent_clique: usize,
    /// Plan for `clique_domains[child_clique]` → separator domain.
    pub child: KernelPlan,
    /// Plan for `clique_domains[parent_clique]` → separator domain.
    pub parent: KernelPlan,
}

/// Immutable, query-independent inference state for one network.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Variable cardinalities, indexed by id.
    pub cards: Vec<usize>,
    /// The junction tree, rooting and layer schedule.
    pub built: BuiltTree,
    /// One domain per clique (over the clique's variables).
    pub clique_domains: Vec<Arc<Domain>>,
    /// One domain per separator.
    pub sep_domains: Vec<Arc<Domain>>,
    /// One pair of precompiled kernel plans per separator edge.
    pub sep_plans: Vec<EdgePlans>,
    /// Slab offsets shared by every [`crate::state::WorkState`].
    pub layout: Arc<SlabLayout>,
    /// The slab every query starts from: clique regions hold the initial
    /// potentials (all assigned CPT factors multiplied in), separator and
    /// scratch regions hold `1.0`.
    pub initial_slab: Box<[f64]>,
    /// `assignment[v]` = clique that absorbed the CPT of variable `v`
    /// (the smallest clique containing the family).
    pub assignment: Vec<usize>,
    /// `home[v]` = smallest clique containing `v`; used both for evidence
    /// entry and for reading the variable's posterior.
    pub home: Vec<usize>,
}

impl Prepared {
    /// Builds the junction tree, plans, and initial slab for `net`.
    pub fn new(net: &BayesianNetwork, options: &JtreeOptions) -> Self {
        let built = build_junction_tree(net, options);
        let cards = net.cardinalities();

        let clique_domains: Vec<Arc<Domain>> = built
            .tree
            .cliques
            .iter()
            .map(|c| Arc::new(Domain::from_vars(&c.vars, &cards)))
            .collect();
        let sep_domains: Vec<Arc<Domain>> = built
            .tree
            .separators
            .iter()
            .map(|s| Arc::new(Domain::from_vars(&s.vars, &cards)))
            .collect();

        let sep_plans: Vec<EdgePlans> = built
            .tree
            .separators
            .iter()
            .zip(&sep_domains)
            .map(|(sep, dom)| {
                // The deeper endpoint sends during collect.
                let (child, parent) = if built.rooted.depth[sep.a] > built.rooted.depth[sep.b] {
                    (sep.a, sep.b)
                } else {
                    (sep.b, sep.a)
                };
                EdgePlans {
                    child_clique: child,
                    parent_clique: parent,
                    child: KernelPlan::new(&clique_domains[child], dom),
                    parent: KernelPlan::new(&clique_domains[parent], dom),
                }
            })
            .collect();

        let mut assignment = Vec::with_capacity(net.num_vars());
        let mut home = Vec::with_capacity(net.num_vars());
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            let family = net.dag().family(id);
            assignment.push(
                built
                    .tree
                    .smallest_containing(&family)
                    .expect("every CPT family fits in some clique"),
            );
            home.push(
                built
                    .tree
                    .smallest_containing_var(id)
                    .expect("every variable appears in some clique"),
            );
        }

        // Slab layout: cliques, then seps, then fresh, then ratio.
        let mut layout = SlabLayout {
            clique_off: Vec::with_capacity(clique_domains.len()),
            clique_len: Vec::with_capacity(clique_domains.len()),
            sep_off: Vec::with_capacity(sep_domains.len()),
            sep_len: Vec::with_capacity(sep_domains.len()),
            fresh_off: Vec::with_capacity(sep_domains.len()),
            ratio_off: Vec::with_capacity(sep_domains.len()),
            total: 0,
            saved_clique_off: Vec::with_capacity(clique_domains.len()),
            saved_col_off: Vec::with_capacity(sep_domains.len()),
            live_total: 0,
        };
        let mut off = 0usize;
        for d in &clique_domains {
            layout.clique_off.push(off);
            layout.clique_len.push(d.size());
            off += d.size();
        }
        for d in &sep_domains {
            layout.sep_off.push(off);
            layout.sep_len.push(d.size());
            off += d.size();
        }
        for (s, _) in sep_domains.iter().enumerate() {
            layout.fresh_off.push(off);
            off += layout.sep_len[s];
        }
        for (s, _) in sep_domains.iter().enumerate() {
            layout.ratio_off.push(off);
            off += layout.sep_len[s];
        }
        layout.total = off;
        // Saved-message regions (live states only): the clique snapshots
        // first — contiguous and in clique order, so one bulk copy
        // snapshots every post-collect clique — then the collect messages.
        for (c, _) in clique_domains.iter().enumerate() {
            layout.saved_clique_off.push(off);
            off += layout.clique_len[c];
        }
        for (s, _) in sep_domains.iter().enumerate() {
            layout.saved_col_off.push(off);
            off += layout.sep_len[s];
        }
        layout.live_total = off;

        // Initial potentials: ones, then multiply in each assigned factor
        // (prep-time allocation is fine; queries only copy the slab).
        let mut initial_cliques: Vec<PotentialTable> = clique_domains
            .iter()
            .map(|d| PotentialTable::ones(d.clone()))
            .collect();
        for v in 0..net.num_vars() {
            let factor = PotentialTable::from_cpt(net.cpt(VarId::from_index(v)), &cards);
            ops::extend_multiply(&mut initial_cliques[assignment[v]], &factor);
        }
        let mut initial_slab = vec![1.0f64; layout.total].into_boxed_slice();
        for (c, table) in initial_cliques.iter().enumerate() {
            let off = layout.clique_off[c];
            initial_slab[off..off + layout.clique_len[c]].copy_from_slice(table.values());
        }

        Prepared {
            cards,
            built,
            clique_domains,
            sep_domains,
            sep_plans,
            layout: Arc::new(layout),
            initial_slab,
            assignment,
            home,
        }
    }

    /// The precompiled plan mapping `clique`'s domain onto separator
    /// `sep`'s domain. `clique` must be one of the edge's two endpoints.
    #[inline]
    pub fn plan_for(&self, clique: usize, sep: usize) -> &KernelPlan {
        let edge = &self.sep_plans[sep];
        if edge.child_clique == clique {
            &edge.child
        } else {
            debug_assert_eq!(edge.parent_clique, clique, "clique not on edge {sep}");
            &edge.parent
        }
    }

    /// Clique `c`'s initial values (the slab region every query resets to).
    pub fn initial_clique(&self, c: usize) -> &[f64] {
        let off = self.layout.clique_off[c];
        &self.initial_slab[off..off + self.layout.clique_len[c]]
    }

    /// Number of cliques.
    pub fn num_cliques(&self) -> usize {
        self.built.tree.num_cliques()
    }

    /// Number of separators.
    pub fn num_separators(&self) -> usize {
        self.built.tree.num_separators()
    }

    /// Number of network variables.
    pub fn num_vars(&self) -> usize {
        self.cards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::datasets;

    #[test]
    fn initial_potentials_multiply_to_the_joint_mass() {
        // The product of all initial clique tables, marginalized fully,
        // must equal 1 (it is the full joint distribution).
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        // Since every CPT is assigned exactly once, the product of all
        // clique sums ≥ ... instead check: total probability mass equals 1
        // after a full propagation — covered by engine tests. Here, check
        // cheap structural facts.
        assert_eq!(prepared.num_cliques(), 6);
        assert_eq!(prepared.num_separators(), 5);
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            let fam = net.dag().family(id);
            let clique = &prepared.built.tree.cliques[prepared.assignment[v]];
            assert!(clique.contains_all(&fam), "family of {v} in its clique");
            assert!(prepared.built.tree.cliques[prepared.home[v]].contains(id));
        }
    }

    #[test]
    fn clique_domains_match_clique_vars() {
        let net = datasets::student();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        for (c, dom) in prepared.clique_domains.iter().enumerate() {
            assert_eq!(dom.vars(), prepared.built.tree.cliques[c].vars.as_slice());
            assert_eq!(prepared.layout.clique_len[c], dom.size());
            assert_eq!(prepared.initial_clique(c).len(), dom.size());
        }
        for (s, dom) in prepared.sep_domains.iter().enumerate() {
            assert_eq!(
                dom.vars(),
                prepared.built.tree.separators[s].vars.as_slice()
            );
            assert_eq!(prepared.layout.sep_len[s], dom.size());
        }
    }

    #[test]
    fn slab_layout_regions_are_disjoint_and_cover_the_slab() {
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        let layout = &prepared.layout;
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for c in 0..prepared.num_cliques() {
            ranges.push((layout.clique_off[c], layout.clique_len[c]));
        }
        for s in 0..prepared.num_separators() {
            ranges.push((layout.sep_off[s], layout.sep_len[s]));
            ranges.push((layout.fresh_off[s], layout.sep_len[s]));
            ranges.push((layout.ratio_off[s], layout.sep_len[s]));
        }
        ranges.sort_unstable();
        let mut end = 0usize;
        for (off, len) in ranges {
            assert_eq!(off, end, "regions must tile the slab without gaps");
            end = off + len;
        }
        assert_eq!(end, layout.total);
        assert_eq!(prepared.initial_slab.len(), layout.total);
        // The saved-message regions tile the live extension past `total`.
        let mut saved: Vec<(usize, usize)> = Vec::new();
        for c in 0..prepared.num_cliques() {
            saved.push((layout.saved_clique_off[c], layout.clique_len[c]));
        }
        for s in 0..prepared.num_separators() {
            saved.push((layout.saved_col_off[s], layout.sep_len[s]));
        }
        saved.sort_unstable();
        let mut end = layout.total;
        for (off, len) in saved {
            assert_eq!(off, end, "saved regions must tile past the active slab");
            end = off + len;
        }
        assert_eq!(end, layout.live_total);
        // Non-clique regions start at 1.0.
        for s in 0..prepared.num_separators() {
            for &off in [layout.sep_off[s], layout.fresh_off[s], layout.ratio_off[s]].iter() {
                assert!(prepared.initial_slab[off..off + layout.sep_len[s]]
                    .iter()
                    .all(|&v| v == 1.0));
            }
        }
    }

    #[test]
    fn sep_plans_match_edge_endpoints() {
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        for (s, edge) in prepared.sep_plans.iter().enumerate() {
            let sep = &prepared.built.tree.separators[s];
            let endpoints = [edge.child_clique, edge.parent_clique];
            assert!(endpoints.contains(&sep.a) && endpoints.contains(&sep.b));
            assert!(
                prepared.built.rooted.depth[edge.child_clique]
                    > prepared.built.rooted.depth[edge.parent_clique]
            );
            assert_eq!(edge.child.sub_size(), prepared.sep_domains[s].size());
            assert_eq!(
                edge.child.sup_size(),
                prepared.clique_domains[edge.child_clique].size()
            );
            assert_eq!(
                edge.parent.sup_size(),
                prepared.clique_domains[edge.parent_clique].size()
            );
            assert!(std::ptr::eq(
                prepared.plan_for(edge.child_clique, s),
                &edge.child
            ));
            assert!(std::ptr::eq(
                prepared.plan_for(edge.parent_clique, s),
                &edge.parent
            ));
        }
    }

    #[test]
    fn single_variable_network() {
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("solo", &["x", "y", "z"]);
        b.set_cpt(a, vec![], vec![0.5, 0.25, 0.25]).unwrap();
        let net = b.build().unwrap();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        assert_eq!(prepared.num_cliques(), 1);
        assert_eq!(prepared.num_separators(), 0);
        assert_eq!(prepared.initial_clique(0), &[0.5, 0.25, 0.25]);
    }
}
