//! Query-independent preparation: junction tree, domains, CPT assignment
//! and initial potentials.
//!
//! Everything here is computed once per network and shared (via `Arc`)
//! by every engine instance; per-query work only ever touches the
//! [`crate::state::WorkState`] copies.

use std::sync::Arc;

use fastbn_bayesnet::{BayesianNetwork, VarId};
use fastbn_jtree::{build_junction_tree, BuiltTree, JtreeOptions};
use fastbn_potential::{ops, Domain, PotentialTable};

/// Immutable, query-independent inference state for one network.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Variable cardinalities, indexed by id.
    pub cards: Vec<usize>,
    /// The junction tree, rooting and layer schedule.
    pub built: BuiltTree,
    /// One domain per clique (over the clique's variables).
    pub clique_domains: Vec<Arc<Domain>>,
    /// One domain per separator.
    pub sep_domains: Vec<Arc<Domain>>,
    /// Clique potentials after multiplying in all assigned CPT factors
    /// (the state every query starts from).
    pub initial_cliques: Vec<PotentialTable>,
    /// `assignment[v]` = clique that absorbed the CPT of variable `v`
    /// (the smallest clique containing the family).
    pub assignment: Vec<usize>,
    /// `home[v]` = smallest clique containing `v`; used both for evidence
    /// entry and for reading the variable's posterior.
    pub home: Vec<usize>,
}

impl Prepared {
    /// Builds the junction tree and initial potentials for `net`.
    pub fn new(net: &BayesianNetwork, options: &JtreeOptions) -> Self {
        let built = build_junction_tree(net, options);
        let cards = net.cardinalities();

        let clique_domains: Vec<Arc<Domain>> = built
            .tree
            .cliques
            .iter()
            .map(|c| Arc::new(Domain::from_vars(&c.vars, &cards)))
            .collect();
        let sep_domains: Vec<Arc<Domain>> = built
            .tree
            .separators
            .iter()
            .map(|s| Arc::new(Domain::from_vars(&s.vars, &cards)))
            .collect();

        let mut assignment = Vec::with_capacity(net.num_vars());
        let mut home = Vec::with_capacity(net.num_vars());
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            let family = net.dag().family(id);
            assignment.push(
                built
                    .tree
                    .smallest_containing(&family)
                    .expect("every CPT family fits in some clique"),
            );
            home.push(
                built
                    .tree
                    .smallest_containing_var(id)
                    .expect("every variable appears in some clique"),
            );
        }

        // Initial potentials: ones, then multiply in each assigned factor.
        let mut initial_cliques: Vec<PotentialTable> = clique_domains
            .iter()
            .map(|d| PotentialTable::ones(d.clone()))
            .collect();
        for v in 0..net.num_vars() {
            let factor = PotentialTable::from_cpt(net.cpt(VarId::from_index(v)), &cards);
            ops::extend_multiply(&mut initial_cliques[assignment[v]], &factor);
        }

        Prepared {
            cards,
            built,
            clique_domains,
            sep_domains,
            initial_cliques,
            assignment,
            home,
        }
    }

    /// Number of cliques.
    pub fn num_cliques(&self) -> usize {
        self.built.tree.num_cliques()
    }

    /// Number of separators.
    pub fn num_separators(&self) -> usize {
        self.built.tree.num_separators()
    }

    /// Number of network variables.
    pub fn num_vars(&self) -> usize {
        self.cards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::datasets;

    #[test]
    fn initial_potentials_multiply_to_the_joint_mass() {
        // The product of all initial clique tables, marginalized fully,
        // must equal 1 (it is the full joint distribution).
        let net = datasets::asia();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        // Since every CPT is assigned exactly once, the product of all
        // clique sums ≥ ... instead check: total probability mass equals 1
        // after a full propagation — covered by engine tests. Here, check
        // cheap structural facts.
        assert_eq!(prepared.num_cliques(), 6);
        assert_eq!(prepared.num_separators(), 5);
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            let fam = net.dag().family(id);
            let clique = &prepared.built.tree.cliques[prepared.assignment[v]];
            assert!(clique.contains_all(&fam), "family of {v} in its clique");
            assert!(prepared.built.tree.cliques[prepared.home[v]].contains(id));
        }
    }

    #[test]
    fn clique_domains_match_clique_vars() {
        let net = datasets::student();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        for (c, dom) in prepared.clique_domains.iter().enumerate() {
            assert_eq!(dom.vars(), prepared.built.tree.cliques[c].vars.as_slice());
            assert_eq!(prepared.initial_cliques[c].len(), dom.size());
        }
        for (s, dom) in prepared.sep_domains.iter().enumerate() {
            assert_eq!(
                dom.vars(),
                prepared.built.tree.separators[s].vars.as_slice()
            );
        }
    }

    #[test]
    fn single_variable_network() {
        let mut b = fastbn_bayesnet::NetworkBuilder::new();
        let a = b.add_var("solo", &["x", "y", "z"]);
        b.set_cpt(a, vec![], vec![0.5, 0.25, 0.25]).unwrap();
        let net = b.build().unwrap();
        let prepared = Prepared::new(&net, &JtreeOptions::default());
        assert_eq!(prepared.num_cliques(), 1);
        assert_eq!(prepared.num_separators(), 0);
        assert_eq!(prepared.initial_cliques[0].values(), &[0.5, 0.25, 0.25]);
    }
}
