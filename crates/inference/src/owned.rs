//! [`OwnedSession`]: the `'static`, movable counterpart of
//! [`Session`](crate::solver::Session).
//!
//! A borrowed `Session<'s>` is the cheapest handle when the solver
//! outlives the caller on the same stack. Serving runtimes invert that
//! relationship: worker threads, task executors, and detached clients
//! all need a handle they can *move into* a closure with no lifetime
//! tying them to the spawning frame. `OwnedSession` holds an
//! [`Arc<Solver>`] plus the same pooled scratch, so it is `Send` and
//! `'static` while answering queries bit-identically to the borrowed
//! session — both are type aliases of the same [`SessionCore`], so they
//! *cannot* diverge: every method body is literally shared.
//!
//! ```
//! use std::sync::Arc;
//! use fastbn_bayesnet::datasets;
//! use fastbn_inference::{EngineKind, Query, Solver};
//!
//! let net = datasets::asia();
//! let solver = Arc::new(
//!     Solver::builder(&net).engine(EngineKind::Hybrid).threads(2).build(),
//! );
//! let xray = net.var_id("XRay").unwrap();
//!
//! // Each worker takes its own owned session; no scoped threads needed.
//! let workers: Vec<_> = (0..4)
//!     .map(|_| {
//!         let mut session = Arc::clone(&solver).into_session();
//!         let query = Query::new().observe(xray, 0);
//!         std::thread::spawn(move || session.run(&query).unwrap())
//!     })
//!     .collect();
//! let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
//! assert!(results.windows(2).all(|w| w[0] == w[1]), "bit-identical");
//! ```

use std::sync::Arc;

use crate::solver::{SessionCore, Solver};

/// A query handle that co-owns its [`Solver`] (via `Arc`), so it can
/// move into spawned threads, worker pools, and task runtimes.
///
/// An alias of [`SessionCore`] — exactly the [`Session`](crate::solver::Session)
/// API (`run`, `run_batch`, `posteriors`, `mpe`, `joint_posterior`),
/// same pooled scratch, bit-identical results — but `'static` and
/// `Send`. Like `Session` it is deliberately not `Sync`: each
/// concurrent caller opens its own (cheap; scratch comes from the
/// solver's lock-free pool and returns there on drop).
///
/// Open one with [`Solver::into_session`] (consuming an `Arc` clone) or
/// [`OwnedSession::new`]:
///
/// ```
/// use std::sync::Arc;
/// use fastbn_bayesnet::{datasets, Evidence};
/// use fastbn_inference::{OwnedSession, Solver};
///
/// let net = datasets::sprinkler();
/// let rain = net.var_id("Rain").unwrap();
/// let solver = Arc::new(Solver::new(&net));
/// let mut session = OwnedSession::new(Arc::clone(&solver));
/// let handle = std::thread::spawn(move || {
///     let post = session.posteriors(&Evidence::empty()).unwrap();
///     post.marginal(rain).to_vec()
/// });
/// let marginal = handle.join().unwrap();
/// assert!((marginal.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
pub type OwnedSession = SessionCore<Arc<Solver>>;

impl OwnedSession {
    /// Opens an owned session over `solver`, drawing scratch from its
    /// pool (allocated fresh only when the pool is empty).
    pub fn new(solver: Arc<Solver>) -> OwnedSession {
        SessionCore::over(solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::{datasets, Evidence};

    use crate::query::Query;

    fn assert_send<T: Send + 'static>() {}

    #[test]
    fn owned_session_is_send_and_static() {
        assert_send::<OwnedSession>();
    }

    #[test]
    fn owned_session_returns_scratch_to_pool() {
        let solver = Arc::new(Solver::new(&datasets::sprinkler()));
        assert_eq!(solver.pooled_states(), 0);
        {
            let _s = Arc::clone(&solver).into_session();
            assert_eq!(solver.pooled_states(), 0, "state checked out");
        }
        assert_eq!(solver.pooled_states(), 1, "state returned on drop");
        {
            let _s = OwnedSession::new(Arc::clone(&solver));
            assert_eq!(solver.pooled_states(), 0, "reused, not reallocated");
        }
        assert_eq!(solver.pooled_states(), 1);
    }

    #[test]
    fn owned_matches_borrowed_session() {
        let net = datasets::asia();
        let solver = Arc::new(Solver::new(&net));
        let dysp = net.var_id("Dyspnea").unwrap();
        let ev = Evidence::from_pairs([(dysp, 0)]);
        let borrowed = solver.session().posteriors(&ev).unwrap();
        let mut owned = Arc::clone(&solver).into_session();
        let via_owned = owned.posteriors(&ev).unwrap();
        assert_eq!(borrowed.max_abs_diff(&via_owned), 0.0);
        assert_eq!(
            solver.session().mpe(&ev).unwrap(),
            owned.mpe(&ev).unwrap(),
            "MPE agrees too"
        );
    }

    #[test]
    fn owned_session_outlives_spawning_frame() {
        let net = datasets::asia();
        let xray = net.var_id("XRay").unwrap();
        let handle = {
            // The solver Arc moves into the session; nothing borrows the
            // spawning frame.
            let solver = Arc::new(Solver::new(&net));
            let mut session = solver.into_session();
            std::thread::spawn(move || {
                session
                    .run(&Query::new().observe(xray, 0))
                    .unwrap()
                    .into_posteriors()
                    .unwrap()
                    .prob_evidence
            })
        };
        assert!(handle.join().unwrap() > 0.0);
    }

    #[test]
    fn owned_joint_posterior_matches_borrowed() {
        let net = datasets::sprinkler();
        let solver = Arc::new(Solver::new(&net));
        let rain = net.var_id("Rain").unwrap();
        let sprinkler = net.var_id("Sprinkler").unwrap();
        let ev = Evidence::empty();
        let borrowed = solver
            .session()
            .joint_posterior(&ev, &[rain, sprinkler])
            .unwrap()
            .expect("Rain and Sprinkler share a clique");
        let owned = Arc::clone(&solver)
            .into_session()
            .joint_posterior(&ev, &[rain, sprinkler])
            .unwrap()
            .expect("Rain and Sprinkler share a clique");
        assert_eq!(borrowed.values(), owned.values());
    }
}
