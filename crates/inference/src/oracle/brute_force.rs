//! Brute-force joint enumeration — the simplest possible oracle, viable
//! only for small joint spaces but immune to almost every class of bug.

use fastbn_bayesnet::{BayesianNetwork, Evidence, VarId};

use crate::error::InferenceError;
use crate::posterior::Posteriors;

/// Refuses joints larger than this (2^22 assignments).
pub const MAX_JOINT: u64 = 1 << 22;

/// Computes all posteriors by enumerating the full joint distribution.
/// Panics if the joint exceeds [`MAX_JOINT`] states.
pub fn all_posteriors(
    net: &BayesianNetwork,
    evidence: &Evidence,
) -> Result<Posteriors, InferenceError> {
    evidence.validate(net)?;
    let n = net.num_vars();
    let cards = net.cardinalities();
    let joint: u64 = cards.iter().map(|&c| c as u64).product();
    assert!(
        joint <= MAX_JOINT,
        "joint of {joint} states exceeds brute-force limit"
    );

    let mut accum: Vec<Vec<f64>> = cards.iter().map(|&c| vec![0.0; c]).collect();
    let mut total = 0.0;
    let mut assignment = vec![0usize; n];
    loop {
        let consistent = evidence
            .iter()
            .all(|(var, state)| assignment[var.index()] == state);
        if consistent {
            let mut p = 1.0;
            for v in 0..n {
                let cpt = net.cpt(VarId::from_index(v));
                let parent_states: Vec<usize> = cpt
                    .parents()
                    .iter()
                    .map(|q| assignment[q.index()])
                    .collect();
                p *= cpt.probability(assignment[v], &parent_states);
                if p == 0.0 {
                    break;
                }
            }
            if p > 0.0 {
                total += p;
                for v in 0..n {
                    accum[v][assignment[v]] += p;
                }
            }
        }
        // Mixed-radix increment (last variable fastest).
        let mut i = n;
        loop {
            if i == 0 {
                // Wrapped: enumeration complete.
                if total <= 0.0 || !total.is_finite() {
                    return Err(InferenceError::ImpossibleEvidence);
                }
                for m in &mut accum {
                    for p in m.iter_mut() {
                        *p /= total;
                    }
                }
                return Ok(Posteriors::new(accum, total));
            }
            i -= 1;
            assignment[i] += 1;
            if assignment[i] < cards[i] {
                break;
            }
            assignment[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::variable_elimination as ve;
    use fastbn_bayesnet::datasets;

    #[test]
    fn brute_force_matches_ve_on_all_datasets() {
        for name in ["sprinkler", "asia", "cancer", "student"] {
            let net = datasets::by_name(name).unwrap();
            let bf = all_posteriors(&net, &Evidence::empty()).unwrap();
            let vr = ve::all_posteriors(&net, &Evidence::empty()).unwrap();
            assert!(bf.max_abs_diff(&vr) < 1e-10, "{name}");
            assert!((bf.prob_evidence - vr.prob_evidence).abs() < 1e-10);
        }
    }

    #[test]
    fn brute_force_with_evidence() {
        let net = datasets::sprinkler();
        let wet = net.var_id("WetGrass").unwrap();
        let rain = net.var_id("Rain").unwrap();
        let post = all_posteriors(&net, &Evidence::from_pairs([(wet, 0)])).unwrap();
        assert!((post.marginal(rain)[0] - 0.70793).abs() < 1e-4);
        assert_eq!(post.marginal(wet), &[1.0, 0.0]);
    }

    #[test]
    fn impossible_evidence() {
        let net = datasets::asia();
        let tub = net.var_id("Tuberculosis").unwrap();
        let either = net.var_id("TbOrCa").unwrap();
        assert_eq!(
            all_posteriors(&net, &Evidence::from_pairs([(tub, 0), (either, 1)])).unwrap_err(),
            InferenceError::ImpossibleEvidence
        );
    }
}
