//! Correctness oracles: algorithms that are slower but simpler than the
//! junction-tree engines, used to validate every engine's posteriors.

pub mod brute_force;
pub mod variable_elimination;
