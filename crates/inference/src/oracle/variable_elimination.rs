//! Variable elimination — an independent exact-inference algorithm used
//! as the primary cross-check for the junction-tree engines.

use std::sync::Arc;

use fastbn_bayesnet::{BayesianNetwork, Evidence, VarId};
use fastbn_potential::{ops, Domain, PotentialTable};

use crate::error::InferenceError;
use crate::posterior::Posteriors;

/// All evidence-reduced CPT factors of the network.
fn reduced_factors(net: &BayesianNetwork, evidence: &Evidence) -> Vec<PotentialTable> {
    let cards = net.cardinalities();
    net.cpts()
        .iter()
        .map(|cpt| {
            let mut f = PotentialTable::from_cpt(cpt, &cards);
            for (var, state) in evidence.iter() {
                if f.domain().contains(var) {
                    ops::reduce_evidence(&mut f, var, state);
                }
            }
            f
        })
        .collect()
}

/// Multiplies a set of factors into one table over their union domain.
fn multiply_all(factors: &[&PotentialTable]) -> PotentialTable {
    let union = factors
        .iter()
        .fold(Domain::scalar(), |acc, f| acc.union(f.domain()));
    let mut out = PotentialTable::ones(Arc::new(union));
    for f in factors {
        ops::extend_multiply(&mut out, f);
    }
    out
}

/// Eliminates every variable except those in `keep` (sorted), using a
/// greedy min-product-size order. Returns the final table over ⊆ `keep`.
fn eliminate_all_but(mut factors: Vec<PotentialTable>, keep: &[VarId]) -> PotentialTable {
    loop {
        // Collect remaining variables not kept.
        let mut candidates: Vec<VarId> = factors
            .iter()
            .flat_map(|f| f.domain().vars().iter().copied())
            .filter(|v| keep.binary_search(v).is_err())
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let Some(&var) = candidates
            .iter()
            .min_by_key(|&&v| product_size_if_eliminated(&factors, v))
        else {
            break;
        };
        // Pull out all factors mentioning `var`.
        let (with, without): (Vec<_>, Vec<_>) =
            factors.into_iter().partition(|f| f.domain().contains(var));
        let refs: Vec<&PotentialTable> = with.iter().collect();
        let product = multiply_all(&refs);
        let target = Arc::new(
            product
                .domain()
                .minus(&Domain::new(vec![(var, product.domain().card_of(var))])),
        );
        let summed = ops::marginalize(&product, target);
        factors = without;
        factors.push(summed);
    }
    let refs: Vec<&PotentialTable> = factors.iter().collect();
    multiply_all(&refs)
}

/// Size of the product domain that eliminating `v` would create.
fn product_size_if_eliminated(factors: &[PotentialTable], v: VarId) -> usize {
    let union = factors
        .iter()
        .filter(|f| f.domain().contains(v))
        .fold(Domain::scalar(), |acc, f| acc.union(f.domain()));
    union.size()
}

/// `P(evidence)` by eliminating every variable.
pub fn prob_evidence(net: &BayesianNetwork, evidence: &Evidence) -> Result<f64, InferenceError> {
    evidence.validate(net)?;
    let result = eliminate_all_but(reduced_factors(net, evidence), &[]);
    Ok(result.sum())
}

/// Posterior of a single variable given evidence.
pub fn posterior_of(
    net: &BayesianNetwork,
    evidence: &Evidence,
    query: VarId,
) -> Result<Vec<f64>, InferenceError> {
    evidence.validate(net)?;
    if let Some(state) = evidence.get(query) {
        let mut point = vec![0.0; net.cardinality(query)];
        point[state] = 1.0;
        return Ok(point);
    }
    let table = eliminate_all_but(reduced_factors(net, evidence), &[query]);
    let mut m = ops::marginal_of_var(&table, query);
    let total: f64 = m.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return Err(InferenceError::ImpossibleEvidence);
    }
    for p in &mut m {
        *p /= total;
    }
    Ok(m)
}

/// All posteriors (one VE run per variable — slow, but an oracle).
pub fn all_posteriors(
    net: &BayesianNetwork,
    evidence: &Evidence,
) -> Result<Posteriors, InferenceError> {
    let pe = prob_evidence(net, evidence)?;
    if pe <= 0.0 || !pe.is_finite() {
        return Err(InferenceError::ImpossibleEvidence);
    }
    let marginals = (0..net.num_vars())
        .map(|v| posterior_of(net, evidence, VarId::from_index(v)))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Posteriors::new(marginals, pe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::datasets;

    #[test]
    fn asia_prior_marginals() {
        let net = datasets::asia();
        let post = all_posteriors(&net, &Evidence::empty()).unwrap();
        let get = |name: &str| post.marginal(net.var_id(name).unwrap())[0];
        assert!((get("Tuberculosis") - 0.0104).abs() < 1e-9);
        assert!((get("TbOrCa") - 0.064828).abs() < 1e-9);
        assert!((get("Dyspnea") - 0.4359706).abs() < 1e-7);
        assert!((post.prob_evidence - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sprinkler_rain_given_wet() {
        let net = datasets::sprinkler();
        let wet = net.var_id("WetGrass").unwrap();
        let rain = net.var_id("Rain").unwrap();
        let m = posterior_of(&net, &Evidence::from_pairs([(wet, 0)]), rain).unwrap();
        assert!((m[0] - 0.70793).abs() < 1e-4);
    }

    #[test]
    fn evidence_probability_is_consistent() {
        // P(e) from VE equals Σ_x P(x, e) via chain rule on a small net.
        let net = datasets::cancer();
        let xray = net.var_id("XRay").unwrap();
        let pe = prob_evidence(&net, &Evidence::from_pairs([(xray, 0)])).unwrap();
        // Closed form: P(xray=pos) = 0.9·P(C) + 0.2·(1 − P(C)).
        let p_cancer = 0.9 * (0.3 * 0.03 + 0.7 * 0.001) + 0.1 * (0.3 * 0.05 + 0.7 * 0.02);
        let expected = 0.9 * p_cancer + 0.2 * (1.0 - p_cancer);
        assert!((pe - expected).abs() < 1e-9, "{pe} vs {expected}");
    }

    #[test]
    fn impossible_evidence_detected() {
        let net = datasets::asia();
        let tub = net.var_id("Tuberculosis").unwrap();
        let either = net.var_id("TbOrCa").unwrap();
        let err = all_posteriors(&net, &Evidence::from_pairs([(tub, 0), (either, 1)])).unwrap_err();
        assert_eq!(err, InferenceError::ImpossibleEvidence);
    }

    #[test]
    fn invalid_evidence_rejected() {
        let net = datasets::sprinkler();
        let err = all_posteriors(&net, &Evidence::from_pairs([(VarId(0), 9)])).unwrap_err();
        assert!(matches!(err, InferenceError::InvalidEvidence(_)));
    }
}
