//! FB-L2 fixture: the atomic-ordering policy.
//!
//! `_seq` functions must use `SeqCst`; `Relaxed` is free anywhere;
//! every other ordering needs an `// ORDERING:` note.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn advance_seq(c: &AtomicUsize) {
    c.fetch_add(1, Ordering::SeqCst); // ok: SeqCst inside a `_seq` fn
    c.store(0, Ordering::Relaxed); //~ FB-L2
}

pub fn throughput(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed) // ok: Relaxed is always free
}

pub fn handshake(c: &AtomicUsize) -> usize {
    c.load(Ordering::Acquire) //~ FB-L2
}

pub fn annotated_handshake(c: &AtomicUsize) -> usize {
    // ORDERING: pairs with the Release store in the publisher; the
    // note is what FB-L2 asks for.
    c.load(Ordering::Acquire)
}

pub fn annotated_same_line(c: &AtomicUsize) {
    c.store(1, Ordering::Release); // ORDERING: publishes the seeded state.
}

pub fn suppressed_site(c: &AtomicUsize) -> usize {
    // fastbn: allow(ordering-policy): exercised by the suppression test.
    c.fetch_add(1, Ordering::AcqRel)
}

pub fn comparisons(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b) // ok: `cmp::Ordering` values never parse as atomic orderings
}
