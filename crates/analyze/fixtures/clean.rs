//! A file that trips no lint: safe code, no atomics, no raw pointers,
//! no opt-in markers.

/// Adds one, saturating.
pub fn inc(x: u64) -> u64 {
    x.saturating_add(1)
}

/// Sums a slice.
pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
