//! FB-L4 fixture: the audit marker admits raw-pointer primitives.
//!
//! fastbn: audited-raw-ptr
//!
//! This file must produce zero findings: FB-L4 is disabled by the
//! marker and every `unsafe` site carries its FB-L1 justification.

/// Borrows `n` elements starting at `p`.
///
/// # Safety
///
/// `p` must point to `n` initialized, live `f64`s with no aliasing
/// `&mut` to any of them for the returned lifetime.
pub unsafe fn view(p: *const f64, n: usize) -> &'static [f64] {
    // SAFETY: forwarded caller contract.
    unsafe { std::slice::from_raw_parts(p, n) }
}

pub fn split_base(xs: &mut [f64]) -> *mut f64 {
    xs.as_mut_ptr()
}
