//! FB-L4 fixture: raw-pointer primitives *without* the audit marker.

pub fn shared_base(xs: &[f64]) -> *const f64 {
    xs.as_ptr() // ok: `as_ptr` (shared) is not a confined primitive
}

pub fn alias(xs: &mut [f64]) -> &mut [f64] {
    let p = xs.as_mut_ptr(); //~ FB-L4
    let n = xs.len();
    // SAFETY: identity reborrow of a live unique slice.
    unsafe { std::slice::from_raw_parts_mut(p, n) } //~ FB-L4
}

pub fn launder(b: Box<u8>) -> *mut u8 {
    // fastbn: allow(slab-discipline): exercised by the suppression test.
    Box::into_raw(b)
}
