//! FB-L3 fixture: allocation idioms in an opted-in hot module.
//!
//! fastbn: deny-hot-alloc

pub fn hot_path(xs: &[f64]) -> f64 {
    let scratch: Vec<f64> = Vec::new(); //~ FB-L3
    let staged = vec![0.0f64; 8]; //~ FB-L3
    let copied = xs.to_vec(); //~ FB-L3
    let boxed = Box::new(xs[0]); //~ FB-L3
    let doubled = xs.iter().map(|x| x * 2.0).collect::<Vec<f64>>(); //~ FB-L3
    let echoed = copied.clone(); //~ FB-L3
    scratch.len() as f64 + staged[0] + *boxed + doubled[0] + echoed[0]
}

// fastbn: allow(hot-alloc): cold constructor — allocates once at startup,
// never on the propagation path.
pub fn cold_setup(n: usize) -> Vec<f64> {
    let mut buf = Vec::new();
    buf.resize(n, 0.0);
    buf
}

pub fn line_allowed() -> Vec<f64> {
    vec![1.0] // fastbn: allow(hot-alloc): documented one-off
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_allocates_freely() {
        let v = vec![1.0, 2.0];
        assert_eq!(v.clone().len(), 2);
    }
}
