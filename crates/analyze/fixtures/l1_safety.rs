//! FB-L1 fixture: `unsafe` sites and their `SAFETY:` justifications.
//!
//! Lines with a trailing expectation marker must each produce exactly
//! one safety-comment finding; every other line must stay silent.

pub fn unjustified() -> u8 {
    let x = unsafe { std::mem::zeroed::<u8>() }; //~ FB-L1
    x
}

pub fn justified_same_line() -> u8 {
    let x = unsafe { std::mem::zeroed::<u8>() }; // SAFETY: u8 has no invalid bit patterns.
    x
}

pub fn justified_block_above() -> u8 {
    // SAFETY: u8 has no invalid bit patterns, so an all-zero value is
    // a valid u8.
    let x = unsafe { std::mem::zeroed::<u8>() };
    x
}

pub fn suppressed_block() -> u8 {
    // fastbn: allow(safety-comment): exercised by the suppression test.
    unsafe { std::mem::zeroed::<u8>() }
}

struct Bare(*mut u8);

unsafe impl Send for Bare {} //~ FB-L1

struct Token(*mut u8);

// SAFETY: Token's pointer is only dereferenced on the owning thread;
// the handle itself is just an address, so moving or sharing it is
// harmless. One comment covers the grouped pair below.
unsafe impl Send for Token {}
unsafe impl Sync for Token {}

unsafe fn bare_unsafe_fn() {} //~ FB-L1

// SAFETY: no preconditions; the body performs no unsafe operations.
unsafe fn commented_unsafe_fn() {}

pub unsafe fn undocumented(p: *const u8) -> u8 { //~ FB-L1
    // SAFETY: dereferencing `p` is the caller's contract.
    unsafe { *p }
}

/// Reads the byte behind `p`.
///
/// # Safety
///
/// `p` must be non-null, aligned, and point to a live initialized byte.
pub unsafe fn documented(p: *const u8) -> u8 {
    // SAFETY: forwarded caller contract.
    unsafe { *p }
}
