//! The lint catalog and the per-file lint passes.
//!
//! Four lints enforce the workspace's hand-audited invariants:
//!
//! | id    | name              | invariant |
//! |-------|-------------------|-----------|
//! | FB-L1 | `safety-comment`  | every `unsafe` site carries a `// SAFETY:` justification; every `pub unsafe fn` documents a `# Safety` section |
//! | FB-L2 | `ordering-policy` | staged `_seq` counters are `SeqCst`; `Relaxed` is free (throughput counters); every other ordering carries an `// ORDERING:` note |
//! | FB-L3 | `hot-alloc`       | modules marked `//! fastbn: deny-hot-alloc` contain no allocation idioms outside `#[cfg(test)]` |
//! | FB-L4 | `slab-discipline` | raw-pointer primitives live only in modules marked `//! fastbn: audited-raw-ptr` |
//!
//! Suppression: a comment `fastbn: allow(<name>)` (or `allow(FB-Lk)`) on
//! the offending line or in the comment block directly above it silences
//! one site; for `hot-alloc`, the same comment above a `fn` signature
//! silences the whole function (how cold-path constructors document
//! their deliberate allocations).

use std::fmt;

use crate::lexer::{ScannedFile, Tok};

/// The lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// FB-L1: `unsafe` without a `// SAFETY:` justification.
    SafetyComment,
    /// FB-L2: atomic `Ordering` outside the workspace policy.
    OrderingPolicy,
    /// FB-L3: allocation idiom in a `deny-hot-alloc` module.
    HotAlloc,
    /// FB-L4: raw-pointer primitive outside an audited module.
    SlabDiscipline,
}

impl Lint {
    /// All lints, in id order.
    pub const ALL: [Lint; 4] = [
        Lint::SafetyComment,
        Lint::OrderingPolicy,
        Lint::HotAlloc,
        Lint::SlabDiscipline,
    ];

    /// Stable id (`FB-L1` …).
    pub fn id(self) -> &'static str {
        match self {
            Lint::SafetyComment => "FB-L1",
            Lint::OrderingPolicy => "FB-L2",
            Lint::HotAlloc => "FB-L3",
            Lint::SlabDiscipline => "FB-L4",
        }
    }

    /// Human name, also the `allow(...)` key.
    pub fn name(self) -> &'static str {
        match self {
            Lint::SafetyComment => "safety-comment",
            Lint::OrderingPolicy => "ordering-policy",
            Lint::HotAlloc => "hot-alloc",
            Lint::SlabDiscipline => "slab-discipline",
        }
    }

    /// One-line description for `--list-lints`.
    pub fn describe(self) -> &'static str {
        match self {
            Lint::SafetyComment => {
                "every `unsafe` block/impl/fn needs a `// SAFETY:` comment; every pub unsafe fn a `# Safety` doc section"
            }
            Lint::OrderingPolicy => {
                "`_seq` fns use SeqCst only; Relaxed is free; other orderings need an `// ORDERING:` note"
            }
            Lint::HotAlloc => {
                "no Vec::new/vec!/to_vec/Box::new/collect::<Vec/.clone() in `//! fastbn: deny-hot-alloc` modules outside tests"
            }
            Lint::SlabDiscipline => {
                "from_raw_parts(_mut)/from_raw/into_raw/transmute/as_mut_ptr only in `//! fastbn: audited-raw-ptr` modules"
            }
        }
    }
}

/// One diagnostic, anchored to a 1-based source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as handed to the linter (workspace-relative in `--check`).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub lint: Lint,
    /// What was found and how to fix it.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} ({}): {}",
            self.path,
            self.line,
            self.lint.id(),
            self.lint.name(),
            self.message
        )
    }
}

/// Per-file lint context derived from the file's path.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Path label used in findings.
    pub path: String,
    /// True under a `tests/`, `benches/` or `examples/` directory:
    /// FB-L3/FB-L4 do not apply (test scaffolding legitimately allocates
    /// and, for the counting allocator, implements raw traits).
    pub test_context: bool,
}

/// Module-level markers read from `//!` comments.
const MARKER_DENY_HOT_ALLOC: &str = "fastbn: deny-hot-alloc";
const MARKER_AUDITED_RAW_PTR: &str = "fastbn: audited-raw-ptr";

/// Runs every lint over one scanned file.
pub fn lint_scanned(scan: &ScannedFile, ctx: &FileContext) -> Vec<Finding> {
    let mut findings = Vec::new();
    lint_safety(scan, ctx, &mut findings);
    lint_ordering(scan, ctx, &mut findings);
    if !ctx.test_context {
        if has_marker(scan, MARKER_DENY_HOT_ALLOC) {
            lint_hot_alloc(scan, ctx, &mut findings);
        }
        if !has_marker(scan, MARKER_AUDITED_RAW_PTR) {
            lint_slab_discipline(scan, ctx, &mut findings);
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Whether any module doc comment *is* `marker` (exact line match, so
/// prose that merely quotes a marker — this file's own docs, say — does
/// not opt a module in).
fn has_marker(scan: &ScannedFile, marker: &str) -> bool {
    scan.lines
        .iter()
        .filter(|l| l.comment.starts_with("//!"))
        .any(|l| l.comment.trim_start_matches("//!").trim() == marker)
}

/// Lines whose comments justify the code line directly below them: pure
/// comments, attributes, and (for grouped `unsafe impl` pairs) other
/// `unsafe impl` lines are transparent; anything else stops the walk.
fn comment_block_above(scan: &ScannedFile, line: usize) -> Vec<&str> {
    let mut comments = Vec::new();
    let mut i = line;
    for _ in 0..15 {
        if i == 0 {
            break;
        }
        i -= 1;
        let l = &scan.lines[i];
        if !l.comment.is_empty() {
            comments.push(l.comment.as_str());
        }
        let toks = &scan.tokens[i];
        let transparent = toks.is_empty()
            || toks[0].text == "#"
            || (toks[0].text == "unsafe" && toks.get(1).map(|t| t.text.as_str()) == Some("impl"));
        if !transparent {
            break;
        }
        if toks.is_empty() && l.comment.is_empty() {
            // Blank line: the justification must be adjacent.
            break;
        }
    }
    comments
}

/// Whether the site at `line` (0-based) carries `needle` in its own
/// comment or the comment block above.
fn annotated(scan: &ScannedFile, line: usize, needle: &str) -> bool {
    if scan.lines[line].comment.contains(needle) {
        return true;
    }
    comment_block_above(scan, line)
        .iter()
        .any(|c| c.contains(needle))
}

/// Whether the site at `line` is suppressed for `lint` via
/// `fastbn: allow(...)`.
fn suppressed(scan: &ScannedFile, line: usize, lint: Lint) -> bool {
    let by_name = format!("fastbn: allow({})", lint.name());
    let by_id = format!("fastbn: allow({})", lint.id());
    annotated(scan, line, &by_name) || annotated(scan, line, &by_id)
}

/// Whether `line` sits inside a fn whose signature carries a
/// `fastbn: allow(...)` for `lint` (fn-scoped suppression, FB-L3 only).
fn fn_suppressed(scan: &ScannedFile, line: usize, lint: Lint) -> bool {
    match scan.enclosing_fn(line) {
        Some(f) => suppressed(scan, f.sig_line, lint),
        None => false,
    }
}

/// Doc block above `line` contains a `# Safety` section.
fn doc_safety_above(scan: &ScannedFile, line: usize) -> bool {
    let mut i = line;
    for _ in 0..40 {
        if i == 0 {
            return false;
        }
        i -= 1;
        let l = &scan.lines[i];
        if l.has_doc_comment() {
            if l.comment.contains("# Safety") {
                return true;
            }
            continue;
        }
        let toks = &scan.tokens[i];
        // Attributes and pure (non-doc) comment lines are transparent.
        let transparent =
            (!toks.is_empty() && toks[0].text == "#") || (toks.is_empty() && !l.comment.is_empty());
        if !transparent {
            return false;
        }
    }
    false
}

/// FB-L1: `unsafe` sites need `// SAFETY:`; `pub unsafe fn` needs
/// `# Safety` docs.
fn lint_safety(scan: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    for (lno, toks) in scan.tokens.iter().enumerate() {
        let Some(pos) = toks.iter().position(|t| t.text == "unsafe") else {
            continue;
        };
        if suppressed(scan, lno, Lint::SafetyComment) {
            continue;
        }
        let next = toks.get(pos + 1).map(|t| t.text.as_str());
        let is_fn = toks.iter().skip(pos).take(3).any(|t| t.text == "fn");
        let is_pub = toks.first().map(|t| t.text.as_str()) == Some("pub");
        let has_safety = annotated(scan, lno, "SAFETY:");
        if is_fn {
            if is_pub {
                if !doc_safety_above(scan, lno) {
                    out.push(Finding {
                        path: ctx.path.clone(),
                        line: lno + 1,
                        lint: Lint::SafetyComment,
                        message: "`pub unsafe fn` without a `# Safety` rustdoc section \
                                  stating the caller's obligations"
                            .into(),
                    });
                }
            } else if !has_safety && !doc_safety_above(scan, lno) {
                out.push(Finding {
                    path: ctx.path.clone(),
                    line: lno + 1,
                    lint: Lint::SafetyComment,
                    message: "`unsafe fn` without a `// SAFETY:` comment or `# Safety` \
                              doc section"
                        .into(),
                });
            }
        } else if !has_safety {
            let what = if next == Some("impl") {
                "`unsafe impl`"
            } else {
                "`unsafe` block"
            };
            out.push(Finding {
                path: ctx.path.clone(),
                line: lno + 1,
                lint: Lint::SafetyComment,
                message: format!(
                    "{what} without a `// SAFETY:` comment justifying the invariant \
                     (same line or the comment block directly above)"
                ),
            });
        }
    }
}

/// Atomic ordering variants (cmp::Ordering's Less/Equal/Greater never
/// match, so no path analysis is needed to tell the two enums apart).
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// FB-L2: the ordering policy.
fn lint_ordering(scan: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    for (lno, toks) in scan.tokens.iter().enumerate() {
        for (i, t) in toks.iter().enumerate() {
            if t.text != "Ordering" {
                continue;
            }
            let path_sep = toks.get(i + 1).map(|x| x.text.as_str()) == Some(":")
                && toks.get(i + 2).map(|x| x.text.as_str()) == Some(":");
            if !path_sep {
                continue;
            }
            let Some(variant) = toks.get(i + 3).map(|x| x.text.as_str()) else {
                continue;
            };
            if !ATOMIC_ORDERINGS.contains(&variant) {
                continue;
            }
            if suppressed(scan, lno, Lint::OrderingPolicy) {
                continue;
            }
            let in_seq_fn = scan
                .enclosing_fn(lno)
                .map(|f| f.name.ends_with("_seq"))
                .unwrap_or(false);
            if in_seq_fn {
                if variant != "SeqCst" {
                    out.push(Finding {
                        path: ctx.path.clone(),
                        line: lno + 1,
                        lint: Lint::OrderingPolicy,
                        message: format!(
                            "`Ordering::{variant}` inside a `_seq` function: staged \
                             pipeline counters must use `SeqCst` (the serving stack's \
                             cross-counter snapshot invariants depend on it)"
                        ),
                    });
                }
                continue;
            }
            if variant == "Relaxed" {
                continue; // throughput counters: always fine
            }
            if !annotated(scan, lno, "ORDERING:") {
                out.push(Finding {
                    path: ctx.path.clone(),
                    line: lno + 1,
                    lint: Lint::OrderingPolicy,
                    message: format!(
                        "`Ordering::{variant}` without an `// ORDERING:` note explaining \
                         what it synchronizes with (policy: SeqCst only in `_seq` \
                         staging fns, Relaxed for throughput counters, everything else \
                         annotated)"
                    ),
                });
            }
        }
    }
}

/// The allocation idioms FB-L3 rejects, as token subsequences.
const ALLOC_PATTERNS: [(&[&str], &str); 6] = [
    (&["Vec", ":", ":", "new"], "Vec::new"),
    (&["vec", "!"], "vec!"),
    (&[".", "to_vec"], ".to_vec()"),
    (&["Box", ":", ":", "new"], "Box::new"),
    (&["collect", ":", ":", "<", "Vec"], "collect::<Vec<_>>"),
    (&[".", "clone", "(", ")"], ".clone()"),
];

/// FB-L3: allocation idioms in opted-in hot-path modules.
fn lint_hot_alloc(scan: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    for (lno, toks) in scan.tokens.iter().enumerate() {
        if scan.in_test[lno] || toks.is_empty() {
            continue;
        }
        for (pattern, label) in ALLOC_PATTERNS {
            if !contains_token_seq(toks, pattern) {
                continue;
            }
            if suppressed(scan, lno, Lint::HotAlloc) || fn_suppressed(scan, lno, Lint::HotAlloc) {
                continue;
            }
            out.push(Finding {
                path: ctx.path.clone(),
                line: lno + 1,
                lint: Lint::HotAlloc,
                message: format!(
                    "`{label}` in a `deny-hot-alloc` module: hot paths must stay \
                     allocation-free (move the allocation out, or mark the enclosing \
                     cold fn with `// fastbn: allow(hot-alloc): <why>`)"
                ),
            });
        }
    }
}

/// Raw-pointer primitives FB-L4 confines to audited modules.
const RAW_PTR_TOKENS: [&str; 6] = [
    "from_raw_parts",
    "from_raw_parts_mut",
    "from_raw",
    "into_raw",
    "transmute",
    "as_mut_ptr",
];

/// FB-L4: raw-pointer primitives outside audited modules.
fn lint_slab_discipline(scan: &ScannedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    for (lno, toks) in scan.tokens.iter().enumerate() {
        if scan.in_test[lno] {
            continue;
        }
        for t in toks {
            if !RAW_PTR_TOKENS.contains(&t.text.as_str()) {
                continue;
            }
            if suppressed(scan, lno, Lint::SlabDiscipline) {
                continue;
            }
            out.push(Finding {
                path: ctx.path.clone(),
                line: lno + 1,
                lint: Lint::SlabDiscipline,
                message: format!(
                    "raw-pointer primitive `{}` outside an audited module: slab/raw \
                     memory tricks belong in the `//! fastbn: audited-raw-ptr` helpers \
                     (state.rs, ops_par.rs, pool.rs, region.rs, solver.rs)",
                    t.text
                ),
            });
            break; // one finding per line is enough
        }
    }
}

/// Whether `needle` occurs as a contiguous token subsequence.
fn contains_token_seq(toks: &[Tok], needle: &[&str]) -> bool {
    if needle.is_empty() || toks.len() < needle.len() {
        return false;
    }
    toks.windows(needle.len())
        .any(|w| w.iter().zip(needle).all(|(t, n)| t.text == *n))
}
