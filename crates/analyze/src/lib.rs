//! `fastbn-analyze` — the workspace invariant linter.
//!
//! The fastbn workspace buys its kernel speed with a deliberately small
//! unsafe surface: one contiguous f64 slab, disjoint-region splitting,
//! raw-pointer dispatch to worker threads, and hand-rolled atomics in
//! the pool/serving/telemetry layers. This crate makes the rules of
//! that surface *machine-checked* instead of convention-checked: a
//! dependency-free, line-level lexer ([`lexer`]) feeds four named lints
//! ([`lints`]) that every CI run enforces with zero findings allowed.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p fastbn-analyze -- --check
//! ```
//!
//! See `crates/analyze/README.md` for the lint catalog, marker and
//! suppression syntax, and the companion *dynamic* slab race detector
//! that lives in `fastbn-inference`'s `state.rs`.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use lints::{FileContext, Finding, Lint};

/// Directory names the tree walk never descends into. `fixtures`
/// excludes the linter's own deliberately-violating test inputs.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Directory names that put files into *test context* (FB-L3/FB-L4 are
/// about production hot paths and do not apply there).
const TEST_DIRS: [&str; 3] = ["tests", "benches", "examples"];

/// The result of linting a tree: findings plus how many files were
/// actually scanned (so "clean" is distinguishable from "walked
/// nothing").
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files linted.
    pub files: usize,
}

impl Report {
    /// True when no lint fired.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints one source string under an explicit context (the unit the
/// fixture tests drive directly).
pub fn lint_source(source: &str, ctx: &FileContext) -> Vec<Finding> {
    let scan = lexer::ScannedFile::scan(source);
    lints::lint_scanned(&scan, ctx)
}

/// Derives the lint context from a path: label plus whether any
/// component is a test-scaffolding directory.
pub fn context_for(path: &Path) -> FileContext {
    let test_context = path
        .components()
        .any(|c| TEST_DIRS.contains(&c.as_os_str().to_str().unwrap_or("")));
    FileContext {
        path: path.display().to_string(),
        test_context,
    }
}

/// Lints a single file from disk.
pub fn lint_file(path: &Path) -> io::Result<Vec<Finding>> {
    let source = fs::read_to_string(path)?;
    Ok(lint_source(&source, &context_for(path)))
}

/// Lints every `.rs` file under `root` (skipping `target/`, `.git/` and
/// `fixtures/`), or the file itself when `root` is one. Paths in
/// findings are reported relative to `root` when possible.
pub fn check_tree(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    let mut files: Vec<PathBuf> = Vec::new();
    while let Some(dir) = stack.pop() {
        if dir.is_file() {
            files.push(dir);
            continue;
        }
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_str().unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    for path in files {
        let source = fs::read_to_string(&path)?;
        // When `root` is the file itself, stripping would leave an
        // empty label — keep the full path in that case.
        let label = match path.strip_prefix(root) {
            Ok(rel) if !rel.as_os_str().is_empty() => rel,
            _ => &path,
        };
        let mut ctx = context_for(&path);
        ctx.path = label.display().to_string();
        report.findings.extend(lint_source(&source, &ctx));
        report.files += 1;
    }
    report
        .findings
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_classifies_test_dirs() {
        assert!(context_for(Path::new("crates/x/tests/foo.rs")).test_context);
        assert!(context_for(Path::new("crates/x/benches/foo.rs")).test_context);
        assert!(context_for(Path::new("examples/foo.rs")).test_context);
        assert!(!context_for(Path::new("crates/x/src/foo.rs")).test_context);
    }

    #[test]
    fn lint_source_smoke() {
        let ctx = FileContext {
            path: "mem.rs".into(),
            test_context: false,
        };
        let findings = lint_source("fn main() { let _ = unsafe { f() }; }\n", &ctx);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, Lint::SafetyComment);
        let clean = lint_source(
            "fn main() {\n    // SAFETY: f has no preconditions.\n    let _ = unsafe { f() };\n}\n",
            &ctx,
        );
        assert!(clean.is_empty(), "{clean:?}");
    }
}
