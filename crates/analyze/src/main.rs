//! CLI for the workspace invariant linter.
//!
//! ```text
//! fastbn-analyze --check [--root DIR]   # lint a tree, exit 1 on findings
//! fastbn-analyze --check PATH [PATH..]  # lint explicit files/dirs
//! fastbn-analyze --list-lints           # print the lint catalog
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fastbn_analyze::{check_tree, Lint};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `--check` is the (only) mode; accepted explicitly so CI
            // invocations read as intent.
            "--check" => {}
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fastbn-analyze: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list-lints" => list = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("fastbn-analyze: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    if list {
        for lint in Lint::ALL {
            println!("{} ({}): {}", lint.id(), lint.name(), lint.describe());
        }
        return ExitCode::SUCCESS;
    }

    if paths.is_empty() {
        paths.push(root.clone().unwrap_or_else(|| PathBuf::from(".")));
    }

    let mut findings = 0usize;
    let mut files = 0usize;
    for path in &paths {
        match check_tree(path) {
            Ok(report) => {
                for finding in &report.findings {
                    println!("{finding}");
                }
                findings += report.findings.len();
                files += report.files;
            }
            Err(err) => {
                eprintln!("fastbn-analyze: {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if findings == 0 {
        eprintln!("fastbn-analyze: clean ({files} files)");
        ExitCode::SUCCESS
    } else {
        eprintln!("fastbn-analyze: {findings} finding(s) across {files} files");
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "fastbn-analyze: workspace invariant linter\n\
         \n\
         USAGE:\n\
         \tfastbn-analyze --check [--root DIR] [PATH...]\n\
         \tfastbn-analyze --list-lints\n\
         \n\
         Lints every .rs file under the root (default `.`), skipping\n\
         target/, .git/ and fixtures/. Exits 0 when clean, 1 on findings,\n\
         2 on usage or I/O errors. See crates/analyze/README.md."
    );
}
