//! A line-level Rust lexer: enough structure for invariant linting,
//! nothing more.
//!
//! The scanner makes one pass over the source and produces, per line,
//! the **code text** (string/char-literal contents and comments blanked
//! out) and the **comment text** (with its `//` / `///` / `//!` marker
//! preserved, so lints can distinguish doc comments from plain ones).
//! A second pass over the cleaned code recovers the little structure the
//! lints need: `fn` item spans (by brace matching) and `#[cfg(test)]`
//! item spans. There is no AST — the lints are line- and token-oriented
//! by design, in the spirit of the token-table lexers used by fast
//! zero-copy parsers: a 256-entry byte-class table drives tokenization,
//! and everything else is a small state machine.

/// Byte classes for the tokenizer's dispatch table.
const C_OTHER: u8 = 0;
/// Identifier continuation bytes: `[A-Za-z0-9_]` plus all non-ASCII
/// lead/continuation bytes (identifiers are the only multi-byte tokens
/// the lints care about).
const C_IDENT: u8 = 1;
/// Whitespace.
const C_WS: u8 = 2;

/// The 256-entry byte-class table driving [`tokenize`]. Built in a
/// `const` context so the scanner is branch-light: one load per byte.
static CLASS: [u8; 256] = build_class_table();

const fn build_class_table() -> [u8; 256] {
    let mut table = [C_OTHER; 256];
    let mut b = 0usize;
    while b < 256 {
        let c = b as u8;
        if c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80 {
            table[b] = C_IDENT;
        } else if c == b' ' || c == b'\t' || c == b'\r' || c == b'\n' {
            table[b] = C_WS;
        }
        b += 1;
    }
    table
}

/// One token of cleaned line code: an identifier/number word or a single
/// punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Byte column within the cleaned line.
    pub col: usize,
    /// Token text (one char for punctuation).
    pub text: String,
}

/// Splits cleaned code into identifier words and single-char punctuation
/// tokens using the byte-class table.
pub fn tokenize(code: &str) -> Vec<Tok> {
    let bytes = code.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match CLASS[bytes[i] as usize] {
            C_WS => i += 1,
            C_IDENT => {
                let start = i;
                while i < bytes.len() && CLASS[bytes[i] as usize] == C_IDENT {
                    i += 1;
                }
                toks.push(Tok {
                    col: start,
                    text: code[start..i].to_string(),
                });
            }
            _ => {
                toks.push(Tok {
                    col: i,
                    text: code[i..i + 1].to_string(),
                });
                i += 1;
            }
        }
    }
    toks
}

/// One scanned source line.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments and string/char contents blanked (spaces keep
    /// tokens separated; the quotes themselves are dropped).
    pub code: String,
    /// Comment text on this line, including its marker (`//`, `///`,
    /// `//!`, or the interior of a `/* */`). Multiple comments on one
    /// line are concatenated.
    pub comment: String,
}

impl Line {
    /// Whether the line holds any code tokens at all.
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }

    /// Whether the line's comment is a doc comment (`///` or `//!`).
    pub fn has_doc_comment(&self) -> bool {
        self.comment.starts_with("///") || self.comment.starts_with("//!")
    }
}

/// A `fn` item span recovered by brace matching.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line of the body's closing brace (== `sig_line` for
    /// bodiless declarations).
    pub end_line: usize,
}

/// A fully scanned file: cleaned lines plus the structural spans the
/// lints consume.
#[derive(Debug)]
pub struct ScannedFile {
    /// Cleaned per-line code and comments (0-based).
    pub lines: Vec<Line>,
    /// `line_tokens[i]` = tokens of `lines[i].code`.
    pub tokens: Vec<Vec<Tok>>,
    /// `fn` item spans, innermost-last for nested items.
    pub fns: Vec<FnSpan>,
    /// `in_test[i]` is true when line `i` sits inside a `#[cfg(test)]`
    /// item (the attribute line itself included).
    pub in_test: Vec<bool>,
}

impl ScannedFile {
    /// Scans `source` into lines, tokens and spans.
    pub fn scan(source: &str) -> ScannedFile {
        let lines = strip(source);
        let tokens: Vec<Vec<Tok>> = lines.iter().map(|l| tokenize(&l.code)).collect();
        let (fns, in_test) = spans(&lines, &tokens);
        ScannedFile {
            lines,
            tokens,
            fns,
            in_test,
        }
    }

    /// The innermost `fn` span containing `line` (0-based), if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.sig_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.sig_line)
    }
}

/// Scanner states for [`strip`].
enum Mode {
    Code,
    LineComment,
    BlockComment { depth: usize, doc: bool },
    Str,
    RawStr { hashes: usize },
}

/// Strips comments and literal contents, producing one [`Line`] per
/// source line. Handles nested block comments, raw strings (`r#"..."#`,
/// byte variants), char literals vs. lifetimes, and escapes.
fn strip(source: &str) -> Vec<Line> {
    let bytes = source.as_bytes();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0;

    macro_rules! newline {
        () => {{
            lines.push(std::mem::take(&mut cur));
            // A block comment continues across the line break; everything
            // else resets to code (line comments end, and an unterminated
            // string at EOL is malformed input we treat leniently).
            match mode {
                Mode::BlockComment { .. } | Mode::RawStr { .. } => {}
                _ => mode = Mode::Code,
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            newline!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    // Line comment; capture the marker so doc comments
                    // stay recognizable.
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    cur.comment.push_str(&source[start..i]);
                    cur.code.push(' ');
                    mode = Mode::LineComment;
                    continue;
                }
                if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    let doc = i + 2 < bytes.len() && (bytes[i + 2] == b'*' || bytes[i + 2] == b'!');
                    if doc {
                        cur.comment
                            .push_str(if bytes[i + 2] == b'!' { "//!" } else { "///" });
                    }
                    mode = Mode::BlockComment { depth: 1, doc };
                    cur.code.push(' ');
                    i += 2;
                    continue;
                }
                if b == b'"' {
                    // Keep a placeholder so `"..."` still separates tokens.
                    cur.code.push(' ');
                    mode = Mode::Str;
                    i += 1;
                    continue;
                }
                if b == b'r' || b == b'b' {
                    // Possible raw (byte) string: r", r#", br", b"...
                    let mut j = i + 1;
                    if b == b'b' && j < bytes.len() && bytes[j] == b'r' {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while j < bytes.len() && bytes[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    let prev_ident = i > 0 && CLASS[bytes[i - 1] as usize] == C_IDENT;
                    if !prev_ident
                        && j < bytes.len()
                        && bytes[j] == b'"'
                        && (b == b'r' || hashes > 0 || bytes.get(i + 1) == Some(&b'"'))
                    {
                        cur.code.push(' ');
                        mode = Mode::RawStr { hashes };
                        i = j + 1;
                        continue;
                    }
                    // Plain identifier character.
                    cur.code.push(b as char);
                    i += 1;
                    continue;
                }
                if b == b'\'' {
                    // Char literal vs. lifetime: `'x'` closes immediately
                    // after one char (or an escape); a lifetime word never
                    // has a quote directly after its first char, so
                    // `<'a, 'b>` stays punctuation.
                    let rest = &bytes[i + 1..];
                    let is_char = match (rest.first(), rest.get(1)) {
                        (Some(b'\\'), _) => true,
                        (Some(&c), Some(b'\'')) if c != b'\'' => true,
                        (Some(&c), _) if c >= 0x80 => {
                            // Multi-byte char literal: closing quote within
                            // the next four bytes.
                            rest.iter().take(5).skip(1).any(|&x| x == b'\'')
                        }
                        _ => false,
                    };
                    if is_char {
                        cur.code.push(' ');
                        i += 1;
                        // Skip to the closing quote, honouring escapes.
                        let mut escaped = false;
                        while i < bytes.len() && bytes[i] != b'\n' {
                            if escaped {
                                escaped = false;
                            } else if bytes[i] == b'\\' {
                                escaped = true;
                            } else if bytes[i] == b'\'' {
                                i += 1;
                                break;
                            }
                            i += 1;
                        }
                        continue;
                    }
                    // Lifetime tick: keep as punctuation (harmless).
                    cur.code.push('\'');
                    i += 1;
                    continue;
                }
                cur.code.push(b as char);
                i += 1;
            }
            Mode::LineComment => {
                // Only reachable for bytes after a comment was captured in
                // one go above; nothing to do until the newline.
                i += 1;
            }
            Mode::BlockComment { depth, doc } => {
                if b == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    if depth == 1 {
                        mode = Mode::Code;
                    } else {
                        mode = Mode::BlockComment {
                            depth: depth - 1,
                            doc,
                        };
                    }
                    i += 2;
                    continue;
                }
                if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    mode = Mode::BlockComment {
                        depth: depth + 1,
                        doc,
                    };
                    i += 2;
                    continue;
                }
                cur.comment.push(b as char);
                i += 1;
            }
            Mode::Str => {
                if b == b'\\' {
                    i += 2;
                    continue;
                }
                if b == b'"' {
                    mode = Mode::Code;
                }
                i += 1;
            }
            Mode::RawStr { hashes } => {
                if b == b'"' {
                    let mut k = 0;
                    while k < hashes && i + 1 + k < bytes.len() && bytes[i + 1 + k] == b'#' {
                        k += 1;
                    }
                    if k == hashes {
                        mode = Mode::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    lines.push(cur);
    lines
}

/// A pending item announced by `fn` or a `#[cfg(test)]` attribute,
/// waiting for its opening brace.
struct Pending {
    fn_name: Option<(String, usize)>,
    test_attr: bool,
    attr_line: usize,
}

/// Recovers `fn` spans and `#[cfg(test)]` item spans by brace matching
/// over the cleaned token stream.
fn spans(lines: &[Line], tokens: &[Vec<Tok>]) -> (Vec<FnSpan>, Vec<bool>) {
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut in_test = vec![false; lines.len()];
    // Open items: (depth after their `{`, index into `fns`) and test
    // spans: (depth after `{`, start line).
    let mut open_fns: Vec<(usize, usize)> = Vec::new();
    let mut open_tests: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<Pending> = None;

    for (lno, toks) in tokens.iter().enumerate() {
        let mut t = 0;
        while t < toks.len() {
            let tok = &toks[t].text;
            match tok.as_str() {
                "fn" => {
                    if let Some(name) = toks
                        .get(t + 1)
                        .filter(|n| CLASS[n.text.as_bytes()[0] as usize] == C_IDENT)
                    {
                        let p = pending.get_or_insert(Pending {
                            fn_name: None,
                            test_attr: false,
                            attr_line: lno,
                        });
                        p.fn_name = Some((name.text.clone(), lno));
                    }
                }
                // `#[cfg(test)]` / `#[cfg(all(test, ...))]`: mark a
                // pending test item unless the `test` token is negated
                // by a directly preceding `not(`.
                "#" if toks.get(t + 1).map(|x| x.text.as_str()) == Some("[")
                    && toks.get(t + 2).map(|x| x.text.as_str()) == Some("cfg") =>
                {
                    let rest: Vec<&str> = toks[t..].iter().map(|x| x.text.as_str()).collect();
                    if cfg_mentions_bare_test(&rest) {
                        let p = pending.get_or_insert(Pending {
                            fn_name: None,
                            test_attr: false,
                            attr_line: lno,
                        });
                        p.test_attr = true;
                        p.attr_line = p.attr_line.min(lno);
                    }
                }
                "{" => {
                    depth += 1;
                    if let Some(p) = pending.take() {
                        if let Some((name, sig_line)) = p.fn_name {
                            fns.push(FnSpan {
                                name,
                                sig_line,
                                end_line: sig_line,
                            });
                            open_fns.push((depth, fns.len() - 1));
                        }
                        if p.test_attr {
                            open_tests.push((depth, p.attr_line));
                        }
                    }
                }
                "}" => {
                    if let Some((d, idx)) = open_fns.last().copied() {
                        if d == depth {
                            fns[idx].end_line = lno;
                            open_fns.pop();
                        }
                    }
                    if let Some((d, start)) = open_tests.last().copied() {
                        if d == depth {
                            for flag in in_test.iter_mut().take(lno + 1).skip(start) {
                                *flag = true;
                            }
                            open_tests.pop();
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ";" => {
                    // A `;` at the pending item's depth means the item was
                    // bodiless (trait method decl, cfg'd `use`/statement).
                    if let Some(p) = pending.take() {
                        if p.test_attr {
                            for flag in in_test.iter_mut().take(lno + 1).skip(p.attr_line) {
                                *flag = true;
                            }
                        }
                        if let Some((name, sig_line)) = p.fn_name {
                            fns.push(FnSpan {
                                name,
                                sig_line,
                                end_line: lno,
                            });
                        }
                    }
                }
                _ => {}
            }
            t += 1;
        }
    }
    // Unclosed spans (malformed input): close at EOF.
    for (_, idx) in open_fns {
        fns[idx].end_line = lines.len().saturating_sub(1);
    }
    for (_, start) in open_tests {
        for flag in in_test.iter_mut().skip(start) {
            *flag = true;
        }
    }
    (fns, in_test)
}

/// Whether a `# [ cfg ( ... ) ]` token run mentions `test` outside a
/// `not(...)` directly wrapping it.
fn cfg_mentions_bare_test(toks: &[&str]) -> bool {
    for (i, tok) in toks.iter().enumerate() {
        if *tok == "test" {
            let negated = i >= 2 && toks[i - 1] == "(" && toks[i - 2] == "not";
            if !negated {
                return true;
            }
        }
        if *tok == "]" && i > 0 {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let scan = ScannedFile::scan("let x = \"unsafe\"; // unsafe here\nlet c = 'u';\n");
        assert!(!scan.lines[0].code.contains("unsafe"));
        assert!(scan.lines[0].comment.contains("unsafe"));
        assert!(!scan.lines[1].code.contains('u'));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let scan = ScannedFile::scan("let r = r#\"vec![unsafe]\"#;\nfn f<'a>(x: &'a str) {}\n");
        assert!(!scan.lines[0].code.contains("unsafe"));
        assert!(scan.lines[1].code.contains("str"));
        assert_eq!(scan.fns.len(), 1);
        assert_eq!(scan.fns[0].name, "f");
    }

    #[test]
    fn doc_comments_keep_markers() {
        let scan = ScannedFile::scan("/// # Safety\n//! inner\n// plain\n/** block doc */\n");
        assert!(scan.lines[0].has_doc_comment());
        assert!(scan.lines[1].has_doc_comment());
        assert!(!scan.lines[2].has_doc_comment());
        assert!(scan.lines[3].has_doc_comment());
    }

    #[test]
    fn fn_spans_nest_and_close() {
        let src = "fn outer() {\n    fn inner() {\n    }\n}\nfn later() {}\n";
        let scan = ScannedFile::scan(src);
        let names: Vec<&str> = scan.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner") && names.contains(&"later"));
        let outer = scan.fns.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!((outer.sig_line, outer.end_line), (0, 3));
        assert_eq!(scan.enclosing_fn(2).unwrap().name, "inner");
    }

    #[test]
    fn cfg_test_spans_cover_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let scan = ScannedFile::scan(src);
        assert!(!scan.in_test[0]);
        assert!(scan.in_test[1] && scan.in_test[2] && scan.in_test[3] && scan.in_test[4]);
        assert!(!scan.in_test[5]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nfn release_only() {}\n";
        let scan = ScannedFile::scan(src);
        assert!(!scan.in_test[1]);
    }

    #[test]
    fn nested_block_comments() {
        let scan = ScannedFile::scan("/* a /* b */ still comment */ let x = 1;\n");
        assert!(scan.lines[0].code.contains("let"));
        assert!(!scan.lines[0].code.contains("still"));
    }
}
