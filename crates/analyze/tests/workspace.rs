//! The linter's reason to exist: the workspace itself must be clean.
//!
//! This is the same check CI runs (`cargo run -p fastbn-analyze --
//! --check`), expressed as a test so `cargo test` alone catches a
//! regression — an unsafe block landing without its `SAFETY:` comment,
//! an allocation sneaking into a `deny-hot-alloc` kernel module.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = fastbn_analyze::check_tree(&root).expect("walk workspace");
    // Guard against silently linting the wrong directory: the workspace
    // has far more than this many Rust files.
    assert!(
        report.files > 50,
        "only {} files scanned — wrong root?",
        report.files
    );
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
