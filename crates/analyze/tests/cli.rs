//! End-to-end CLI tests: the exit-code contract CI relies on.
//!
//! Exit 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastbn-analyze"))
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn clean_file_exits_zero() {
    let out = bin()
        .args(["--check"])
        .arg(fixture("clean.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("clean (1 files)"), "{stderr}");
}

#[test]
fn findings_exit_one_and_name_the_lint() {
    let out = bin()
        .args(["--check"])
        .arg(fixture("l4_slab.rs"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FB-L4"), "{stdout}");
    assert!(stdout.contains("slab-discipline"), "{stdout}");
}

#[test]
fn missing_path_exits_two() {
    let out = bin().args(["--check", "no/such/path.rs"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = bin().args(["--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn list_lints_prints_the_catalog() {
    let out = bin().args(["--list-lints"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["FB-L1", "FB-L2", "FB-L3", "FB-L4"] {
        assert!(stdout.contains(id), "missing {id} in {stdout}");
    }
}
