//! Fixture-driven lint tests.
//!
//! Each file under `crates/analyze/fixtures/` annotates its expected
//! findings inline: a trailing `//~ FB-Lk` comment on a line means that
//! exact lint must fire there. The harness diffs the linter's actual
//! findings against the markers in both directions, so a fixture change
//! that silences a lint (or fires a new one) fails loudly with line
//! numbers.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use fastbn_analyze::{lint_file, Lint};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Parses `//~ FB-Lk [FB-Lk ...]` expectation markers: line → lint ids.
fn expectations(source: &str) -> BTreeMap<usize, Vec<String>> {
    let mut want = BTreeMap::new();
    for (i, line) in source.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let ids: Vec<String> = line[pos + 3..]
            .split_whitespace()
            .map(str::to_string)
            .collect();
        assert!(
            !ids.is_empty() && ids.iter().all(|id| id.starts_with("FB-L")),
            "malformed expectation marker on line {}: {line:?}",
            i + 1
        );
        want.insert(i + 1, ids);
    }
    want
}

fn check_fixture(name: &str) {
    let path = fixture(name);
    let source = std::fs::read_to_string(&path).unwrap();
    let want = expectations(&source);
    let findings = lint_file(&path).unwrap();
    let mut got: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for f in &findings {
        got.entry(f.line).or_default().push(f.lint.id().to_string());
    }
    assert_eq!(
        got,
        want,
        "findings mismatch in {name}\nactual findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn l1_safety_comment() {
    check_fixture("l1_safety.rs");
}

#[test]
fn l2_ordering_policy() {
    check_fixture("l2_ordering.rs");
}

#[test]
fn l3_hot_alloc() {
    check_fixture("l3_hot_alloc.rs");
}

#[test]
fn l4_slab_discipline() {
    check_fixture("l4_slab.rs");
}

#[test]
fn l4_audited_module_is_exempt() {
    check_fixture("l4_audited.rs");
}

#[test]
fn clean_file_has_no_findings() {
    check_fixture("clean.rs");
}

#[test]
fn hot_alloc_needs_the_marker() {
    // The same allocation-heavy body with the `deny-hot-alloc` marker
    // stripped must produce nothing: FB-L3 is strictly opt-in.
    let source = std::fs::read_to_string(fixture("l3_hot_alloc.rs")).unwrap();
    let stripped: String = source
        .lines()
        .filter(|l| l.trim() != "//! fastbn: deny-hot-alloc")
        .map(|l| format!("{l}\n"))
        .collect();
    let ctx = fastbn_analyze::FileContext {
        path: "stripped.rs".into(),
        test_context: false,
    };
    let findings = fastbn_analyze::lint_source(&stripped, &ctx);
    assert!(
        findings.iter().all(|f| f.lint != Lint::HotAlloc),
        "{findings:?}"
    );
}

#[test]
fn test_context_disables_l3_and_l4() {
    // The same sources again, but under a `tests/` path: FB-L3/FB-L4
    // do not apply to test scaffolding.
    for name in ["l3_hot_alloc.rs", "l4_slab.rs"] {
        let source = std::fs::read_to_string(fixture(name)).unwrap();
        let ctx = fastbn_analyze::FileContext {
            path: format!("tests/{name}"),
            test_context: true,
        };
        let findings = fastbn_analyze::lint_source(&source, &ctx);
        assert!(
            findings
                .iter()
                .all(|f| f.lint != Lint::HotAlloc && f.lint != Lint::SlabDiscipline),
            "{name}: {findings:?}"
        );
    }
}
