//! Maximum-likelihood parameter learning from complete data.
//!
//! The paper's introduction notes that BN structures "are often learned
//! from data"; this module provides the parameter side of that workflow:
//! given a structure (an existing network's DAG) and complete observations,
//! fit every CPT by maximum likelihood with symmetric Dirichlet (Laplace)
//! smoothing. Together with [`crate::sampler`] it also powers round-trip
//! tests: sample a network, refit it, and the parameters must converge to
//! the originals.

use crate::cpt::Cpt;
use crate::network::{BayesianNetwork, NetworkBuilder, NetworkError};
use crate::variable::VarId;

/// Errors from parameter fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// A data row has the wrong number of columns.
    WrongRowWidth {
        /// Offending row index.
        row: usize,
        /// Columns found.
        got: usize,
        /// Columns expected (number of variables).
        expected: usize,
    },
    /// A data cell holds a state outside its variable's range.
    StateOutOfRange {
        /// Offending row index.
        row: usize,
        /// Variable (column).
        var: VarId,
        /// The bad state.
        state: usize,
    },
    /// `alpha` must be positive when any parent configuration is unseen,
    /// otherwise the CPT row would be unnormalizable.
    UnseenConfiguration {
        /// The child variable whose row had no data.
        var: VarId,
        /// The unseen parent configuration (mixed-radix row index).
        row_index: usize,
    },
    /// Rebuilding the network failed (should not happen for a structure
    /// taken from a valid network).
    Network(NetworkError),
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::WrongRowWidth { row, got, expected } => {
                write!(f, "data row {row} has {got} columns, expected {expected}")
            }
            LearnError::StateOutOfRange { row, var, state } => {
                write!(f, "data row {row}: state {state} out of range for {var}")
            }
            LearnError::UnseenConfiguration { var, row_index } => write!(
                f,
                "no data for parent configuration {row_index} of {var} and alpha = 0"
            ),
            LearnError::Network(e) => write!(f, "network rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for LearnError {}

impl From<NetworkError> for LearnError {
    fn from(e: NetworkError) -> Self {
        LearnError::Network(e)
    }
}

/// Refits every CPT of `structure` from complete `data` rows
/// (`data[r][v]` = state of variable `v` in observation `r`) by maximum
/// likelihood with symmetric Dirichlet smoothing `alpha` (pseudo-count per
/// cell; `alpha = 0` is pure MLE and requires every parent configuration
/// to be observed).
///
/// Variables, state names and parent sets are preserved; only the
/// probabilities change.
pub fn fit_parameters(
    structure: &BayesianNetwork,
    data: &[Vec<usize>],
    alpha: f64,
) -> Result<BayesianNetwork, LearnError> {
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let n = structure.num_vars();
    let cards = structure.cardinalities();

    // Validate the data once up front.
    for (r, row) in data.iter().enumerate() {
        if row.len() != n {
            return Err(LearnError::WrongRowWidth {
                row: r,
                got: row.len(),
                expected: n,
            });
        }
        for (v, &state) in row.iter().enumerate() {
            if state >= cards[v] {
                return Err(LearnError::StateOutOfRange {
                    row: r,
                    var: VarId::from_index(v),
                    state,
                });
            }
        }
    }

    let mut builder = NetworkBuilder::new().named(structure.name());
    for var in structure.variables() {
        builder.add_variable(var.clone());
    }
    for v in 0..n {
        let id = VarId::from_index(v);
        let old: &Cpt = structure.cpt(id);
        let parents = old.parents().to_vec();
        let child_card = cards[v];
        let n_rows = old.num_rows();

        // Count co-occurrences.
        let mut counts = vec![alpha; n_rows * child_card];
        for row in data {
            let mut idx = 0usize;
            for &p in &parents {
                idx = idx * cards[p.index()] + row[p.index()];
            }
            counts[idx * child_card + row[v]] += 1.0;
        }
        // Normalize each row.
        for r in 0..n_rows {
            let slice = &mut counts[r * child_card..(r + 1) * child_card];
            let total: f64 = slice.iter().sum();
            if total <= 0.0 {
                return Err(LearnError::UnseenConfiguration {
                    var: id,
                    row_index: r,
                });
            }
            for c in slice.iter_mut() {
                *c /= total;
            }
            // Absorb rounding drift so Cpt validation is exact.
            let drift = 1.0 - slice.iter().sum::<f64>();
            slice[0] += drift;
        }
        builder.set_cpt(id, parents, counts)?;
    }
    Ok(builder.build()?)
}

/// Average log-likelihood of `data` under `net` (complete rows assumed
/// valid); useful for comparing fitted models.
pub fn mean_log_likelihood(net: &BayesianNetwork, data: &[Vec<usize>]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let total: f64 = data
        .iter()
        .map(|row| {
            (0..net.num_vars())
                .map(|v| {
                    let cpt = net.cpt(VarId::from_index(v));
                    let parents: Vec<usize> =
                        cpt.parents().iter().map(|p| row[p.index()]).collect();
                    cpt.probability(row[v], &parents)
                        .max(f64::MIN_POSITIVE)
                        .ln()
                })
                .sum::<f64>()
        })
        .sum();
    total / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datasets, sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_rows(net: &BayesianNetwork, n: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| sampler::forward_sample(net, &mut rng))
            .collect()
    }

    #[test]
    fn refit_recovers_parameters_from_large_samples() {
        let net = datasets::sprinkler();
        let data = sample_rows(&net, 60_000, 1);
        let fitted = fit_parameters(&net, &data, 1.0).unwrap();
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            for (a, b) in fitted.cpt(id).values().iter().zip(net.cpt(id).values()) {
                assert!((a - b).abs() < 0.02, "var {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn smoothing_handles_unseen_configurations() {
        // Asia's rare branches (tub=yes with small samples) still yield
        // valid CPTs thanks to alpha > 0.
        let net = datasets::asia();
        let data = sample_rows(&net, 50, 2);
        let fitted = fit_parameters(&net, &data, 0.5).unwrap();
        for cpt in fitted.cpts() {
            cpt.validate().unwrap();
        }
    }

    #[test]
    fn zero_alpha_rejects_unseen_configurations() {
        let net = datasets::asia();
        let data = sample_rows(&net, 10, 3); // certainly misses some rows
        match fit_parameters(&net, &data, 0.0) {
            Err(LearnError::UnseenConfiguration { .. }) => {}
            other => panic!("expected UnseenConfiguration, got {other:?}"),
        }
    }

    #[test]
    fn data_validation_errors() {
        let net = datasets::sprinkler();
        let bad_width = vec![vec![0usize; 3]];
        assert!(matches!(
            fit_parameters(&net, &bad_width, 1.0),
            Err(LearnError::WrongRowWidth { expected: 4, .. })
        ));
        let bad_state = vec![vec![0, 0, 0, 9]];
        assert!(matches!(
            fit_parameters(&net, &bad_state, 1.0),
            Err(LearnError::StateOutOfRange { state: 9, .. })
        ));
    }

    #[test]
    fn fitted_model_improves_likelihood_over_uniform() {
        let net = datasets::student();
        let train = sample_rows(&net, 5_000, 4);
        let fitted = fit_parameters(&net, &train, 1.0).unwrap();
        // A uniform-parameter model with the same structure.
        let mut b = NetworkBuilder::new();
        for var in net.variables() {
            b.add_variable(var.clone());
        }
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            let cpt = net.cpt(id);
            let k = cpt.child_cardinality();
            let uniform = vec![1.0 / k as f64; cpt.num_parameters()];
            b.set_cpt(id, cpt.parents().to_vec(), uniform).unwrap();
        }
        let uniform_net = b.build().unwrap();

        let test = sample_rows(&net, 2_000, 5);
        let ll_fitted = mean_log_likelihood(&fitted, &test);
        let ll_uniform = mean_log_likelihood(&uniform_net, &test);
        let ll_true = mean_log_likelihood(&net, &test);
        assert!(ll_fitted > ll_uniform, "{ll_fitted} <= {ll_uniform}");
        // And close to the true model's likelihood.
        assert!(
            (ll_fitted - ll_true).abs() < 0.05,
            "{ll_fitted} vs {ll_true}"
        );
    }

    #[test]
    fn empty_data_mean_ll_is_zero() {
        let net = datasets::sprinkler();
        assert_eq!(mean_log_likelihood(&net, &[]), 0.0);
    }
}
