//! Seeded synthetic network generators.
//!
//! The paper evaluates on six bnlearn-repository networks that are not
//! redistributable here; DESIGN.md §1 substitutes seeded analogues whose
//! node counts, arc counts and arity distributions match the published
//! statistics. The **windowed DAG** generator is the workhorse: restricting
//! each node's parents to a trailing window of recent nodes bounds the
//! moral graph's bandwidth, which keeps the triangulated width (and thus
//! junction-tree cost) in a controllable range — the property that makes
//! the analogues *runnable* while preserving the clique-size distribution
//! knobs that drive the paper's results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::network::{BayesianNetwork, NetworkBuilder};
use crate::variable::{VarId, Variable};

/// Distribution of variable cardinalities.
#[derive(Debug, Clone, PartialEq)]
pub enum ArityDist {
    /// Every variable has exactly this many states.
    Fixed(usize),
    /// Uniform over `min..=max`.
    Uniform {
        /// Smallest cardinality (≥ 2 recommended).
        min: usize,
        /// Largest cardinality.
        max: usize,
    },
    /// Weighted choices `(cardinality, weight)`; weights need not sum to 1.
    Weighted(Vec<(usize, f64)>),
}

impl ArityDist {
    /// Samples one cardinality.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match self {
            ArityDist::Fixed(k) => *k,
            ArityDist::Uniform { min, max } => rng.gen_range(*min..=*max),
            ArityDist::Weighted(choices) => {
                let total: f64 = choices.iter().map(|&(_, w)| w).sum();
                let mut target = rng.gen::<f64>() * total;
                for &(card, w) in choices {
                    target -= w;
                    if target <= 0.0 {
                        return card;
                    }
                }
                choices.last().expect("non-empty choices").0
            }
        }
    }
}

/// How synthetic CPT rows are drawn: each row is Dirichlet(`alpha`, ...,
/// `alpha`). `alpha = 1` is uniform over the simplex; `alpha < 1` yields
/// skewed, near-deterministic rows (like the medical networks the paper
/// uses); `alpha > 1` yields near-uniform rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CptStyle {
    /// Symmetric Dirichlet concentration; must be positive.
    pub alpha: f64,
}

impl Default for CptStyle {
    fn default() -> Self {
        CptStyle { alpha: 1.0 }
    }
}

/// Specification for [`windowed_dag`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedDagSpec {
    /// Network name.
    pub name: String,
    /// Number of variables.
    pub nodes: usize,
    /// Desired number of arcs (clamped to what `max_parents`/`window`
    /// allow).
    pub target_arcs: usize,
    /// Maximum in-degree.
    pub max_parents: usize,
    /// Parents of node `i` are drawn from `[i - window, i)`; small windows
    /// bound the induced width.
    pub window: usize,
    /// Cardinality distribution.
    pub arity: ArityDist,
    /// CPT row style.
    pub cpt: CptStyle,
    /// RNG seed — same spec + seed ⇒ identical network.
    pub seed: u64,
}

impl WindowedDagSpec {
    /// A reasonable starting spec: binary chain-of-width-3 style network.
    pub fn new(name: impl Into<String>, nodes: usize) -> Self {
        WindowedDagSpec {
            name: name.into(),
            nodes,
            target_arcs: nodes.saturating_sub(1),
            max_parents: 2,
            window: 8,
            arity: ArityDist::Fixed(2),
            cpt: CptStyle::default(),
            seed: 0,
        }
    }
}

/// Samples Gamma(shape, 1) with Marsaglia & Tsang's method; used to build
/// Dirichlet rows. `shape` must be positive.
fn sample_gamma(rng: &mut StdRng, shape: f64) -> f64 {
    debug_assert!(shape > 0.0);
    if shape < 1.0 {
        // Boosting: Gamma(a) = Gamma(a + 1) * U^{1/a}.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box-Muller (rand 0.8 has no Normal without
        // rand_distr, which we avoid adding).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// One Dirichlet(`alpha`, ..., `alpha`) row of length `k`.
fn dirichlet_row(rng: &mut StdRng, k: usize, alpha: f64) -> Vec<f64> {
    if k == 1 {
        return vec![1.0];
    }
    let mut row: Vec<f64> = (0..k).map(|_| sample_gamma(rng, alpha)).collect();
    let sum: f64 = row.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        // Numerically degenerate draw: fall back to uniform.
        return vec![1.0 / k as f64; k];
    }
    for v in &mut row {
        *v /= sum;
    }
    // Repair rounding drift so Cpt validation always passes.
    let drift: f64 = 1.0 - row.iter().sum::<f64>();
    row[0] += drift;
    row
}

/// Fills CPTs for a fixed structure. `parents[i]` lists parent ids of node
/// `i` in layout order.
fn synthesize_cpts(
    builder: &mut NetworkBuilder,
    ids: &[VarId],
    cards: &[usize],
    parents: &[Vec<VarId>],
    style: CptStyle,
    rng: &mut StdRng,
) {
    for (i, &child) in ids.iter().enumerate() {
        let child_card = cards[child.index()];
        let rows: usize = parents[i].iter().map(|p| cards[p.index()]).product();
        let mut values = Vec::with_capacity(rows * child_card);
        for _ in 0..rows {
            values.extend(dirichlet_row(rng, child_card, style.alpha));
        }
        builder
            .set_cpt(child, parents[i].clone(), values)
            .expect("synthesized CPT is valid");
    }
}

/// Generates a network from a [`WindowedDagSpec`]. Deterministic in
/// `(spec, seed)`.
pub fn windowed_dag(spec: &WindowedDagSpec) -> BayesianNetwork {
    assert!(spec.nodes > 0, "network needs at least one node");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut builder = NetworkBuilder::new().named(spec.name.clone());

    let mut cards = Vec::with_capacity(spec.nodes);
    let ids: Vec<VarId> = (0..spec.nodes)
        .map(|i| {
            let card = spec.arity.sample(&mut rng).max(1);
            cards.push(card);
            builder.add_variable(Variable::with_cardinality(format!("N{i:04}"), card))
        })
        .collect();

    // Per-node parent capacity: inside the window and under max_parents.
    let caps: Vec<usize> = (0..spec.nodes)
        .map(|i| spec.max_parents.min(spec.window.min(i)))
        .collect();
    let total_cap: usize = caps.iter().sum();
    let target = spec.target_arcs.min(total_cap);

    let mut parents: Vec<Vec<VarId>> = vec![Vec::new(); spec.nodes];
    // Nodes that can still accept a parent.
    let mut eligible: Vec<usize> = (0..spec.nodes).filter(|&i| caps[i] > 0).collect();
    let mut placed = 0;
    while placed < target && !eligible.is_empty() {
        let slot = rng.gen_range(0..eligible.len());
        let node = eligible[slot];
        let lo = node - spec.window.min(node);
        // Candidate parents: the window minus current parents.
        let mut candidates: Vec<usize> = (lo..node)
            .filter(|&p| !parents[node].iter().any(|q| q.index() == p))
            .collect();
        if candidates.is_empty() {
            eligible.swap_remove(slot);
            continue;
        }
        let p = candidates.swap_remove(rng.gen_range(0..candidates.len()));
        parents[node].push(ids[p]);
        placed += 1;
        if parents[node].len() >= caps[node] {
            eligible.swap_remove(slot);
        }
    }
    for ps in &mut parents {
        ps.sort_unstable();
    }

    synthesize_cpts(&mut builder, &ids, &cards, &parents, spec.cpt, &mut rng);
    builder.build().expect("windowed DAG is a valid network")
}

/// A Markov chain `X0 → X1 → ... → X{n-1}`, each variable with `card`
/// states.
pub fn chain(n: usize, card: usize, seed: u64) -> BayesianNetwork {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = NetworkBuilder::new().named(format!("chain{n}"));
    let cards = vec![card; n];
    let ids: Vec<VarId> = (0..n)
        .map(|i| builder.add_variable(Variable::with_cardinality(format!("C{i:04}"), card)))
        .collect();
    let parents: Vec<Vec<VarId>> = (0..n)
        .map(|i| if i == 0 { vec![] } else { vec![ids[i - 1]] })
        .collect();
    synthesize_cpts(
        &mut builder,
        &ids,
        &cards,
        &parents,
        CptStyle::default(),
        &mut rng,
    );
    builder.build().expect("chain is valid")
}

/// A naive-Bayes network: one class variable with `class_card` states and
/// `n_features` children with `feature_card` states each.
pub fn naive_bayes(
    n_features: usize,
    class_card: usize,
    feature_card: usize,
    seed: u64,
) -> BayesianNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = NetworkBuilder::new().named("naive_bayes");
    let class = builder.add_variable(Variable::with_cardinality("Class", class_card));
    let mut ids = vec![class];
    let mut cards = vec![class_card];
    for i in 0..n_features {
        ids.push(
            builder.add_variable(Variable::with_cardinality(format!("F{i:03}"), feature_card)),
        );
        cards.push(feature_card);
    }
    let parents: Vec<Vec<VarId>> = (0..=n_features)
        .map(|i| if i == 0 { vec![] } else { vec![class] })
        .collect();
    synthesize_cpts(
        &mut builder,
        &ids,
        &cards,
        &parents,
        CptStyle::default(),
        &mut rng,
    );
    builder.build().expect("naive bayes is valid")
}

/// A random polytree (tree skeleton with random edge orientations) on `n`
/// nodes with uniform cardinality `card`. Polytrees have treewidth equal to
/// their maximum family size minus 1, making them a good "many small
/// cliques" stress case (the paper's structure-adaptivity discussion).
pub fn polytree(n: usize, card: usize, seed: u64) -> BayesianNetwork {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = NetworkBuilder::new().named(format!("polytree{n}"));
    let cards = vec![card; n];
    let ids: Vec<VarId> = (0..n)
        .map(|i| builder.add_variable(Variable::with_cardinality(format!("P{i:04}"), card)))
        .collect();
    let mut parents: Vec<Vec<VarId>> = vec![Vec::new(); n];
    for i in 1..n {
        let j = rng.gen_range(0..i);
        // Orient j -> i or i -> j at random; both keep the skeleton a tree
        // and the graph acyclic (edges always point away from the lower id
        // only when j -> i; for i -> j acyclicity still holds because j < i
        // gains a *higher-numbered* parent, and all edges connect distinct
        // components at insertion time).
        if rng.gen::<bool>() {
            parents[i].push(ids[j]);
        } else {
            parents[j].push(ids[i]);
        }
    }
    for ps in &mut parents {
        ps.sort_unstable();
    }
    synthesize_cpts(
        &mut builder,
        &ids,
        &cards,
        &parents,
        CptStyle::default(),
        &mut rng,
    );
    builder.build().expect("polytree is valid")
}

/// An `rows × cols` grid with edges rightwards and downwards; treewidth is
/// `min(rows, cols)`, so keep one dimension small. A good "few large
/// cliques" stress case.
pub fn grid(rows: usize, cols: usize, card: usize, seed: u64) -> BayesianNetwork {
    assert!(rows > 0 && cols > 0);
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = NetworkBuilder::new().named(format!("grid{rows}x{cols}"));
    let cards = vec![card; n];
    let ids: Vec<VarId> = (0..n)
        .map(|i| builder.add_variable(Variable::with_cardinality(format!("G{i:04}"), card)))
        .collect();
    let mut parents: Vec<Vec<VarId>> = vec![Vec::new(); n];
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c > 0 {
                parents[i].push(ids[i - 1]);
            }
            if r > 0 {
                parents[i].push(ids[i - cols]);
            }
            parents[i].sort_unstable();
        }
    }
    synthesize_cpts(
        &mut builder,
        &ids,
        &cards,
        &parents,
        CptStyle::default(),
        &mut rng,
    );
    builder.build().expect("grid is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_dag_matches_spec() {
        let spec = WindowedDagSpec {
            name: "w".into(),
            nodes: 60,
            target_arcs: 75,
            max_parents: 3,
            window: 6,
            arity: ArityDist::Uniform { min: 2, max: 4 },
            cpt: CptStyle::default(),
            seed: 7,
        };
        let net = windowed_dag(&spec);
        assert_eq!(net.num_vars(), 60);
        assert_eq!(net.num_edges(), 75);
        assert!(net.max_in_degree() <= 3);
        for v in 0..60u32 {
            for p in net.dag().parents(v) {
                assert!(v - p <= 6, "parent {p} outside window of node {v}");
            }
            let card = net.cardinality(crate::VarId(v));
            assert!((2..=4).contains(&card));
        }
        for cpt in net.cpts() {
            cpt.validate().unwrap();
        }
    }

    #[test]
    fn windowed_dag_is_deterministic_per_seed() {
        let spec = WindowedDagSpec::new("d", 40);
        let a = windowed_dag(&spec);
        let b = windowed_dag(&spec);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..40 {
            let id = crate::VarId(v);
            assert_eq!(a.cpt(id).values(), b.cpt(id).values());
        }
        let mut spec2 = spec.clone();
        spec2.seed = 1;
        let c = windowed_dag(&spec2);
        let differs =
            (0..40).any(|v| a.cpt(crate::VarId(v)).values() != c.cpt(crate::VarId(v)).values());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn arc_target_clamped_to_capacity() {
        let spec = WindowedDagSpec {
            target_arcs: 10_000,
            max_parents: 2,
            window: 4,
            ..WindowedDagSpec::new("clamp", 10)
        };
        let net = windowed_dag(&spec);
        // Capacity: node i can take min(2, min(4, i)) parents.
        let cap: usize = (0..10).map(|i: usize| 2.min(4.min(i))).sum();
        assert_eq!(net.num_edges(), cap);
    }

    #[test]
    fn chain_structure() {
        let net = chain(5, 3, 0);
        assert_eq!(net.num_edges(), 4);
        for i in 1..5u32 {
            assert_eq!(net.dag().parents(i), &[i - 1]);
        }
    }

    #[test]
    fn naive_bayes_structure() {
        let net = naive_bayes(6, 3, 2, 0);
        assert_eq!(net.num_vars(), 7);
        assert_eq!(net.num_edges(), 6);
        let class = net.var_id("Class").unwrap();
        assert_eq!(net.children(class).count(), 6);
    }

    #[test]
    fn polytree_skeleton_is_a_tree() {
        let net = polytree(30, 2, 3);
        assert_eq!(net.num_edges(), 29);
        assert!(net.dag().is_acyclic());
        assert_eq!(net.dag().undirected_components().len(), 1);
    }

    #[test]
    fn grid_structure() {
        let net = grid(3, 4, 2, 0);
        assert_eq!(net.num_vars(), 12);
        // (rows-1)*cols vertical + rows*(cols-1) horizontal.
        assert_eq!(net.num_edges(), 2 * 4 + 3 * 3);
    }

    #[test]
    fn dirichlet_rows_are_normalized_for_extreme_alpha() {
        let mut rng = StdRng::seed_from_u64(5);
        for alpha in [0.05, 0.5, 1.0, 10.0] {
            for k in [2usize, 3, 7, 21] {
                let row = dirichlet_row(&mut rng, k, alpha);
                assert_eq!(row.len(), k);
                assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)), "{row:?}");
            }
        }
    }

    #[test]
    fn skewed_alpha_yields_skewed_rows() {
        let mut rng = StdRng::seed_from_u64(11);
        // With alpha = 0.05 most rows should concentrate mass on one state.
        let skewed = (0..100)
            .map(|_| {
                dirichlet_row(&mut rng, 4, 0.05)
                    .into_iter()
                    .fold(f64::MIN, f64::max)
            })
            .sum::<f64>()
            / 100.0;
        let flat = (0..100)
            .map(|_| {
                dirichlet_row(&mut rng, 4, 10.0)
                    .into_iter()
                    .fold(f64::MIN, f64::max)
            })
            .sum::<f64>()
            / 100.0;
        assert!(
            skewed > 0.9 && flat < 0.6,
            "skewed avg max {skewed}, flat avg max {flat}"
        );
    }
}
