//! Forward sampling and benchmark test-case generation.
//!
//! The paper's workload: "randomly generated 2,000 test cases from each
//! network, each with 20% of the observed variables". A test case is a
//! forward sample of the joint distribution with a random subset of
//! variables revealed as evidence — exactly what [`generate_cases`]
//! produces (seeded, so every engine sees identical cases).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::evidence::Evidence;
use crate::network::BayesianNetwork;
use crate::variable::VarId;

/// One benchmark query: the evidence to enter, plus the full ground-truth
/// assignment it was sampled from (useful for debugging and for tests).
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Observed variables (a fraction of all variables).
    pub evidence: Evidence,
    /// The complete sampled assignment, indexed by variable id.
    pub full_assignment: Vec<usize>,
}

/// Draws one state from a discrete distribution `weights` (assumed to sum
/// to ~1; the last state absorbs rounding).
fn sample_state(rng: &mut StdRng, weights: &[f64]) -> usize {
    let mut target = rng.gen::<f64>();
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples one full assignment by ancestral (topological-order) sampling.
pub fn forward_sample(net: &BayesianNetwork, rng: &mut StdRng) -> Vec<usize> {
    let mut assignment = vec![usize::MAX; net.num_vars()];
    for &v in net.topological_order() {
        let id = VarId(v);
        let cpt = net.cpt(id);
        let parent_states: Vec<usize> = cpt
            .parents()
            .iter()
            .map(|p| {
                debug_assert_ne!(assignment[p.index()], usize::MAX, "parents sampled first");
                assignment[p.index()]
            })
            .collect();
        let row = cpt.row(cpt.row_index(&parent_states));
        assignment[id.index()] = sample_state(rng, row);
    }
    assignment
}

/// Generates `n_cases` test cases, each observing `ceil(observed_fraction
/// * num_vars)` distinct uniformly-chosen variables of a forward sample.
///
/// `observed_fraction` is clamped to `[0, 1]`. Evidence produced this way
/// always has positive probability (it came from a sample of the joint),
/// so `P(e) > 0` holds for every case — matching the paper's setup.
pub fn generate_cases(
    net: &BayesianNetwork,
    n_cases: usize,
    observed_fraction: f64,
    seed: u64,
) -> Vec<TestCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = net.num_vars();
    let frac = observed_fraction.clamp(0.0, 1.0);
    let n_observed = ((n as f64 * frac).ceil() as usize).min(n);
    (0..n_cases)
        .map(|_| {
            let full = forward_sample(net, &mut rng);
            // Partial Fisher-Yates: choose n_observed distinct variables.
            let mut order: Vec<usize> = (0..n).collect();
            for i in 0..n_observed {
                let j = rng.gen_range(i..n);
                order.swap(i, j);
            }
            let evidence = Evidence::from_pairs(
                order[..n_observed]
                    .iter()
                    .map(|&v| (VarId::from_index(v), full[v])),
            );
            TestCase {
                evidence,
                full_assignment: full,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn forward_sample_respects_cardinalities() {
        let net = datasets::asia();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let sample = forward_sample(&net, &mut rng);
            assert_eq!(sample.len(), net.num_vars());
            for (i, &s) in sample.iter().enumerate() {
                assert!(s < net.cardinality(VarId::from_index(i)));
            }
        }
    }

    #[test]
    fn deterministic_or_node_is_respected() {
        // In Asia, TbOrCa is a deterministic OR of Tuberculosis/LungCancer,
        // so every sample must satisfy it.
        let net = datasets::asia();
        let tub = net.var_id("Tuberculosis").unwrap().index();
        let lung = net.var_id("LungCancer").unwrap().index();
        let either = net.var_id("TbOrCa").unwrap().index();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = forward_sample(&net, &mut rng);
            let expect = if s[tub] == 0 || s[lung] == 0 { 0 } else { 1 };
            assert_eq!(s[either], expect);
        }
    }

    #[test]
    fn generate_cases_observes_requested_fraction() {
        let net = datasets::asia(); // 8 vars -> 20% observes ceil(1.6) = 2
        let cases = generate_cases(&net, 10, 0.2, 3);
        assert_eq!(cases.len(), 10);
        for case in &cases {
            assert_eq!(case.evidence.len(), 2);
            case.evidence.validate(&net).unwrap();
            // Evidence must agree with the underlying full assignment.
            for (var, state) in case.evidence.iter() {
                assert_eq!(case.full_assignment[var.index()], state);
            }
        }
    }

    #[test]
    fn cases_are_seed_deterministic() {
        let net = datasets::student();
        let a = generate_cases(&net, 5, 0.4, 99);
        let b = generate_cases(&net, 5, 0.4, 99);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.evidence, y.evidence);
            assert_eq!(x.full_assignment, y.full_assignment);
        }
        let c = generate_cases(&net, 5, 0.4, 100);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.evidence != y.evidence),
            "different seed should change cases"
        );
    }

    #[test]
    fn fraction_edge_cases() {
        let net = datasets::sprinkler();
        let none = generate_cases(&net, 3, 0.0, 1);
        assert!(none.iter().all(|c| c.evidence.is_empty()));
        let all = generate_cases(&net, 3, 1.0, 1);
        assert!(all.iter().all(|c| c.evidence.len() == net.num_vars()));
        let clamped = generate_cases(&net, 3, 7.5, 1);
        assert!(clamped.iter().all(|c| c.evidence.len() == net.num_vars()));
    }

    #[test]
    fn sample_state_handles_rounding_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        // Weights that sum slightly below 1 must still return a valid state.
        for _ in 0..100 {
            let s = sample_state(&mut rng, &[0.3, 0.3, 0.3999999]);
            assert!(s < 3);
        }
    }

    #[test]
    fn marginal_frequencies_roughly_match_priors() {
        // Loose statistical check: Smoker=yes in Asia has prior 0.5.
        let net = datasets::asia();
        let smoke = net.var_id("Smoker").unwrap().index();
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..2000)
            .filter(|_| forward_sample(&net, &mut rng)[smoke] == 0)
            .count();
        let freq = hits as f64 / 2000.0;
        assert!((freq - 0.5).abs() < 0.05, "freq {freq}");
    }
}
