//! Random variables: identifiers, names, and discrete state spaces.

use std::fmt;

/// Identifier of a variable inside one [`crate::BayesianNetwork`].
///
/// Ids are dense (`0..num_vars`) so downstream crates can use them as
/// array indices; `u32` keeps id-heavy structures (domains, separators,
/// cliques) compact, per the type-size guidance in the performance guide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        VarId(u32::try_from(index).expect("more than u32::MAX variables"))
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// A named discrete random variable with at least one state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    name: String,
    states: Vec<String>,
}

impl Variable {
    /// Creates a variable; panics if `states` is empty (a variable must
    /// have a non-empty state space).
    pub fn new(name: impl Into<String>, states: Vec<String>) -> Self {
        assert!(!states.is_empty(), "variable must have at least one state");
        Variable {
            name: name.into(),
            states,
        }
    }

    /// Convenience constructor with auto-named states `s0..s{k-1}`.
    pub fn with_cardinality(name: impl Into<String>, cardinality: usize) -> Self {
        assert!(cardinality >= 1, "cardinality must be at least 1");
        Variable {
            name: name.into(),
            states: (0..cardinality).map(|i| format!("s{i}")).collect(),
        }
    }

    /// Convenience binary variable with states `true`/`false` (state 0 is
    /// `true`, matching the convention of the classic textbook networks).
    pub fn binary(name: impl Into<String>) -> Self {
        Variable::new(name, vec!["true".to_string(), "false".to_string()])
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn cardinality(&self) -> usize {
        self.states.len()
    }

    /// State names, in index order.
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// Name of state `index`; panics if out of range.
    pub fn state_name(&self, index: usize) -> &str {
        &self.states[index]
    }

    /// Index of the state named `name`, if any.
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.states.iter().position(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_roundtrips_through_index() {
        let id = VarId::from_index(42);
        assert_eq!(id, VarId(42));
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "X42");
    }

    #[test]
    fn variable_exposes_states() {
        let v = Variable::new("Rain", vec!["yes".into(), "no".into()]);
        assert_eq!(v.name(), "Rain");
        assert_eq!(v.cardinality(), 2);
        assert_eq!(v.state_name(1), "no");
        assert_eq!(v.state_index("yes"), Some(0));
        assert_eq!(v.state_index("maybe"), None);
    }

    #[test]
    fn with_cardinality_autonames_states() {
        let v = Variable::with_cardinality("G", 3);
        assert_eq!(v.states(), &["s0", "s1", "s2"]);
    }

    #[test]
    fn binary_orders_true_first() {
        let v = Variable::binary("B");
        assert_eq!(v.state_index("true"), Some(0));
        assert_eq!(v.state_index("false"), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_state_space_rejected() {
        let _ = Variable::new("bad", vec![]);
    }
}
