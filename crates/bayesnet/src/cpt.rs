//! Conditional probability tables.

use crate::variable::VarId;

/// The CPT `P(child | parents)` of one network variable.
///
/// ## Layout
///
/// `values` is row-major over parent configurations with the **first parent
/// slowest** and the **child state fastest**:
///
/// ```text
/// index = parent_config_index * child_cardinality + child_state
/// parent_config_index = ((p0 * card(p1) + p1) * card(p2) + p2) ...
/// ```
///
/// Each contiguous block of `child_cardinality` values is one conditional
/// distribution ("row") and must sum to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Cpt {
    child: VarId,
    parents: Vec<VarId>,
    child_card: usize,
    parent_cards: Vec<usize>,
    values: Vec<f64>,
}

/// Tolerance for row normalization checks. BIF files round probabilities
/// to a few decimals, so this is deliberately loose.
pub const ROW_SUM_TOLERANCE: f64 = 1e-6;

/// Errors detected when constructing or validating a CPT.
#[derive(Debug, Clone, PartialEq)]
pub enum CptError {
    /// `values.len()` does not equal `child_card * prod(parent_cards)`.
    WrongLength { expected: usize, got: usize },
    /// A row does not sum to 1 (within [`ROW_SUM_TOLERANCE`]).
    RowNotNormalized { row: usize, sum: f64 },
    /// A probability is negative or non-finite.
    InvalidProbability { index: usize, value: f64 },
    /// The same variable appears twice among child+parents.
    DuplicateVariable { var: VarId },
}

impl std::fmt::Display for CptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CptError::WrongLength { expected, got } => {
                write!(f, "CPT has {got} values, expected {expected}")
            }
            CptError::RowNotNormalized { row, sum } => {
                write!(f, "CPT row {row} sums to {sum}, expected 1")
            }
            CptError::InvalidProbability { index, value } => {
                write!(f, "CPT value {value} at index {index} is not a probability")
            }
            CptError::DuplicateVariable { var } => {
                write!(f, "variable {var} appears twice in the CPT scope")
            }
        }
    }
}

impl std::error::Error for CptError {}

impl Cpt {
    /// Builds and validates a CPT. `parent_cards[i]` is the cardinality of
    /// `parents[i]`; see the type docs for the `values` layout.
    pub fn new(
        child: VarId,
        parents: Vec<VarId>,
        child_card: usize,
        parent_cards: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, CptError> {
        assert_eq!(
            parents.len(),
            parent_cards.len(),
            "one cardinality per parent"
        );
        let mut scope: Vec<VarId> = parents.iter().copied().chain([child]).collect();
        scope.sort_unstable();
        if let Some(w) = scope.windows(2).find(|w| w[0] == w[1]) {
            return Err(CptError::DuplicateVariable { var: w[0] });
        }
        let expected = child_card * parent_cards.iter().product::<usize>();
        if values.len() != expected {
            return Err(CptError::WrongLength {
                expected,
                got: values.len(),
            });
        }
        let cpt = Cpt {
            child,
            parents,
            child_card,
            parent_cards,
            values,
        };
        cpt.validate()?;
        Ok(cpt)
    }

    /// Re-checks the numeric invariants (all probabilities valid, rows
    /// normalized).
    pub fn validate(&self) -> Result<(), CptError> {
        for (i, &v) in self.values.iter().enumerate() {
            if !v.is_finite() || !(0.0..=1.0 + ROW_SUM_TOLERANCE).contains(&v) {
                return Err(CptError::InvalidProbability { index: i, value: v });
            }
        }
        for row in 0..self.num_rows() {
            let sum: f64 = self.row(row).iter().sum();
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
                return Err(CptError::RowNotNormalized { row, sum });
            }
        }
        Ok(())
    }

    /// The child variable.
    pub fn child(&self) -> VarId {
        self.child
    }

    /// Parent variables in layout order.
    pub fn parents(&self) -> &[VarId] {
        &self.parents
    }

    /// Cardinality of the child.
    pub fn child_cardinality(&self) -> usize {
        self.child_card
    }

    /// Cardinalities of the parents, in layout order.
    pub fn parent_cardinalities(&self) -> &[usize] {
        &self.parent_cards
    }

    /// Number of parent configurations (rows).
    pub fn num_rows(&self) -> usize {
        self.parent_cards.iter().product()
    }

    /// Total number of stored probabilities.
    pub fn num_parameters(&self) -> usize {
        self.values.len()
    }

    /// Flat values slice (layout documented on the type).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The conditional distribution over the child for parent configuration
    /// `row` (mixed-radix index, first parent slowest).
    pub fn row(&self, row: usize) -> &[f64] {
        let start = row * self.child_card;
        &self.values[start..start + self.child_card]
    }

    /// Mixed-radix row index for explicit parent states (`parent_states[i]`
    /// is the state of `parents[i]`).
    pub fn row_index(&self, parent_states: &[usize]) -> usize {
        debug_assert_eq!(parent_states.len(), self.parents.len());
        let mut idx = 0;
        for (s, card) in parent_states.iter().zip(&self.parent_cards) {
            debug_assert!(s < card);
            idx = idx * card + s;
        }
        idx
    }

    /// `P(child = child_state | parents = parent_states)`.
    pub fn probability(&self, child_state: usize, parent_states: &[usize]) -> f64 {
        self.values[self.row_index(parent_states) * self.child_card + child_state]
    }

    /// Scope of this CPT (`parents ∪ {child}`), sorted by id — the domain
    /// its potential table will live on.
    pub fn scope_sorted(&self) -> Vec<VarId> {
        let mut scope: Vec<VarId> = self.parents.iter().copied().chain([self.child]).collect();
        scope.sort_unstable();
        scope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rain_given_cloudy() -> Cpt {
        // P(Rain | Cloudy): cloudy -> 0.8/0.2, clear -> 0.2/0.8.
        Cpt::new(
            VarId(1),
            vec![VarId(0)],
            2,
            vec![2],
            vec![0.8, 0.2, 0.2, 0.8],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_states() {
        let cpt = rain_given_cloudy();
        assert_eq!(cpt.probability(0, &[0]), 0.8);
        assert_eq!(cpt.probability(1, &[0]), 0.2);
        assert_eq!(cpt.probability(0, &[1]), 0.2);
        assert_eq!(cpt.num_rows(), 2);
        assert_eq!(cpt.num_parameters(), 4);
    }

    #[test]
    fn two_parent_row_indexing_is_first_parent_slowest() {
        // child card 2, parents (A card 2, B card 3)
        let mut values = Vec::new();
        for a in 0..2 {
            for b in 0..3 {
                let p = 0.1 + 0.1 * (a * 3 + b) as f64;
                values.extend([p, 1.0 - p]);
            }
        }
        let cpt = Cpt::new(VarId(2), vec![VarId(0), VarId(1)], 2, vec![2, 3], values).unwrap();
        assert_eq!(cpt.row_index(&[0, 0]), 0);
        assert_eq!(cpt.row_index(&[0, 2]), 2);
        assert_eq!(cpt.row_index(&[1, 0]), 3);
        assert!((cpt.probability(0, &[1, 2]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn wrong_length_rejected() {
        let err = Cpt::new(VarId(0), vec![], 2, vec![], vec![1.0]).unwrap_err();
        assert_eq!(
            err,
            CptError::WrongLength {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn unnormalized_row_rejected() {
        let err = Cpt::new(VarId(0), vec![], 2, vec![], vec![0.5, 0.4]).unwrap_err();
        assert!(matches!(err, CptError::RowNotNormalized { row: 0, .. }));
    }

    #[test]
    fn negative_probability_rejected() {
        let err = Cpt::new(VarId(0), vec![], 2, vec![], vec![1.5, -0.5]).unwrap_err();
        assert!(matches!(err, CptError::InvalidProbability { index: 0, .. }));
    }

    #[test]
    fn duplicate_scope_variable_rejected() {
        let err = Cpt::new(VarId(0), vec![VarId(0)], 2, vec![2], vec![0.5; 4]).unwrap_err();
        assert_eq!(err, CptError::DuplicateVariable { var: VarId(0) });
    }

    #[test]
    fn scope_is_sorted() {
        let cpt = Cpt::new(
            VarId(1),
            vec![VarId(4), VarId(0)],
            2,
            vec![2, 2],
            vec![0.5; 8],
        )
        .unwrap();
        assert_eq!(cpt.scope_sorted(), vec![VarId(0), VarId(1), VarId(4)]);
    }

    #[test]
    fn deterministic_rows_are_valid() {
        let cpt = Cpt::new(VarId(0), vec![], 3, vec![], vec![0.0, 1.0, 0.0]).unwrap();
        assert_eq!(cpt.row(0), &[0.0, 1.0, 0.0]);
    }
}
