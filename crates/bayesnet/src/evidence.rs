//! Evidence: observed variable/state pairs entered into an inference query.

use crate::network::BayesianNetwork;
use crate::variable::VarId;

/// A sparse set of observations `variable = state`, kept sorted by
/// variable id for deterministic iteration and O(log n) lookup.
///
/// The paper's workload observes a random 20% of variables per test case;
/// [`crate::sampler::generate_cases`] produces `Evidence` values with
/// exactly that shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Evidence {
    entries: Vec<(VarId, usize)>,
}

/// Errors from validating evidence against a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvidenceError {
    /// The variable id does not exist in the network.
    UnknownVariable(VarId),
    /// The state index is out of range for the variable.
    StateOutOfRange {
        /// Offending variable.
        var: VarId,
        /// Observed state index.
        state: usize,
        /// The variable's cardinality.
        cardinality: usize,
    },
}

impl std::fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvidenceError::UnknownVariable(v) => write!(f, "evidence on unknown variable {v}"),
            EvidenceError::StateOutOfRange {
                var,
                state,
                cardinality,
            } => write!(
                f,
                "evidence state {state} out of range for {var} (cardinality {cardinality})"
            ),
        }
    }
}

impl std::error::Error for EvidenceError {}

impl Evidence {
    /// No observations.
    pub fn empty() -> Self {
        Evidence::default()
    }

    /// Builds evidence from `(variable, state)` pairs; later entries for
    /// the same variable overwrite earlier ones.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VarId, usize)>) -> Self {
        let mut ev = Evidence::default();
        for (var, state) in pairs {
            ev.set(var, state);
        }
        ev
    }

    /// Observes `var = state`, replacing any previous observation of `var`.
    pub fn set(&mut self, var: VarId, state: usize) {
        match self.entries.binary_search_by_key(&var, |e| e.0) {
            Ok(pos) => self.entries[pos].1 = state,
            Err(pos) => self.entries.insert(pos, (var, state)),
        }
    }

    /// Removes the observation of `var`, if present.
    pub fn clear(&mut self, var: VarId) {
        if let Ok(pos) = self.entries.binary_search_by_key(&var, |e| e.0) {
            self.entries.remove(pos);
        }
    }

    /// The observed state of `var`, if observed.
    pub fn get(&self, var: VarId) -> Option<usize> {
        self.entries
            .binary_search_by_key(&var, |e| e.0)
            .ok()
            .map(|pos| self.entries[pos].1)
    }

    /// Whether `var` is observed.
    pub fn contains(&self, var: VarId) -> bool {
        self.get(var).is_some()
    }

    /// Number of observed variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates observations in ascending variable-id order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, usize)> + '_ {
        self.entries.iter().copied()
    }

    /// Checks every observation against the network's variables.
    pub fn validate(&self, net: &BayesianNetwork) -> Result<(), EvidenceError> {
        for (var, state) in self.iter() {
            if var.index() >= net.num_vars() {
                return Err(EvidenceError::UnknownVariable(var));
            }
            let card = net.cardinality(var);
            if state >= card {
                return Err(EvidenceError::StateOutOfRange {
                    var,
                    state,
                    cardinality: card,
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<(VarId, usize)> for Evidence {
    fn from_iter<T: IntoIterator<Item = (VarId, usize)>>(iter: T) -> Self {
        Evidence::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    #[test]
    fn set_get_overwrite_clear() {
        let mut ev = Evidence::empty();
        assert!(ev.is_empty());
        ev.set(VarId(3), 1);
        ev.set(VarId(1), 0);
        ev.set(VarId(3), 2); // overwrite
        assert_eq!(ev.len(), 2);
        assert_eq!(ev.get(VarId(3)), Some(2));
        assert_eq!(ev.get(VarId(1)), Some(0));
        assert_eq!(ev.get(VarId(2)), None);
        ev.clear(VarId(1));
        assert!(!ev.contains(VarId(1)));
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn iteration_is_sorted_by_id() {
        let ev = Evidence::from_pairs([(VarId(5), 1), (VarId(2), 0), (VarId(9), 3)]);
        let ids: Vec<u32> = ev.iter().map(|(v, _)| v.0).collect();
        assert_eq!(ids, vec![2, 5, 9]);
    }

    #[test]
    fn validation_against_network() {
        let mut b = NetworkBuilder::new();
        let a = b.add_var("A", &["x", "y", "z"]);
        b.set_cpt(a, vec![], vec![0.2, 0.3, 0.5]).unwrap();
        let net = b.build().unwrap();

        assert!(Evidence::from_pairs([(a, 2)]).validate(&net).is_ok());
        assert_eq!(
            Evidence::from_pairs([(a, 3)]).validate(&net).unwrap_err(),
            EvidenceError::StateOutOfRange {
                var: a,
                state: 3,
                cardinality: 3
            }
        );
        assert_eq!(
            Evidence::from_pairs([(VarId(4), 0)])
                .validate(&net)
                .unwrap_err(),
            EvidenceError::UnknownVariable(VarId(4))
        );
    }
}
