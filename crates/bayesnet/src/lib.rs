//! # fastbn-bayesnet
//!
//! The discrete Bayesian-network substrate for the Fast-BNI reproduction:
//! variables and states, conditional probability tables (CPTs), the DAG
//! with its graph algorithms, evidence, BIF-format I/O, classic textbook
//! networks with published parameters, seeded synthetic network generators
//! (including analogues of the six bnlearn-repository networks the paper
//! evaluates), and forward sampling for test-case generation.
//!
//! Everything downstream — potential tables, junction trees, the inference
//! engines — consumes the types defined here. Where this crate sits in
//! the full stack is mapped in `docs/ARCHITECTURE.md` at the repository
//! root.
//!
//! ## Quick example
//!
//! ```
//! use fastbn_bayesnet::{datasets, Evidence};
//!
//! let net = datasets::sprinkler();
//! assert_eq!(net.num_vars(), 4);
//! let rain = net.var_id("Rain").unwrap();
//! let ev = Evidence::from_pairs([(rain, 0)]); // Rain = true
//! assert!(ev.get(rain).is_some());
//! ```

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

pub mod bif;
pub mod cpt;
pub mod datasets;
pub mod evidence;
pub mod generators;
pub mod graph;
pub mod learn;
pub mod network;
pub mod sampler;
pub mod variable;

pub use cpt::Cpt;
pub use evidence::Evidence;
pub use graph::Dag;
pub use network::{BayesianNetwork, NetworkBuilder, NetworkError};
pub use variable::{VarId, Variable};
