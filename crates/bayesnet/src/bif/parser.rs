//! Recursive-descent parser for the BIF format.

use std::collections::HashMap;

use super::lexer::{tokenize, LexError, Token, TokenKind};
use crate::network::{BayesianNetwork, NetworkBuilder, NetworkError};
use crate::variable::Variable;

/// Parse/IO failures, with source line where applicable.
#[derive(Debug, Clone, PartialEq)]
pub enum BifError {
    /// Tokenizer failure.
    Lex(LexError),
    /// Filesystem failure (message of the underlying `io::Error`).
    Io(String),
    /// Unexpected token.
    Unexpected {
        /// Source line.
        line: usize,
        /// Human description of what the parser wanted.
        expected: String,
        /// What it found.
        got: String,
    },
    /// Input ended too early.
    UnexpectedEof {
        /// What the parser wanted next.
        expected: String,
    },
    /// A probability block references an undeclared variable.
    UnknownVariable {
        /// Source line.
        line: usize,
        /// The name that failed to resolve.
        name: String,
    },
    /// A row lists a state name that the variable does not have.
    UnknownState {
        /// Source line.
        line: usize,
        /// Variable whose state failed to resolve.
        var: String,
        /// The unresolved state name.
        state: String,
    },
    /// A word failed to parse as a probability.
    BadNumber {
        /// Source line.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A row has the wrong number of probabilities.
    WrongRowLength {
        /// Source line.
        line: usize,
        /// Variable being defined.
        var: String,
        /// Values expected (child cardinality).
        expected: usize,
        /// Values found.
        got: usize,
    },
    /// Some parent configurations were never assigned probabilities.
    MissingRows {
        /// Variable being defined.
        var: String,
        /// How many rows are missing.
        missing: usize,
    },
    /// Two `probability` blocks for the same variable.
    DuplicateProbability {
        /// Source line of the second block.
        line: usize,
        /// The variable.
        var: String,
    },
    /// Final network assembly failed (cycles, bad CPTs, ...).
    Network(NetworkError),
}

impl std::fmt::Display for BifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BifError::Lex(e) => write!(f, "lex error: {e}"),
            BifError::Io(e) => write!(f, "io error: {e}"),
            BifError::Unexpected {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected}, got {got:?}"),
            BifError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of file, expected {expected}")
            }
            BifError::UnknownVariable { line, name } => {
                write!(f, "line {line}: unknown variable {name:?}")
            }
            BifError::UnknownState { line, var, state } => {
                write!(f, "line {line}: variable {var:?} has no state {state:?}")
            }
            BifError::BadNumber { line, text } => {
                write!(f, "line {line}: {text:?} is not a number")
            }
            BifError::WrongRowLength {
                line,
                var,
                expected,
                got,
            } => write!(
                f,
                "line {line}: row for {var:?} has {got} values, expected {expected}"
            ),
            BifError::MissingRows { var, missing } => {
                write!(
                    f,
                    "{var:?}: {missing} parent configuration(s) have no probabilities"
                )
            }
            BifError::DuplicateProbability { line, var } => {
                write!(f, "line {line}: duplicate probability block for {var:?}")
            }
            BifError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for BifError {}

impl From<LexError> for BifError {
    fn from(e: LexError) -> Self {
        BifError::Lex(e)
    }
}

impl From<NetworkError> for BifError {
    fn from(e: NetworkError) -> Self {
        BifError::Network(e)
    }
}

struct VarDecl {
    name: String,
    states: Vec<String>,
}

enum Entries {
    Table(Vec<f64>),
    Rows {
        default: Option<Vec<f64>>,
        rows: Vec<(Vec<String>, Vec<f64>, usize)>, // (parent states, values, line)
    },
}

struct ProbDecl {
    child: String,
    parents: Vec<String>,
    entries: Entries,
    line: usize,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self, expected: &str) -> Result<Token, BifError> {
        let tok = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| BifError::UnexpectedEof {
                expected: expected.to_string(),
            })?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect_word(&mut self, expected: &str) -> Result<(String, usize), BifError> {
        let tok = self.next(expected)?;
        match tok.kind {
            TokenKind::Word(w) => Ok((w, tok.line)),
            other => Err(BifError::Unexpected {
                line: tok.line,
                expected: expected.to_string(),
                got: other.to_string(),
            }),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<usize, BifError> {
        let (w, line) = self.expect_word(&format!("keyword {kw:?}"))?;
        if w == kw {
            Ok(line)
        } else {
            Err(BifError::Unexpected {
                line,
                expected: format!("keyword {kw:?}"),
                got: w,
            })
        }
    }

    fn expect_punct(&mut self, p: char) -> Result<usize, BifError> {
        let tok = self.next(&format!("{p:?}"))?;
        match tok.kind {
            TokenKind::Punct(c) if c == p => Ok(tok.line),
            other => Err(BifError::Unexpected {
                line: tok.line,
                expected: format!("{p:?}"),
                got: other.to_string(),
            }),
        }
    }

    fn at_punct(&self, p: char) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Punct(c), .. }) if *c == p)
    }

    fn eat_punct(&mut self, p: char) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips the remainder of a `property` declaration (until `;`).
    fn skip_property(&mut self) -> Result<(), BifError> {
        loop {
            let tok = self.next("';' ending property")?;
            if matches!(tok.kind, TokenKind::Punct(';')) {
                return Ok(());
            }
        }
    }

    /// Reads comma/space separated probabilities until (not consuming) `;`.
    fn read_numbers_until_semi(&mut self) -> Result<Vec<f64>, BifError> {
        let mut values = Vec::new();
        loop {
            if self.at_punct(';') {
                self.pos += 1;
                return Ok(values);
            }
            if self.eat_punct(',') {
                continue;
            }
            let (word, line) = self.expect_word("a probability")?;
            let v: f64 = word
                .parse()
                .map_err(|_| BifError::BadNumber { line, text: word })?;
            values.push(v);
        }
    }

    fn parse_network_decl(&mut self) -> Result<String, BifError> {
        self.expect_keyword("network")?;
        // Network name may be several words (quoted names collapse to one);
        // read words until '{'.
        let mut name_parts = Vec::new();
        while !self.at_punct('{') {
            let (w, _) = self.expect_word("network name or '{'")?;
            name_parts.push(w);
        }
        self.expect_punct('{')?;
        while !self.eat_punct('}') {
            let (w, line) = self.expect_word("property or '}'")?;
            if w == "property" {
                self.skip_property()?;
            } else {
                return Err(BifError::Unexpected {
                    line,
                    expected: "property or '}'".into(),
                    got: w,
                });
            }
        }
        Ok(if name_parts.is_empty() {
            "network".to_string()
        } else {
            name_parts.join(" ")
        })
    }

    fn parse_variable_decl(&mut self) -> Result<VarDecl, BifError> {
        let (name, _) = self.expect_word("variable name")?;
        self.expect_punct('{')?;
        let mut states = Vec::new();
        while !self.eat_punct('}') {
            let (w, line) = self.expect_word("'type' or 'property'")?;
            match w.as_str() {
                "property" => self.skip_property()?,
                "type" => {
                    self.expect_keyword("discrete")?;
                    self.expect_punct('[')?;
                    let (count_word, cline) = self.expect_word("state count")?;
                    let declared: usize = count_word.parse().map_err(|_| BifError::BadNumber {
                        line: cline,
                        text: count_word,
                    })?;
                    self.expect_punct(']')?;
                    self.expect_punct('{')?;
                    while !self.at_punct('}') {
                        if self.eat_punct(',') {
                            continue;
                        }
                        let (state, _) = self.expect_word("state name")?;
                        states.push(state);
                    }
                    self.expect_punct('}')?;
                    self.eat_punct(';');
                    if states.len() != declared {
                        return Err(BifError::Unexpected {
                            line: cline,
                            expected: format!("{declared} state names"),
                            got: format!("{} state names", states.len()),
                        });
                    }
                }
                other => {
                    return Err(BifError::Unexpected {
                        line,
                        expected: "'type' or 'property'".into(),
                        got: other.to_string(),
                    })
                }
            }
        }
        Ok(VarDecl { name, states })
    }

    fn parse_probability_decl(&mut self) -> Result<ProbDecl, BifError> {
        let line = self.expect_punct('(')?;
        let (child, _) = self.expect_word("child variable name")?;
        let mut parents = Vec::new();
        if self.eat_punct('|') {
            loop {
                let (p, _) = self.expect_word("parent variable name")?;
                parents.push(p);
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        self.expect_punct('{')?;

        let mut table: Option<Vec<f64>> = None;
        let mut default: Option<Vec<f64>> = None;
        let mut rows: Vec<(Vec<String>, Vec<f64>, usize)> = Vec::new();
        while !self.eat_punct('}') {
            if self.at_punct('(') {
                // Row entry: ( s1, s2 ) p1, p2, ... ;
                let rline = self.expect_punct('(')?;
                let mut config = Vec::new();
                while !self.at_punct(')') {
                    if self.eat_punct(',') {
                        continue;
                    }
                    let (s, _) = self.expect_word("parent state name")?;
                    config.push(s);
                }
                self.expect_punct(')')?;
                let values = self.read_numbers_until_semi()?;
                rows.push((config, values, rline));
            } else {
                let (w, wline) = self.expect_word("'table', 'default', 'property' or a row")?;
                match w.as_str() {
                    "property" => self.skip_property()?,
                    "table" => table = Some(self.read_numbers_until_semi()?),
                    "default" => default = Some(self.read_numbers_until_semi()?),
                    other => {
                        return Err(BifError::Unexpected {
                            line: wline,
                            expected: "'table', 'default', 'property' or '('".into(),
                            got: other.to_string(),
                        })
                    }
                }
            }
        }
        let entries = match table {
            Some(t) => Entries::Table(t),
            None => Entries::Rows { default, rows },
        };
        Ok(ProbDecl {
            child,
            parents,
            entries,
            line,
        })
    }
}

/// Parses BIF text into a validated [`BayesianNetwork`].
pub fn parse_str(input: &str) -> Result<BayesianNetwork, BifError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };

    let name = parser.parse_network_decl()?;
    let mut var_decls: Vec<VarDecl> = Vec::new();
    let mut prob_decls: Vec<ProbDecl> = Vec::new();
    while parser.peek().is_some() {
        let (kw, line) = parser.expect_word("'variable' or 'probability'")?;
        match kw.as_str() {
            "variable" => var_decls.push(parser.parse_variable_decl()?),
            "probability" => prob_decls.push(parser.parse_probability_decl()?),
            other => {
                return Err(BifError::Unexpected {
                    line,
                    expected: "'variable' or 'probability'".into(),
                    got: other.to_string(),
                })
            }
        }
    }

    let mut builder = NetworkBuilder::new().named(name);
    let mut by_name = HashMap::new();
    for decl in &var_decls {
        let id = builder.add_variable(Variable::new(decl.name.clone(), decl.states.clone()));
        by_name.insert(decl.name.clone(), id);
    }
    let state_index = |name: &str, state: &str, line: usize| -> Result<usize, BifError> {
        let decl = var_decls
            .iter()
            .find(|d| d.name == name)
            .expect("resolved before");
        decl.states
            .iter()
            .position(|s| s == state)
            .ok_or_else(|| BifError::UnknownState {
                line,
                var: name.to_string(),
                state: state.to_string(),
            })
    };

    let mut seen = std::collections::HashSet::new();
    for decl in prob_decls {
        let child = *by_name
            .get(&decl.child)
            .ok_or_else(|| BifError::UnknownVariable {
                line: decl.line,
                name: decl.child.clone(),
            })?;
        if !seen.insert(child) {
            return Err(BifError::DuplicateProbability {
                line: decl.line,
                var: decl.child.clone(),
            });
        }
        let parent_ids: Vec<_> = decl
            .parents
            .iter()
            .map(|p| {
                by_name
                    .get(p)
                    .copied()
                    .ok_or_else(|| BifError::UnknownVariable {
                        line: decl.line,
                        name: p.clone(),
                    })
            })
            .collect::<Result<_, _>>()?;
        let child_card = var_decls[child.index()].states.len();
        let parent_cards: Vec<usize> = parent_ids
            .iter()
            .map(|p| var_decls[p.index()].states.len())
            .collect();
        let n_rows: usize = parent_cards.iter().product();
        let expected_len = n_rows * child_card;

        let values = match decl.entries {
            Entries::Table(t) => {
                if t.len() != expected_len {
                    return Err(BifError::WrongRowLength {
                        line: decl.line,
                        var: decl.child.clone(),
                        expected: expected_len,
                        got: t.len(),
                    });
                }
                t
            }
            Entries::Rows { default, rows } => {
                let mut values = vec![f64::NAN; expected_len];
                if let Some(d) = default {
                    if d.len() != child_card {
                        return Err(BifError::WrongRowLength {
                            line: decl.line,
                            var: decl.child.clone(),
                            expected: child_card,
                            got: d.len(),
                        });
                    }
                    for row in 0..n_rows {
                        values[row * child_card..(row + 1) * child_card].copy_from_slice(&d);
                    }
                }
                for (config, row_values, rline) in rows {
                    if config.len() != decl.parents.len() {
                        return Err(BifError::Unexpected {
                            line: rline,
                            expected: format!("{} parent states", decl.parents.len()),
                            got: format!("{} parent states", config.len()),
                        });
                    }
                    if row_values.len() != child_card {
                        return Err(BifError::WrongRowLength {
                            line: rline,
                            var: decl.child.clone(),
                            expected: child_card,
                            got: row_values.len(),
                        });
                    }
                    let mut row = 0usize;
                    for ((pname, state), card) in
                        decl.parents.iter().zip(&config).zip(&parent_cards)
                    {
                        row = row * card + state_index(pname, state, rline)?;
                    }
                    values[row * child_card..(row + 1) * child_card].copy_from_slice(&row_values);
                }
                let missing = values.iter().filter(|v| v.is_nan()).count() / child_card.max(1);
                if missing > 0 {
                    return Err(BifError::MissingRows {
                        var: decl.child.clone(),
                        missing,
                    });
                }
                values
            }
        };
        builder.set_cpt(child, parent_ids, values)?;
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
network mini {
  property note "hand written";
}
variable A {
  type discrete [ 2 ] { yes, no };
}
variable B {
  type discrete [ 3 ] { low, mid, high };
}
probability ( A ) {
  table 0.3, 0.7;
}
probability ( B | A ) {
  (yes) 0.2, 0.3, 0.5;
  (no)  0.6, 0.3, 0.1;
}
"#;

    #[test]
    fn parses_a_small_network() {
        let net = parse_str(MINI).unwrap();
        assert_eq!(net.name(), "mini");
        assert_eq!(net.num_vars(), 2);
        let b = net.var_id("B").unwrap();
        assert_eq!(net.cardinality(b), 3);
        let a = net.var_id("A").unwrap();
        assert_eq!(net.cpt(b).parents(), &[a]);
        assert!((net.cpt(b).probability(2, &[0]) - 0.5).abs() < 1e-12);
        assert!((net.cpt(b).probability(0, &[1]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn default_rows_fill_unlisted_configs() {
        let text = r#"
network d { }
variable P { type discrete [ 2 ] { a, b }; }
variable C { type discrete [ 2 ] { x, y }; }
probability ( P ) { table 0.5, 0.5; }
probability ( C | P ) {
  default 0.9, 0.1;
  (b) 0.4, 0.6;
}
"#;
        let net = parse_str(text).unwrap();
        let c = net.var_id("C").unwrap();
        assert!((net.cpt(c).probability(0, &[0]) - 0.9).abs() < 1e-12);
        assert!((net.cpt(c).probability(0, &[1]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn two_parent_rows_use_first_parent_slowest() {
        let text = r#"
network t { }
variable P1 { type discrete [ 2 ] { p1a, p1b }; }
variable P2 { type discrete [ 2 ] { p2a, p2b }; }
variable C { type discrete [ 2 ] { x, y }; }
probability ( P1 ) { table 0.5, 0.5; }
probability ( P2 ) { table 0.5, 0.5; }
probability ( C | P1, P2 ) {
  (p1a, p2a) 0.1, 0.9;
  (p1a, p2b) 0.2, 0.8;
  (p1b, p2a) 0.3, 0.7;
  (p1b, p2b) 0.4, 0.6;
}
"#;
        let net = parse_str(text).unwrap();
        let c = net.var_id("C").unwrap();
        assert!((net.cpt(c).probability(0, &[0, 1]) - 0.2).abs() < 1e-12);
        assert!((net.cpt(c).probability(0, &[1, 0]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn missing_rows_are_reported() {
        let text = r#"
network m { }
variable P { type discrete [ 2 ] { a, b }; }
variable C { type discrete [ 2 ] { x, y }; }
probability ( P ) { table 0.5, 0.5; }
probability ( C | P ) { (a) 0.5, 0.5; }
"#;
        match parse_str(text).unwrap_err() {
            BifError::MissingRows { var, missing } => {
                assert_eq!(var, "C");
                assert_eq!(missing, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_state_is_reported_with_line() {
        let text = "network x { }\nvariable A { type discrete [ 2 ] { yes, no }; }\nvariable B { type discrete [ 2 ] { t, f }; }\nprobability ( A ) { table 0.5, 0.5; }\nprobability ( B | A ) {\n  (maybe) 0.5, 0.5;\n  (no) 0.5, 0.5;\n}";
        match parse_str(text).unwrap_err() {
            BifError::UnknownState { line, var, state } => {
                assert_eq!((line, var.as_str(), state.as_str()), (6, "A", "maybe"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_variable_is_reported() {
        let text = "network x { }\nvariable A { type discrete [ 2 ] { yes, no }; }\nprobability ( A ) { table 0.5, 0.5; }\nprobability ( Ghost ) { table 1.0; }";
        assert!(matches!(
            parse_str(text).unwrap_err(),
            BifError::UnknownVariable { name, .. } if name == "Ghost"
        ));
    }

    #[test]
    fn duplicate_probability_block_rejected() {
        let text = "network x { }\nvariable A { type discrete [ 2 ] { yes, no }; }\nprobability ( A ) { table 0.5, 0.5; }\nprobability ( A ) { table 0.4, 0.6; }";
        assert!(matches!(
            parse_str(text).unwrap_err(),
            BifError::DuplicateProbability { var, .. } if var == "A"
        ));
    }

    #[test]
    fn state_count_mismatch_rejected() {
        let text = "network x { }\nvariable A { type discrete [ 3 ] { yes, no }; }";
        assert!(matches!(
            parse_str(text).unwrap_err(),
            BifError::Unexpected { .. }
        ));
    }

    #[test]
    fn table_length_mismatch_rejected() {
        let text = "network x { }\nvariable A { type discrete [ 2 ] { yes, no }; }\nprobability ( A ) { table 0.5, 0.3, 0.2; }";
        assert!(matches!(
            parse_str(text).unwrap_err(),
            BifError::WrongRowLength { .. }
        ));
    }
}
