//! BIF (Bayesian Interchange Format, v0.15) reading and writing.
//!
//! The bnlearn repository distributes the paper's six evaluation networks
//! as `.bif` files; this module lets users load those real files into the
//! pipeline (and lets our generators export networks for other tools).
//!
//! Supported constructs: `network`, `variable` with `type discrete`,
//! `probability` blocks with per-row entries (`(state, ...) p1, p2, ...;`),
//! `table` entries, `default` entries, `property` lines (parsed and
//! ignored), and `//`-and-`/* */` comments.
//!
//! ## Dialect note
//!
//! For nodes *with* parents the `table` form lists values in our CPT
//! layout: parent configurations slowest (first declared parent slowest of
//! all) and the child state fastest. bnlearn emits per-row entries for
//! conditional nodes, so this choice only affects files we write
//! ourselves; round-trips through this module are exact either way.

mod lexer;
mod parser;
mod writer;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse_str, BifError};
pub use writer::to_bif_string;

use crate::network::BayesianNetwork;

/// Reads a network from a `.bif` file.
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<BayesianNetwork, BifError> {
    let text = std::fs::read_to_string(path).map_err(|e| BifError::Io(e.to_string()))?;
    parse_str(&text)
}

/// Writes a network to a `.bif` file.
pub fn write_file(
    net: &BayesianNetwork,
    path: impl AsRef<std::path::Path>,
) -> Result<(), BifError> {
    std::fs::write(path, to_bif_string(net)).map_err(|e| BifError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn roundtrip_all_datasets() {
        for name in ["sprinkler", "asia", "cancer", "student"] {
            let net = datasets::by_name(name).unwrap();
            let text = to_bif_string(&net);
            let back = parse_str(&text).unwrap_or_else(|e| panic!("{name}: {e}\n{text}"));
            assert_eq!(back.name(), net.name());
            assert_eq!(back.num_vars(), net.num_vars());
            for v in 0..net.num_vars() {
                let id = crate::VarId::from_index(v);
                assert_eq!(back.var(id).name(), net.var(id).name());
                assert_eq!(back.var(id).states(), net.var(id).states());
                assert_eq!(back.cpt(id).parents(), net.cpt(id).parents());
                let (a, b) = (back.cpt(id).values(), net.cpt(id).values());
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert!((x - y).abs() < 1e-9, "{name} var {v}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let net = datasets::asia();
        let dir = std::env::temp_dir().join("fastbn_bif_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("asia.bif");
        write_file(&net, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_vars(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match read_file("/nonexistent/definitely/missing.bif") {
            Err(BifError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
