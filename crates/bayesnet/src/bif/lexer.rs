//! Tokenizer for the BIF format.

use std::fmt;

/// A lexical token with its source line (1-based) for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds. BIF state names may be numeric or contain punctuation-ish
/// characters (`<5`, `0-10`), so everything that is not a delimiter is a
/// single `Word`; the parser decides when a word must parse as a number.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare or quoted word (identifier, state name, or number).
    Word(String),
    /// One of `{ } ( ) [ ] ; , |`.
    Punct(char),
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::Punct(c) => write!(f, "{c}"),
        }
    }
}

/// Lexer failure.
#[derive(Debug, Clone, PartialEq)]
pub enum LexError {
    /// A `/* ... */` comment was never closed.
    UnterminatedComment {
        /// Line the comment started on.
        line: usize,
    },
    /// A quoted string was never closed.
    UnterminatedString {
        /// Line the string started on.
        line: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnterminatedComment { line } => {
                write!(f, "unterminated block comment starting on line {line}")
            }
            LexError::UnterminatedString { line } => {
                write!(f, "unterminated quoted string starting on line {line}")
            }
        }
    }
}

impl std::error::Error for LexError {}

const PUNCT: &[char] = &['{', '}', '(', ')', '[', ']', ';', ',', '|'];

/// Tokenizes BIF text.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        if c == '\n' {
            line += 1;
            chars.next();
        } else if c.is_whitespace() {
            chars.next();
        } else if c == '/' {
            chars.next();
            match chars.peek() {
                Some('/') => {
                    // Line comment.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    let start = line;
                    let mut closed = false;
                    let mut prev = ' ';
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                        }
                        if prev == '*' && c == '/' {
                            closed = true;
                            break;
                        }
                        prev = c;
                    }
                    if !closed {
                        return Err(LexError::UnterminatedComment { line: start });
                    }
                }
                _ => {
                    // A lone '/' inside a bare word (rare but legal in state
                    // names); treat as word start.
                    let word = read_bare_word(&mut chars, Some('/'));
                    tokens.push(Token {
                        kind: TokenKind::Word(word),
                        line,
                    });
                }
            }
        } else if PUNCT.contains(&c) {
            chars.next();
            tokens.push(Token {
                kind: TokenKind::Punct(c),
                line,
            });
        } else if c == '"' {
            chars.next();
            let start = line;
            let mut word = String::new();
            let mut closed = false;
            for c in chars.by_ref() {
                if c == '"' {
                    closed = true;
                    break;
                }
                if c == '\n' {
                    line += 1;
                }
                word.push(c);
            }
            if !closed {
                return Err(LexError::UnterminatedString { line: start });
            }
            tokens.push(Token {
                kind: TokenKind::Word(word),
                line,
            });
        } else {
            let word = read_bare_word(&mut chars, None);
            tokens.push(Token {
                kind: TokenKind::Word(word),
                line,
            });
        }
    }
    Ok(tokens)
}

fn read_bare_word(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    prefix: Option<char>,
) -> String {
    let mut word = String::new();
    if let Some(p) = prefix {
        word.push(p);
    }
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() || PUNCT.contains(&c) || c == '"' {
            break;
        }
        word.push(c);
        chars.next();
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(input: &str) -> Vec<String> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind.to_string())
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(words("network asia { }"), vec!["network", "asia", "{", "}"]);
    }

    #[test]
    fn numbers_and_punctuation() {
        assert_eq!(
            words("table 0.5, 0.5;"),
            vec!["table", "0.5", ",", "0.5", ";"]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            words("a // comment\nb /* multi\nline */ c"),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn quoted_words_preserve_spaces() {
        assert_eq!(words("\"hello world\" x"), vec!["hello world", "x"]);
    }

    #[test]
    fn weird_state_names_lex_as_words() {
        assert_eq!(words("<5 0-10 x_y.z"), vec!["<5", "0-10", "x_y.z"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = tokenize("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert_eq!(
            tokenize("x /* never closed").unwrap_err(),
            LexError::UnterminatedComment { line: 1 }
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert_eq!(
            tokenize("\"open").unwrap_err(),
            LexError::UnterminatedString { line: 1 }
        );
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n\t ").unwrap().is_empty());
    }
}
