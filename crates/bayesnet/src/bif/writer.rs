//! BIF serialization.

use std::fmt::Write as _;

use crate::network::BayesianNetwork;
use crate::variable::VarId;

/// True if `word` can be written bare (no quotes) in BIF output.
fn is_bare(word: &str) -> bool {
    !word.is_empty()
        && !word.contains(|c: char| {
            c.is_whitespace() || ['{', '}', '(', ')', '[', ']', ';', ',', '|', '"'].contains(&c)
        })
}

fn quoted(word: &str) -> String {
    if is_bare(word) {
        word.to_string()
    } else {
        format!("\"{word}\"")
    }
}

/// Formats a probability losslessly: Rust's `Display` for `f64` emits the
/// shortest decimal string that round-trips to the same bits.
fn fmt_prob(p: f64) -> String {
    format!("{p}")
}

/// Serializes a network to BIF text (see the module docs for the dialect).
pub fn to_bif_string(net: &BayesianNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "network {} {{", quoted(net.name()));
    let _ = writeln!(out, "}}");

    for v in 0..net.num_vars() {
        let var = net.var(VarId::from_index(v));
        let _ = writeln!(out, "variable {} {{", quoted(var.name()));
        let states: Vec<String> = var.states().iter().map(|s| quoted(s)).collect();
        let _ = writeln!(
            out,
            "  type discrete [ {} ] {{ {} }};",
            var.cardinality(),
            states.join(", ")
        );
        let _ = writeln!(out, "}}");
    }

    for v in 0..net.num_vars() {
        let id = VarId::from_index(v);
        let cpt = net.cpt(id);
        let child = net.var(id);
        if cpt.parents().is_empty() {
            let _ = writeln!(out, "probability ( {} ) {{", quoted(child.name()));
            let row: Vec<String> = cpt.row(0).iter().map(|&p| fmt_prob(p)).collect();
            let _ = writeln!(out, "  table {};", row.join(", "));
            let _ = writeln!(out, "}}");
            continue;
        }
        let parent_names: Vec<String> = cpt
            .parents()
            .iter()
            .map(|p| quoted(net.var(*p).name()))
            .collect();
        let _ = writeln!(
            out,
            "probability ( {} | {} ) {{",
            quoted(child.name()),
            parent_names.join(", ")
        );
        let cards = cpt.parent_cardinalities();
        let mut config = vec![0usize; cards.len()];
        for row in 0..cpt.num_rows() {
            let labels: Vec<String> = config
                .iter()
                .zip(cpt.parents())
                .map(|(&s, p)| quoted(net.var(*p).state_name(s)))
                .collect();
            let values: Vec<String> = cpt.row(row).iter().map(|&p| fmt_prob(p)).collect();
            let _ = writeln!(out, "  ({}) {};", labels.join(", "), values.join(", "));
            // Mixed-radix increment, last parent fastest (matches
            // `Cpt::row_index`).
            for i in (0..config.len()).rev() {
                config[i] += 1;
                if config[i] < cards[i] {
                    break;
                }
                config[i] = 0;
            }
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn fmt_prob_is_lossless_and_compact() {
        assert_eq!(fmt_prob(0.5), "0.5");
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_prob(1.0), "1");
        let odd = 1.0 / 3.0;
        let text = fmt_prob(odd);
        assert_eq!(text.parse::<f64>().unwrap(), odd);
    }

    #[test]
    fn quoting_rules() {
        assert_eq!(quoted("plain_name"), "plain_name");
        assert_eq!(quoted("has space"), "\"has space\"");
        assert_eq!(quoted("a,b"), "\"a,b\"");
    }

    #[test]
    fn output_contains_expected_blocks() {
        let text = to_bif_string(&datasets::sprinkler());
        assert!(text.contains("network sprinkler {"));
        assert!(text.contains("variable Cloudy {"));
        assert!(text.contains("probability ( WetGrass | Sprinkler, Rain ) {"));
        assert!(text.contains("type discrete [ 2 ] { true, false };"));
    }

    #[test]
    fn root_nodes_use_table_form() {
        let text = to_bif_string(&datasets::cancer());
        assert!(text.contains("probability ( Pollution ) {\n  table 0.9, 0.1;"));
    }
}
