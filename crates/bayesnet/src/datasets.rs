//! Classic textbook networks with their published parameters.
//!
//! These are the ground-truth fixtures of the test suite: their exact
//! posteriors are known from the literature, so every inference engine can
//! be checked against published numbers rather than against our own code.

use crate::network::{BayesianNetwork, NetworkBuilder};

/// The Sprinkler network (Russell & Norvig): Cloudy → {Sprinkler, Rain} →
/// WetGrass. All variables binary with state 0 = `true`.
pub fn sprinkler() -> BayesianNetwork {
    let mut b = NetworkBuilder::new().named("sprinkler");
    let cloudy = b.add_var("Cloudy", &["true", "false"]);
    let sprinkler = b.add_var("Sprinkler", &["true", "false"]);
    let rain = b.add_var("Rain", &["true", "false"]);
    let wet = b.add_var("WetGrass", &["true", "false"]);
    b.set_cpt(cloudy, vec![], vec![0.5, 0.5]).unwrap();
    b.set_cpt(sprinkler, vec![cloudy], vec![0.1, 0.9, 0.5, 0.5])
        .unwrap();
    b.set_cpt(rain, vec![cloudy], vec![0.8, 0.2, 0.2, 0.8])
        .unwrap();
    // P(Wet | Sprinkler, Rain): rows (S,R) = (t,t),(t,f),(f,t),(f,f).
    b.set_cpt(
        wet,
        vec![sprinkler, rain],
        vec![0.99, 0.01, 0.90, 0.10, 0.90, 0.10, 0.00, 1.00],
    )
    .unwrap();
    b.build().expect("sprinkler network is valid")
}

/// The Asia ("chest clinic") network of Lauritzen & Spiegelhalter (1988).
///
/// Eight binary variables (state 0 = `yes`): VisitAsia, Tuberculosis,
/// Smoker, LungCancer, Bronchitis, TbOrCa (deterministic OR), XRay,
/// Dyspnea. Known prior marginals (to 6 decimals): P(tub=yes) = 0.0104,
/// P(either=yes) = 0.064828, P(xray=yes) = 0.110290, P(dysp=yes) =
/// 0.435971 — asserted by the integration tests.
pub fn asia() -> BayesianNetwork {
    let mut b = NetworkBuilder::new().named("asia");
    let asia = b.add_var("VisitAsia", &["yes", "no"]);
    let tub = b.add_var("Tuberculosis", &["yes", "no"]);
    let smoke = b.add_var("Smoker", &["yes", "no"]);
    let lung = b.add_var("LungCancer", &["yes", "no"]);
    let bronc = b.add_var("Bronchitis", &["yes", "no"]);
    let either = b.add_var("TbOrCa", &["yes", "no"]);
    let xray = b.add_var("XRay", &["yes", "no"]);
    let dysp = b.add_var("Dyspnea", &["yes", "no"]);

    b.set_cpt(asia, vec![], vec![0.01, 0.99]).unwrap();
    b.set_cpt(tub, vec![asia], vec![0.05, 0.95, 0.01, 0.99])
        .unwrap();
    b.set_cpt(smoke, vec![], vec![0.5, 0.5]).unwrap();
    b.set_cpt(lung, vec![smoke], vec![0.1, 0.9, 0.01, 0.99])
        .unwrap();
    b.set_cpt(bronc, vec![smoke], vec![0.6, 0.4, 0.3, 0.7])
        .unwrap();
    // Deterministic OR: rows (tub, lung) = (y,y),(y,n),(n,y),(n,n).
    b.set_cpt(
        either,
        vec![tub, lung],
        vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0],
    )
    .unwrap();
    b.set_cpt(xray, vec![either], vec![0.98, 0.02, 0.05, 0.95])
        .unwrap();
    // Rows (either, bronc) = (y,y),(y,n),(n,y),(n,n).
    b.set_cpt(
        dysp,
        vec![either, bronc],
        vec![0.9, 0.1, 0.7, 0.3, 0.8, 0.2, 0.1, 0.9],
    )
    .unwrap();
    b.build().expect("asia network is valid")
}

/// The Cancer network (Korb & Nicholson): Pollution and Smoker cause
/// Cancer; Cancer causes XRay and Dyspnoea.
pub fn cancer() -> BayesianNetwork {
    let mut b = NetworkBuilder::new().named("cancer");
    let poll = b.add_var("Pollution", &["low", "high"]);
    let smoker = b.add_var("Smoker", &["true", "false"]);
    let cancer = b.add_var("Cancer", &["true", "false"]);
    let xray = b.add_var("XRay", &["positive", "negative"]);
    let dysp = b.add_var("Dyspnoea", &["true", "false"]);

    b.set_cpt(poll, vec![], vec![0.9, 0.1]).unwrap();
    b.set_cpt(smoker, vec![], vec![0.3, 0.7]).unwrap();
    // Rows (poll, smoker) = (low,t),(low,f),(high,t),(high,f).
    b.set_cpt(
        cancer,
        vec![poll, smoker],
        vec![0.03, 0.97, 0.001, 0.999, 0.05, 0.95, 0.02, 0.98],
    )
    .unwrap();
    b.set_cpt(xray, vec![cancer], vec![0.9, 0.1, 0.2, 0.8])
        .unwrap();
    b.set_cpt(dysp, vec![cancer], vec![0.65, 0.35, 0.3, 0.7])
        .unwrap();
    b.build().expect("cancer network is valid")
}

/// The Student network (Koller & Friedman, Figure 3.4): Difficulty and
/// Intelligence → Grade (3 states) → Letter, Intelligence → SAT.
pub fn student() -> BayesianNetwork {
    let mut b = NetworkBuilder::new().named("student");
    let diff = b.add_var("Difficulty", &["d0", "d1"]);
    let intel = b.add_var("Intelligence", &["i0", "i1"]);
    let grade = b.add_var("Grade", &["g1", "g2", "g3"]);
    let sat = b.add_var("SAT", &["s0", "s1"]);
    let letter = b.add_var("Letter", &["l0", "l1"]);

    b.set_cpt(diff, vec![], vec![0.6, 0.4]).unwrap();
    b.set_cpt(intel, vec![], vec![0.7, 0.3]).unwrap();
    // Rows (intel, diff) = (i0,d0),(i0,d1),(i1,d0),(i1,d1).
    b.set_cpt(
        grade,
        vec![intel, diff],
        vec![
            0.3, 0.4, 0.3, //
            0.05, 0.25, 0.7, //
            0.9, 0.08, 0.02, //
            0.5, 0.3, 0.2,
        ],
    )
    .unwrap();
    b.set_cpt(sat, vec![intel], vec![0.95, 0.05, 0.2, 0.8])
        .unwrap();
    b.set_cpt(letter, vec![grade], vec![0.1, 0.9, 0.4, 0.6, 0.99, 0.01])
        .unwrap();
    b.build().expect("student network is valid")
}

/// All built-in datasets by name, for harness/CLI lookups.
pub fn by_name(name: &str) -> Option<BayesianNetwork> {
    match name {
        "sprinkler" => Some(sprinkler()),
        "asia" => Some(asia()),
        "cancer" => Some(cancer()),
        "student" => Some(student()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_and_validate() {
        for name in ["sprinkler", "asia", "cancer", "student"] {
            let net = by_name(name).unwrap();
            assert_eq!(net.name(), name);
            for cpt in net.cpts() {
                cpt.validate().unwrap();
            }
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn asia_structure_matches_the_paper_figure() {
        let net = asia();
        assert_eq!(net.num_vars(), 8);
        assert_eq!(net.num_edges(), 8);
        let either = net.var_id("TbOrCa").unwrap();
        let parents: Vec<String> = net
            .parents(either)
            .map(|p| net.var(p).name().to_string())
            .collect();
        assert_eq!(parents, vec!["Tuberculosis", "LungCancer"]);
    }

    #[test]
    fn sprinkler_cpt_lookup() {
        let net = sprinkler();
        let wet = net.var_id("WetGrass").unwrap();
        // P(wet=true | sprinkler=false, rain=true) = 0.9
        assert!((net.cpt(wet).probability(0, &[1, 0]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn student_grade_has_three_states() {
        let net = student();
        let grade = net.var_id("Grade").unwrap();
        assert_eq!(net.cardinality(grade), 3);
        assert_eq!(net.cpt(grade).num_rows(), 4);
    }

    #[test]
    fn asia_independencies_hold_structurally() {
        let net = asia();
        let d = net.dag();
        let asia_v = net.var_id("VisitAsia").unwrap().0;
        let smoke = net.var_id("Smoker").unwrap().0;
        let dysp = net.var_id("Dyspnea").unwrap().0;
        // Smoking and visiting Asia are marginally independent...
        assert!(d.d_separated(asia_v, smoke, &[]));
        // ...but both influence dyspnea.
        assert!(!d.d_separated(asia_v, dysp, &[]));
        assert!(!d.d_separated(smoke, dysp, &[]));
    }
}
