//! Directed-acyclic-graph structure and the graph algorithms the pipeline
//! needs: topological ordering, reachability, moral edges and d-separation.

use crate::variable::VarId;

/// The DAG of a Bayesian network: per-node parent and child lists.
///
/// Node ids are dense `0..n` and correspond to [`VarId`] indices. Edge
/// lists are kept sorted so iteration order (and therefore everything
/// derived from it, like elimination tie-breaking) is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    parents: Vec<Vec<u32>>,
    children: Vec<Vec<u32>>,
}

/// Errors from DAG mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Edge endpoint out of range.
    NodeOutOfRange { node: u32, nodes: usize },
    /// The edge already exists.
    DuplicateEdge { parent: u32, child: u32 },
    /// Self loops are not allowed.
    SelfLoop { node: u32 },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (graph has {nodes} nodes)")
            }
            DagError::DuplicateEdge { parent, child } => {
                write!(f, "duplicate edge {parent} -> {child}")
            }
            DagError::SelfLoop { node } => write!(f, "self loop on node {node}"),
        }
    }
}

impl std::error::Error for DagError {}

impl Dag {
    /// An edgeless DAG on `n` nodes.
    pub fn new(n: usize) -> Self {
        Dag {
            parents: vec![Vec::new(); n],
            children: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parents.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }

    /// Adds `parent -> child`. Acyclicity is *not* checked here (that is a
    /// whole-graph property verified by [`Dag::topological_order`]).
    pub fn add_edge(&mut self, parent: u32, child: u32) -> Result<(), DagError> {
        let n = self.num_nodes();
        for node in [parent, child] {
            if node as usize >= n {
                return Err(DagError::NodeOutOfRange { node, nodes: n });
            }
        }
        if parent == child {
            return Err(DagError::SelfLoop { node: parent });
        }
        match self.parents[child as usize].binary_search(&parent) {
            Ok(_) => return Err(DagError::DuplicateEdge { parent, child }),
            Err(pos) => self.parents[child as usize].insert(pos, parent),
        }
        let pos = self.children[parent as usize]
            .binary_search(&child)
            .unwrap_err();
        self.children[parent as usize].insert(pos, child);
        Ok(())
    }

    /// Sorted parent ids of `node`.
    pub fn parents(&self, node: u32) -> &[u32] {
        &self.parents[node as usize]
    }

    /// Sorted child ids of `node`.
    pub fn children(&self, node: u32) -> &[u32] {
        &self.children[node as usize]
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: u32) -> usize {
        self.parents[node as usize].len()
    }

    /// Largest in-degree over all nodes (0 for the empty graph).
    pub fn max_in_degree(&self) -> usize {
        self.parents.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Kahn topological sort. Returns `None` if the graph has a cycle.
    /// Ties are broken by node id, so the order is deterministic.
    pub fn topological_order(&self) -> Option<Vec<u32>> {
        let n = self.num_nodes();
        let mut in_deg: Vec<usize> = (0..n).map(|v| self.parents[v].len()).collect();
        // A BinaryHeap would give the same result; a sorted frontier via
        // BTreeSet keeps this simple and n is small (≤ ~1k nodes).
        let mut frontier: std::collections::BTreeSet<u32> =
            (0..n as u32).filter(|&v| in_deg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&v) = frontier.iter().next() {
            frontier.remove(&v);
            order.push(v);
            for &c in &self.children[v as usize] {
                in_deg[c as usize] -= 1;
                if in_deg[c as usize] == 0 {
                    frontier.insert(c);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// All ancestors of the given seed set (excluding the seeds themselves
    /// unless reachable), as a boolean mask.
    pub fn ancestor_mask(&self, seeds: impl IntoIterator<Item = u32>) -> Vec<bool> {
        self.reach_mask(seeds, |v| &self.parents[v as usize])
    }

    /// All descendants of the given seed set, as a boolean mask.
    pub fn descendant_mask(&self, seeds: impl IntoIterator<Item = u32>) -> Vec<bool> {
        self.reach_mask(seeds, |v| &self.children[v as usize])
    }

    fn reach_mask<'a>(
        &'a self,
        seeds: impl IntoIterator<Item = u32>,
        step: impl Fn(u32) -> &'a [u32],
    ) -> Vec<bool> {
        let mut mask = vec![false; self.num_nodes()];
        let mut stack: Vec<u32> = seeds.into_iter().collect();
        while let Some(v) = stack.pop() {
            for &next in step(v) {
                if !mask[next as usize] {
                    mask[next as usize] = true;
                    stack.push(next);
                }
            }
        }
        mask
    }

    /// Undirected edges of the **moral graph**: every directed edge plus a
    /// "marriage" edge between every pair of co-parents. Returned with
    /// `a < b`, sorted, deduplicated — the input to triangulation.
    pub fn moral_edges(&self) -> Vec<(u32, u32)> {
        let mut edges = Vec::with_capacity(self.num_edges() * 2);
        for child in 0..self.num_nodes() as u32 {
            let ps = self.parents(child);
            for &p in ps {
                edges.push(ord(p, child));
            }
            for (i, &a) in ps.iter().enumerate() {
                for &b in &ps[i + 1..] {
                    edges.push(ord(a, b));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// d-separation test: are `x` and `y` d-separated given the set `z`?
    ///
    /// Implemented as the standard active-trail reachability ("Bayes
    /// ball"): `x` and `y` are d-*connected* iff there is a trail that is
    /// active given `z`. Used as a structural oracle in tests (conditional
    /// independencies implied by the DAG must hold in every engine's
    /// posteriors).
    pub fn d_separated(&self, x: u32, y: u32, z: &[u32]) -> bool {
        if x == y {
            return false;
        }
        let n = self.num_nodes();
        let mut in_z = vec![false; n];
        for &v in z {
            in_z[v as usize] = true;
        }
        // A collider is active iff it or a descendant is observed.
        let anc_of_z = {
            let mut mask = self.ancestor_mask(z.iter().copied());
            for &v in z {
                mask[v as usize] = true;
            }
            mask
        };
        // State: (node, entered_via_child_edge). Start as if entering x
        // from a virtual child (allows both directions out of x).
        let mut visited = vec![[false; 2]; n];
        let mut stack = vec![(x, true)];
        while let Some((v, from_child)) = stack.pop() {
            let dir = usize::from(from_child);
            if visited[v as usize][dir] {
                continue;
            }
            visited[v as usize][dir] = true;
            if v == y {
                return false; // reached y via an active trail
            }
            if from_child {
                // Trail arrives from a child (i.e. we're moving "up").
                if !in_z[v as usize] {
                    for &p in self.parents(v) {
                        stack.push((p, true));
                    }
                    for &c in self.children(v) {
                        stack.push((c, false));
                    }
                }
            } else {
                // Trail arrives from a parent (moving "down").
                if !in_z[v as usize] {
                    for &c in self.children(v) {
                        stack.push((c, false));
                    }
                }
                if anc_of_z[v as usize] {
                    // v is an (ancestor of an) observed collider: bounce up.
                    for &p in self.parents(v) {
                        stack.push((p, true));
                    }
                }
            }
        }
        true
    }

    /// Convenience: connected components of the *undirected skeleton*.
    /// Disconnected networks yield junction *forests* downstream.
    pub fn undirected_components(&self) -> Vec<Vec<u32>> {
        let n = self.num_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut components = Vec::new();
        for start in 0..n as u32 {
            if comp[start as usize] != usize::MAX {
                continue;
            }
            let id = components.len();
            let mut members = vec![start];
            comp[start as usize] = id;
            let mut stack = vec![start];
            while let Some(v) = stack.pop() {
                for &next in self.parents(v).iter().chain(self.children(v)) {
                    if comp[next as usize] == usize::MAX {
                        comp[next as usize] = id;
                        members.push(next);
                        stack.push(next);
                    }
                }
            }
            members.sort_unstable();
            components.push(members);
        }
        components
    }

    /// The family of a node: `{node} ∪ parents(node)`, sorted. This is the
    /// scope of the node's CPT and must be covered by some clique.
    pub fn family(&self, node: VarId) -> Vec<VarId> {
        let mut fam: Vec<VarId> = self.parents(node.0).iter().map(|&p| VarId(p)).collect();
        fam.push(node);
        fam.sort_unstable();
        fam
    }
}

#[inline]
fn ord(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic 5-node "student"-shaped DAG:
    /// 0 -> 2 <- 1, 2 -> 4, 1 -> 3.
    fn student_dag() -> Dag {
        let mut g = Dag::new(5);
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 4).unwrap();
        g.add_edge(1, 3).unwrap();
        g
    }

    #[test]
    fn edges_and_degrees() {
        let g = student_dag();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.parents(2), &[0, 1]);
        assert_eq!(g.children(1), &[2, 3]);
        assert_eq!(g.max_in_degree(), 2);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Dag::new(3);
        assert_eq!(
            g.add_edge(0, 5),
            Err(DagError::NodeOutOfRange { node: 5, nodes: 3 })
        );
        assert_eq!(g.add_edge(1, 1), Err(DagError::SelfLoop { node: 1 }));
        g.add_edge(0, 1).unwrap();
        assert_eq!(
            g.add_edge(0, 1),
            Err(DagError::DuplicateEdge {
                parent: 0,
                child: 1
            })
        );
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = student_dag();
        let order = g.topological_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for child in 0..5u32 {
            for &parent in g.parents(child) {
                assert!(pos[parent as usize] < pos[child as usize]);
            }
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = Dag::new(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 0).unwrap();
        assert!(!g.is_acyclic());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn ancestor_and_descendant_masks() {
        let g = student_dag();
        let anc = g.ancestor_mask([4]);
        assert_eq!(anc, vec![true, true, true, false, false]);
        let desc = g.descendant_mask([1]);
        assert_eq!(desc, vec![false, false, true, true, true]);
    }

    #[test]
    fn moral_edges_marry_coparents() {
        let g = student_dag();
        let edges = g.moral_edges();
        // Directed edges (undirected) + marriage (0,1) for co-parents of 2.
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 4)]);
    }

    #[test]
    fn d_separation_on_the_student_graph() {
        let g = student_dag();
        // 0 and 1 are marginally independent (collider at 2)...
        assert!(g.d_separated(0, 1, &[]));
        // ...but conditioning on the collider or its descendant connects them.
        assert!(!g.d_separated(0, 1, &[2]));
        assert!(!g.d_separated(0, 1, &[4]));
        // Chain 1 -> 2 -> 4 is blocked by observing 2.
        assert!(!g.d_separated(1, 4, &[]));
        assert!(g.d_separated(1, 4, &[2]));
        // Fork: 2 <- 1 -> 3; observing 1 separates 2 and 3.
        assert!(!g.d_separated(2, 3, &[]));
        assert!(g.d_separated(2, 3, &[1]));
        // A node is never d-separated from itself.
        assert!(!g.d_separated(3, 3, &[]));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Dag::new(5);
        g.add_edge(0, 1).unwrap();
        g.add_edge(3, 4).unwrap();
        let comps = g.undirected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn family_is_sorted_and_includes_self() {
        let g = student_dag();
        assert_eq!(g.family(VarId(2)), vec![VarId(0), VarId(1), VarId(2)]);
        assert_eq!(g.family(VarId(0)), vec![VarId(0)]);
    }
}
