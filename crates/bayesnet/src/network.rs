//! The Bayesian network: variables + DAG + CPTs, with a validating builder.

use std::collections::HashMap;

use crate::cpt::{Cpt, CptError};
use crate::graph::{Dag, DagError};
use crate::variable::{VarId, Variable};

/// A validated discrete Bayesian network.
///
/// Invariants (enforced by [`NetworkBuilder::build`]):
/// * exactly one CPT per variable, stored at the variable's index;
/// * every CPT's parent list matches the DAG's parent set (CPT order may
///   differ from the DAG's sorted order — the CPT keeps its own layout);
/// * the DAG is acyclic;
/// * all CPT rows are normalized distributions.
#[derive(Debug, Clone)]
pub struct BayesianNetwork {
    name: String,
    variables: Vec<Variable>,
    cpts: Vec<Cpt>,
    dag: Dag,
    topo_order: Vec<u32>,
}

/// Errors detected while assembling a network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// Two variables share a name.
    DuplicateVariableName(String),
    /// A CPT refers to an unknown variable id.
    UnknownVariable(VarId),
    /// `set_cpt` was called twice for the same child.
    DuplicateCpt(VarId),
    /// A variable has no CPT.
    MissingCpt(VarId),
    /// The declared parent cardinalities disagree with the variables.
    CardinalityMismatch {
        /// The CPT's child.
        child: VarId,
        /// The offending variable.
        var: VarId,
        /// Cardinality recorded in the CPT.
        in_cpt: usize,
        /// Cardinality of the declared variable.
        declared: usize,
    },
    /// Graph construction failed (duplicate edge, self-loop, ...).
    Graph(DagError),
    /// The parent structure has a directed cycle.
    Cyclic,
    /// CPT numeric validation failed.
    Cpt(VarId, CptError),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::DuplicateVariableName(name) => {
                write!(f, "duplicate variable name {name:?}")
            }
            NetworkError::UnknownVariable(v) => write!(f, "unknown variable {v}"),
            NetworkError::DuplicateCpt(v) => write!(f, "CPT for {v} set twice"),
            NetworkError::MissingCpt(v) => write!(f, "no CPT for variable {v}"),
            NetworkError::CardinalityMismatch {
                child,
                var,
                in_cpt,
                declared,
            } => write!(
                f,
                "CPT of {child}: variable {var} has cardinality {in_cpt} in the CPT but {declared} declared"
            ),
            NetworkError::Graph(e) => write!(f, "graph error: {e}"),
            NetworkError::Cyclic => write!(f, "parent structure contains a directed cycle"),
            NetworkError::Cpt(v, e) => write!(f, "CPT of {v}: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<DagError> for NetworkError {
    fn from(e: DagError) -> Self {
        NetworkError::Graph(e)
    }
}

impl BayesianNetwork {
    /// Network name (BIF `network` declaration; defaults to `"network"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.dag.num_edges()
    }

    /// The variable with id `id`.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.variables[id.index()]
    }

    /// All variables, indexed by id.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Looks a variable up by name (linear scan; names are for I/O, hot
    /// paths use ids).
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.variables
            .iter()
            .position(|v| v.name() == name)
            .map(VarId::from_index)
    }

    /// Cardinality of variable `id`.
    pub fn cardinality(&self, id: VarId) -> usize {
        self.variables[id.index()].cardinality()
    }

    /// All cardinalities, indexed by variable id.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.variables.iter().map(Variable::cardinality).collect()
    }

    /// The CPT of variable `id`.
    pub fn cpt(&self, id: VarId) -> &Cpt {
        &self.cpts[id.index()]
    }

    /// All CPTs, indexed by child variable id.
    pub fn cpts(&self) -> &[Cpt] {
        &self.cpts
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// Sorted parent ids of `id`.
    pub fn parents(&self, id: VarId) -> impl Iterator<Item = VarId> + '_ {
        self.dag.parents(id.0).iter().map(|&p| VarId(p))
    }

    /// Sorted child ids of `id`.
    pub fn children(&self, id: VarId) -> impl Iterator<Item = VarId> + '_ {
        self.dag.children(id.0).iter().map(|&c| VarId(c))
    }

    /// A fixed topological order of the variables (parents before
    /// children), computed once at build time.
    pub fn topological_order(&self) -> &[u32] {
        &self.topo_order
    }

    /// Total number of stored CPT parameters — the "parameters" statistic
    /// quoted for the bnlearn repository networks.
    pub fn total_parameters(&self) -> usize {
        self.cpts.iter().map(Cpt::num_parameters).sum()
    }

    /// Largest in-degree.
    pub fn max_in_degree(&self) -> usize {
        self.dag.max_in_degree()
    }

    /// Largest state count.
    pub fn max_cardinality(&self) -> usize {
        self.variables
            .iter()
            .map(Variable::cardinality)
            .max()
            .unwrap_or(0)
    }

    /// Mean state count.
    pub fn avg_cardinality(&self) -> f64 {
        if self.variables.is_empty() {
            return 0.0;
        }
        self.variables
            .iter()
            .map(|v| v.cardinality() as f64)
            .sum::<f64>()
            / self.variables.len() as f64
    }
}

/// Staged construction of a [`BayesianNetwork`].
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    name: String,
    variables: Vec<Variable>,
    cpts: Vec<Option<Cpt>>,
    names: HashMap<String, VarId>,
    duplicate_name: Option<String>,
}

impl NetworkBuilder {
    /// Starts an empty network called `"network"`.
    pub fn new() -> Self {
        NetworkBuilder {
            name: "network".to_string(),
            ..Default::default()
        }
    }

    /// Sets the network name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Declares a variable and returns its id. Duplicate names are reported
    /// at `build` time (so builder calls can stay infallible).
    pub fn add_variable(&mut self, variable: Variable) -> VarId {
        let id = VarId::from_index(self.variables.len());
        if self.names.insert(variable.name().to_string(), id).is_some()
            && self.duplicate_name.is_none()
        {
            self.duplicate_name = Some(variable.name().to_string());
        }
        self.variables.push(variable);
        self.cpts.push(None);
        id
    }

    /// Shorthand: declare a variable by name + state names.
    pub fn add_var(&mut self, name: &str, states: &[&str]) -> VarId {
        self.add_variable(Variable::new(
            name,
            states.iter().map(|s| s.to_string()).collect(),
        ))
    }

    /// Sets `P(child | parents)` with the layout documented on [`Cpt`].
    pub fn set_cpt(
        &mut self,
        child: VarId,
        parents: Vec<VarId>,
        values: Vec<f64>,
    ) -> Result<(), NetworkError> {
        for &v in parents.iter().chain([&child]) {
            if v.index() >= self.variables.len() {
                return Err(NetworkError::UnknownVariable(v));
            }
        }
        if self.cpts[child.index()].is_some() {
            return Err(NetworkError::DuplicateCpt(child));
        }
        let child_card = self.variables[child.index()].cardinality();
        let parent_cards: Vec<usize> = parents
            .iter()
            .map(|p| self.variables[p.index()].cardinality())
            .collect();
        let cpt = Cpt::new(child, parents, child_card, parent_cards, values)
            .map_err(|e| NetworkError::Cpt(child, e))?;
        self.cpts[child.index()] = Some(cpt);
        Ok(())
    }

    /// Validates all invariants and produces the network.
    pub fn build(self) -> Result<BayesianNetwork, NetworkError> {
        if let Some(name) = self.duplicate_name {
            return Err(NetworkError::DuplicateVariableName(name));
        }
        let n = self.variables.len();
        let mut cpts = Vec::with_capacity(n);
        for (i, slot) in self.cpts.into_iter().enumerate() {
            cpts.push(slot.ok_or(NetworkError::MissingCpt(VarId::from_index(i)))?);
        }
        let mut dag = Dag::new(n);
        for cpt in &cpts {
            for &p in cpt.parents() {
                dag.add_edge(p.0, cpt.child().0)?;
            }
        }
        let topo_order = dag.topological_order().ok_or(NetworkError::Cyclic)?;
        // Cross-check CPT cardinalities against the declared variables.
        for cpt in &cpts {
            let declared = self.variables[cpt.child().index()].cardinality();
            if cpt.child_cardinality() != declared {
                return Err(NetworkError::CardinalityMismatch {
                    child: cpt.child(),
                    var: cpt.child(),
                    in_cpt: cpt.child_cardinality(),
                    declared,
                });
            }
            for (&p, &card) in cpt.parents().iter().zip(cpt.parent_cardinalities()) {
                let declared = self.variables[p.index()].cardinality();
                if card != declared {
                    return Err(NetworkError::CardinalityMismatch {
                        child: cpt.child(),
                        var: p,
                        in_cpt: card,
                        declared,
                    });
                }
            }
        }
        Ok(BayesianNetwork {
            name: self.name,
            variables: self.variables,
            cpts,
            dag,
            topo_order,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net() -> BayesianNetwork {
        let mut b = NetworkBuilder::new().named("mini");
        let a = b.add_var("A", &["t", "f"]);
        let c = b.add_var("B", &["t", "f"]);
        b.set_cpt(a, vec![], vec![0.3, 0.7]).unwrap();
        b.set_cpt(c, vec![a], vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_and_query_structure() {
        let net = two_node_net();
        assert_eq!(net.name(), "mini");
        assert_eq!(net.num_vars(), 2);
        assert_eq!(net.num_edges(), 1);
        assert_eq!(net.var_id("B"), Some(VarId(1)));
        assert_eq!(net.var_id("missing"), None);
        assert_eq!(net.cardinality(VarId(0)), 2);
        assert_eq!(net.total_parameters(), 6);
        assert_eq!(net.parents(VarId(1)).collect::<Vec<_>>(), vec![VarId(0)]);
        assert_eq!(net.children(VarId(0)).collect::<Vec<_>>(), vec![VarId(1)]);
        assert_eq!(net.topological_order(), &[0, 1]);
        assert_eq!(net.max_in_degree(), 1);
        assert_eq!(net.max_cardinality(), 2);
        assert!((net.avg_cardinality() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn missing_cpt_rejected() {
        let mut b = NetworkBuilder::new();
        let _a = b.add_var("A", &["t", "f"]);
        assert_eq!(b.build().unwrap_err(), NetworkError::MissingCpt(VarId(0)));
    }

    #[test]
    fn duplicate_cpt_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.add_var("A", &["t", "f"]);
        b.set_cpt(a, vec![], vec![0.5, 0.5]).unwrap();
        assert_eq!(
            b.set_cpt(a, vec![], vec![0.5, 0.5]).unwrap_err(),
            NetworkError::DuplicateCpt(a)
        );
    }

    #[test]
    fn duplicate_name_rejected_at_build() {
        let mut b = NetworkBuilder::new();
        let a = b.add_var("A", &["t", "f"]);
        let a2 = b.add_var("A", &["t", "f"]);
        b.set_cpt(a, vec![], vec![0.5, 0.5]).unwrap();
        b.set_cpt(a2, vec![], vec![0.5, 0.5]).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            NetworkError::DuplicateVariableName("A".into())
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.add_var("A", &["t", "f"]);
        let c = b.add_var("B", &["t", "f"]);
        b.set_cpt(a, vec![c], vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        b.set_cpt(c, vec![a], vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        assert_eq!(b.build().unwrap_err(), NetworkError::Cyclic);
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.add_var("A", &["t", "f"]);
        assert_eq!(
            b.set_cpt(a, vec![VarId(7)], vec![0.5; 4]).unwrap_err(),
            NetworkError::UnknownVariable(VarId(7))
        );
    }
}
