//! The live introspection endpoint: a hand-rolled HTTP/1.1 responder
//! over [`std::net::TcpListener`].
//!
//! The build environment vendors its few dependencies as minimal shims
//! (no `tokio`, no `hyper`), and an introspection endpoint serving a
//! scrape every few seconds does not need an async runtime: one
//! accept-loop thread answering one small GET at a time is the whole
//! design. Routes:
//!
//! | Path             | Body                                               |
//! |------------------|----------------------------------------------------|
//! | `/metrics`       | Prometheus text exposition of the metrics snapshot |
//! | `/metrics.json`  | The same snapshot as metrics-schema-v1 JSON        |
//! | `/traces/recent` | Recent sampled traces (see [`Tracer::traces_json`])|
//! | `/traces/slow`   | The slow-query log (see [`Tracer::slow_json`])     |
//! | `/healthz`       | `ok`                                               |
//!
//! Shutdown is cooperative: [`Introspection::shutdown`] (also run on
//! drop) raises a flag and pokes the listener with a loopback connect
//! so the accept call returns.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::json::Json;
use crate::prom::prometheus_text;
use crate::registry::MetricsSnapshot;
use crate::trace::Tracer;

/// How the endpoint obtains a fresh metrics snapshot per scrape — a
/// closure, so servers can refresh gauges on the way out.
pub type SnapshotFn = Arc<dyn Fn() -> MetricsSnapshot + Send + Sync>;

/// Builder for [`Introspection`].
pub struct IntrospectionBuilder {
    metrics: Option<SnapshotFn>,
    tracer: Option<Arc<Tracer>>,
    recent_limit: usize,
}

impl IntrospectionBuilder {
    /// Wires the `/metrics` + `/metrics.json` snapshot source.
    pub fn metrics(mut self, snapshot: SnapshotFn) -> Self {
        self.metrics = Some(snapshot);
        self
    }

    /// Wires the `/traces/*` source. Without one, the trace endpoints
    /// answer empty documents.
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Caps how many traces `/traces/recent` returns (default 32).
    pub fn recent_limit(mut self, limit: usize) -> Self {
        self.recent_limit = limit;
        self
    }

    /// Binds (use port 0 for an OS-assigned port — read it back from
    /// [`Introspection::addr`]) and spawns the accept loop.
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<Introspection> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let routes = Routes {
            metrics: self.metrics,
            tracer: self.tracer,
            recent_limit: self.recent_limit,
        };
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("fastbn-introspect".to_string())
            .spawn(move || accept_loop(listener, &routes, &flag))?;
        Ok(Introspection {
            addr,
            shutdown,
            handle: Some(handle),
        })
    }
}

/// A running introspection endpoint. Shuts down on drop.
pub struct Introspection {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Introspection {
    /// A builder with no sources wired yet.
    pub fn builder() -> IntrospectionBuilder {
        IntrospectionBuilder {
            metrics: None,
            tracer: None,
            recent_limit: 32,
        }
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        // ORDERING: the flag store must be visible to the accept loop
        // before the wake-up connect below lands; SeqCst pairs with the
        // loads in `accept_loop`.
        self.shutdown.store(true, Ordering::SeqCst);
        let Some(handle) = self.handle.take() else {
            return;
        };
        // Poke the blocking accept so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Introspection {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Introspection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Introspection")
            .field("addr", &self.addr)
            .finish()
    }
}

struct Routes {
    metrics: Option<SnapshotFn>,
    tracer: Option<Arc<Tracer>>,
    recent_limit: usize,
}

fn accept_loop(listener: TcpListener, routes: &Routes, shutdown: &AtomicBool) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // ORDERING: pairs with the SeqCst store in `shutdown` — the
            // wake-up connect happens after the flag store, so a woken
            // accept observes it.
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Transient accept failure (EMFILE, aborted handshake):
            // back off instead of spinning.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        // ORDERING: pairs with the SeqCst store in `shutdown` (the
        // wake-up connect is itself a successful accept landing here).
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // One small response per connection; a hung client can stall a
        // scrape, not the server — timeouts bound every read/write.
        let _ = serve_connection(stream, routes);
    }
}

fn serve_connection(mut stream: TcpStream, routes: &Routes) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let Some(path) = read_request_path(&mut stream)? else {
        return respond(&mut stream, 400, "text/plain", "bad request\n");
    };
    match path.as_str() {
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/metrics" => match &routes.metrics {
            Some(snapshot) => respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &prometheus_text(&snapshot()),
            ),
            None => respond(&mut stream, 404, "text/plain", "no metrics source\n"),
        },
        "/metrics.json" => match &routes.metrics {
            Some(snapshot) => respond(
                &mut stream,
                200,
                "application/json",
                &snapshot().to_json().to_pretty(),
            ),
            None => respond(&mut stream, 404, "text/plain", "no metrics source\n"),
        },
        "/traces/recent" => {
            let doc = match &routes.tracer {
                Some(tracer) => tracer.traces_json(routes.recent_limit),
                None => Json::obj().set("traces", Json::Arr(Vec::new())),
            };
            respond(&mut stream, 200, "application/json", &doc.to_pretty())
        }
        "/traces/slow" => {
            let doc = match &routes.tracer {
                Some(tracer) => tracer.slow_json(),
                None => Json::obj()
                    .set("total", 0u64)
                    .set("threshold_ns", 0u64)
                    .set("entries", Json::Arr(Vec::new())),
            };
            respond(&mut stream, 200, "application/json", &doc.to_pretty())
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Reads the request head (capped at 8 KiB) and returns the GET path,
/// or `None` when the request line is not a plausible `GET`.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = [0u8; 8192];
    let mut len = 0usize;
    loop {
        if len == buf.len() {
            return Ok(None);
        }
        let n = match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        };
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        _ => "Not Found",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::trace::{SpanRecord, TraceConfig, SPAN_REQUEST};

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_traces_and_health() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("serve.completed").add(3);
        registry.histogram("lat_ns").record(1000);
        let tracer = Arc::new(Tracer::new(TraceConfig::default()));
        let span = tracer.next_span();
        tracer.record(&SpanRecord {
            trace: 1,
            span,
            parent: 0,
            name: SPAN_REQUEST,
            start_ns: 0,
            dur_ns: 9,
            tag: 0,
            aux: 0,
        });

        let snapshot_registry = Arc::clone(&registry);
        let endpoint = Introspection::builder()
            .metrics(Arc::new(move || snapshot_registry.snapshot()))
            .tracer(Arc::clone(&tracer))
            .bind("127.0.0.1:0")
            .unwrap();
        let addr = endpoint.addr();

        let (status, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("serve_completed 3"));
        assert!(body.contains("lat_ns_sum 1000"));
        assert!(body.contains("lat_ns_count 1"));

        let (status, body) = get(addr, "/metrics.json");
        assert_eq!(status, 200);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("serve.completed")
                .unwrap()
                .as_u64(),
            Some(3)
        );

        let (status, body) = get(addr, "/traces/recent");
        assert_eq!(status, 200);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("traces").unwrap().as_arr().unwrap().len(), 1);

        let (status, body) = get(addr, "/traces/slow");
        assert_eq!(status, 200);
        assert!(Json::parse(&body).is_ok());

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
    }

    #[test]
    fn shutdown_joins_and_port_closes() {
        let mut endpoint = Introspection::builder().bind("127.0.0.1:0").unwrap();
        let addr = endpoint.addr();
        let (status, _) = get(addr, "/traces/slow");
        assert_eq!(status, 200);
        endpoint.shutdown();
        // After shutdown, the accept thread is gone: a fresh connect
        // either fails outright or gets no response.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = write!(s, "GET /healthz HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(!out.contains("200 OK"));
        }
    }

    #[test]
    fn endpoints_answer_empty_without_sources() {
        let endpoint = Introspection::builder().bind("127.0.0.1:0").unwrap();
        let (status, _) = get(endpoint.addr(), "/metrics");
        assert_eq!(status, 404);
        let (status, body) = get(endpoint.addr(), "/traces/recent");
        assert_eq!(status, 200);
        let parsed = Json::parse(&body).unwrap();
        assert!(parsed.get("traces").unwrap().as_arr().unwrap().is_empty());
    }
}
