//! End-to-end request tracing: per-thread lock-free span rings, head
//! sampling, and an always-on slow-query log.
//!
//! fastbn: deny-hot-alloc
//!
//! A [`Tracer`] is the per-server tracing authority: it mints trace and
//! span IDs, decides head-based sampling (1-in-N by trace ID), owns the
//! span storage, and keeps the slow-query log. The serving stack
//! attaches one to a `RoutedServer`; instrumented layers downstream
//! (queue, window, batch compute, engine propagation) record
//! [`SpanRecord`]s against it.
//!
//! # Storage: single-producer seqlock rings
//!
//! Span recording must cost nothing measurable on the serving hot path,
//! so spans land in **fixed-capacity per-thread rings**: every slot is a
//! block of `AtomicU64` fields guarded by a per-slot sequence word
//! (odd = write in progress). The recording thread is the only writer
//! of its ring — rings are reached through a thread-local cache — so a
//! record is a handful of `Relaxed` stores bracketed by two fences and
//! two sequence stores: **no locks, no allocation, no syscalls** in
//! steady state (the ring itself is allocated once per thread, off the
//! record path; locked in by `tests/alloc.rs`). Readers (the
//! introspection endpoint, the `trace` bin) validate the sequence word
//! before and after copying a slot and drop torn reads; old spans are
//! simply overwritten.
//!
//! # Sampling and the slow-query log
//!
//! Head sampling keeps tracing cheap under load: a trace is *sampled*
//! (gets the full span tree) iff `trace_id % sample_every == 0`
//! ([`TraceConfig::sample_every`]; 0 disables sampling entirely).
//! Orthogonally, the **slow-query log is always on**: every request
//! whose total latency exceeds [`TraceConfig::slow_threshold`] is
//! force-retained as a [`SlowEntry`] — a compact per-request summary,
//! not a span tree — in a bounded ring with an exact total count, so
//! the one request that mattered is never lost to sampling.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::json::Json;

/// An interned span-name identifier. Well-known stage names are
/// pre-interned constants ([`SPAN_REQUEST`] …); dynamic names (model
/// ids) come from [`Tracer::intern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// Root span of one request, admission → delivery.
pub const SPAN_REQUEST: NameId = NameId(0);
/// Time between enqueue and a worker popping the request.
pub const SPAN_QUEUE_WAIT: NameId = NameId(1);
/// Micro-batching window the request waited in.
pub const SPAN_WINDOW: NameId = NameId(2);
/// Batch compute (`query_batch`) the request rode in.
pub const SPAN_COMPUTE: NameId = NameId(3);
/// Result fan-out back to the waiting client.
pub const SPAN_DELIVERY: NameId = NameId(4);
/// Engine propagation, collect (upward) phase.
pub const SPAN_COLLECT: NameId = NameId(5);
/// Engine propagation, distribute (downward) phase.
pub const SPAN_DISTRIBUTE: NameId = NameId(6);
/// One clique kernel (only with the `trace-kernels` feature; `tag` is
/// the `KernelPlan` layout class, `aux` the clique index).
pub const SPAN_KERNEL: NameId = NameId(7);

const WELL_KNOWN: [&str; 8] = [
    "request",
    "queue_wait",
    "window",
    "compute",
    "delivery",
    "collect",
    "distribute",
    "kernel",
];
const FIRST_DYNAMIC: u32 = WELL_KNOWN.len() as u32;

/// Tracing knobs. Plain fields; use struct-update syntax over
/// [`Default`] to change a subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Head sampling: a trace gets its full span tree iff
    /// `trace_id % sample_every == 0`. `1` samples everything, `0`
    /// disables sampling (the slow-query log still runs).
    pub sample_every: u64,
    /// Requests slower than this enter the slow-query log regardless of
    /// sampling.
    pub slow_threshold: Duration,
    /// Span slots per recording thread (rounded up to a power of two,
    /// minimum 8). Old spans are overwritten.
    pub ring_capacity: usize,
    /// Slow-query log entries retained (oldest overwritten; the total
    /// count stays exact).
    pub slow_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sample_every: 16,
            slow_threshold: Duration::from_millis(100),
            ring_capacity: 2048,
            slow_capacity: 128,
        }
    }
}

/// One completed span, as recorded and as read back. `tag`/`aux` are
/// span-kind-specific payload: batch size and model name id on
/// `request` spans, layout class and clique index on `kernel` spans,
/// zero elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to (minted at admission; never 0).
    pub trace: u64,
    /// This span's id (unique within the tracer; never 0).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Interned span name.
    pub name: NameId,
    /// Start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Span-kind-specific payload (see type docs).
    pub tag: u64,
    /// Span-kind-specific payload (see type docs).
    pub aux: u64,
}

/// The admission-time decision for one request: its trace id and
/// whether it is head-sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceToken {
    /// The minted trace id (never 0).
    pub trace: u64,
    /// Whether this trace records a full span tree.
    pub sampled: bool,
}

/// One slow-query log record — the compact always-on summary of a
/// request that exceeded the threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// The request's trace id.
    pub trace: u64,
    /// Model the request was routed to.
    pub model: String,
    /// End-to-end latency, admission → delivery.
    pub total_ns: u64,
    /// Time spent queued before a worker picked the request up.
    pub queue_ns: u64,
    /// Batch compute time of the batch the request rode in.
    pub compute_ns: u64,
    /// Size of that batch.
    pub batch: u64,
    /// Whether the trace was also head-sampled (span tree available).
    pub sampled: bool,
    /// Completion time, nanoseconds since the tracer's epoch.
    pub at_ns: u64,
}

/// One trace's spans, as grouped by [`Tracer::recent_traces`] (sorted
/// by start time, then span id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceView {
    /// The trace id.
    pub trace: u64,
    /// Its spans, start-ordered.
    pub spans: Vec<SpanRecord>,
}

/// One span slot: a seqlock (odd `seq` = write in progress) over eight
/// payload words. All-atomic so the whole scheme stays in safe code.
struct SpanSlot {
    seq: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    name: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    tag: AtomicU64,
    aux: AtomicU64,
}

impl SpanSlot {
    const fn empty() -> SpanSlot {
        SpanSlot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            name: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            tag: AtomicU64::new(0),
            aux: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity single-producer span ring. The owning thread is the
/// only writer (rings are reached via the thread-local cache); any
/// thread may read concurrently and gets seqlock-validated copies.
pub(crate) struct SpanRing {
    slots: Box<[SpanSlot]>,
    mask: usize,
    /// Total spans ever pushed (head % capacity is the next slot).
    head: AtomicU64,
}

impl SpanRing {
    // fastbn: allow(hot-alloc): ring construction — one allocation per
    // (thread, tracer), off the steady-state record path.
    fn with_capacity(capacity: usize) -> SpanRing {
        let cap = capacity.next_power_of_two().max(8);
        let mut slots = Vec::with_capacity(cap);
        for _ in 0..cap {
            slots.push(SpanSlot::empty());
        }
        SpanRing {
            slots: slots.into_boxed_slice(),
            mask: cap - 1,
            head: AtomicU64::new(0),
        }
    }

    /// Records one span. Caller contract: only the ring's owning thread
    /// calls this (upheld by the thread-local routing in
    /// [`Tracer::record`]); a violation could only tear a slot's seqlock
    /// discipline, never memory safety.
    fn push(&self, rec: &SpanRecord) {
        let n = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[n as usize & self.mask];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        // ORDERING: Release fence orders the odd write-in-progress
        // marker above before the field stores below — a reader that
        // observes any new field value and then issues its Acquire
        // fence is guaranteed to see the odd (or later) sequence on
        // re-check and drops the torn copy.
        fence(Ordering::Release);
        slot.trace.store(rec.trace, Ordering::Relaxed);
        slot.span.store(rec.span, Ordering::Relaxed);
        slot.parent.store(rec.parent, Ordering::Relaxed);
        slot.name.store(rec.name.0 as u64, Ordering::Relaxed);
        slot.start_ns.store(rec.start_ns, Ordering::Relaxed);
        slot.dur_ns.store(rec.dur_ns, Ordering::Relaxed);
        slot.tag.store(rec.tag, Ordering::Relaxed);
        slot.aux.store(rec.aux, Ordering::Relaxed);
        // ORDERING: publishing the even sequence with Release makes
        // every field store above visible to a reader that
        // Acquire-loads this value in `read`.
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        self.head.store(n.wrapping_add(1), Ordering::Relaxed);
    }

    /// A seqlock-validated copy of slot `index`: `None` when the slot
    /// is empty or a concurrent write tore the read.
    fn read(&self, index: usize) -> Option<SpanRecord> {
        let slot = &self.slots[index & self.mask];
        // ORDERING: Acquire pairs with the Release publish in `push` —
        // an even sequence observed here makes the matching field
        // stores visible below.
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let rec = SpanRecord {
            trace: slot.trace.load(Ordering::Relaxed),
            span: slot.span.load(Ordering::Relaxed),
            parent: slot.parent.load(Ordering::Relaxed),
            name: NameId(slot.name.load(Ordering::Relaxed) as u32),
            start_ns: slot.start_ns.load(Ordering::Relaxed),
            dur_ns: slot.dur_ns.load(Ordering::Relaxed),
            tag: slot.tag.load(Ordering::Relaxed),
            aux: slot.aux.load(Ordering::Relaxed),
        };
        // ORDERING: Acquire fence orders the field loads above before
        // the re-check load below; pairs with the Release fence in
        // `push`, so a torn read cannot revalidate.
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        (s1 == s2).then_some(rec)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }
}

thread_local! {
    /// Per-thread cache mapping tracer id → this thread's ring for it.
    static RINGS: std::cell::RefCell<Vec<(u64, Arc<SpanRing>)>> =
        const { std::cell::RefCell::new(Vec::new()) }; // fastbn: allow(hot-alloc): const empty vec, never grows on the record path after first registration
}

/// Tracer instance ids, for the thread-local ring cache.
static TRACER_IDS: AtomicU64 = AtomicU64::new(1);

/// The tracing authority for one server: id minting, sampling, span
/// storage, slow-query log. `Send + Sync`; share behind an `Arc`.
#[derive(Debug)]
pub struct Tracer {
    id: u64,
    epoch: Instant,
    config: TraceConfig,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    names: Mutex<Vec<String>>,
    slow: Mutex<Vec<SlowEntry>>,
    slow_head: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.len())
            .field("pushed", &self.pushed())
            .finish()
    }
}

impl Tracer {
    /// A tracer with the given configuration.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            config,
            next_trace: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            rings: Mutex::new(Vec::with_capacity(8)),
            names: Mutex::new(Vec::with_capacity(8)),
            slow: Mutex::new(Vec::with_capacity(0)),
            slow_head: AtomicU64::new(0),
        }
    }

    /// The tracer's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Nanoseconds since this tracer was created — the time base every
    /// span's `start_ns` and every slow entry's `at_ns` use.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The configured slow-query threshold in nanoseconds.
    #[inline]
    pub fn slow_threshold_ns(&self) -> u64 {
        u64::try_from(self.config.slow_threshold.as_nanos()).unwrap_or(u64::MAX)
    }

    /// Mints a trace id and takes the head-sampling decision. Called
    /// once per request at admission.
    #[inline]
    pub fn begin_trace(&self) -> TraceToken {
        let trace = self.next_trace.fetch_add(1, Ordering::Relaxed) + 1;
        let sampled =
            self.config.sample_every > 0 && trace.is_multiple_of(self.config.sample_every);
        TraceToken { trace, sampled }
    }

    /// Mints a span id (unique within this tracer, never 0).
    #[inline]
    pub fn next_span(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records one completed span into the calling thread's ring.
    /// Steady state: a thread-local lookup plus the seqlock stores —
    /// no locks, no allocation (first call on a thread registers its
    /// ring, which allocates once).
    #[inline]
    pub fn record(&self, rec: &SpanRecord) {
        RINGS.with(|cell| {
            let Ok(mut rings) = cell.try_borrow_mut() else {
                return; // re-entrant record from a destructor: drop it
            };
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                ring.push(rec);
                return;
            }
            let ring = self.register_ring();
            ring.push(rec);
            rings.push((self.id, ring));
        });
    }

    // fastbn: allow(hot-alloc): ring registration — once per
    // (thread, tracer), off the steady-state record path.
    fn register_ring(&self) -> Arc<SpanRing> {
        let ring = Arc::new(SpanRing::with_capacity(self.config.ring_capacity));
        self.rings
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ring
    }

    /// Appends to the slow-query log (bounded ring, oldest overwritten;
    /// the total count stays exact). Cold by definition — only requests
    /// over the threshold get here.
    pub fn record_slow(&self, entry: SlowEntry) {
        let mut slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        let n = self.slow_head.fetch_add(1, Ordering::Relaxed);
        if self.config.slow_capacity == 0 {
            return;
        }
        if slow.len() < self.config.slow_capacity {
            slow.push(entry);
        } else {
            slow[(n % self.config.slow_capacity as u64) as usize] = entry;
        }
    }

    /// Exact count of requests that ever exceeded the slow threshold
    /// (including entries since overwritten).
    pub fn slow_total(&self) -> u64 {
        self.slow_head.load(Ordering::Relaxed)
    }

    /// Total spans ever recorded, across all threads' rings.
    pub fn spans_recorded(&self) -> u64 {
        self.rings
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|r| r.pushed())
            .sum()
    }

    // fastbn: allow(hot-alloc): name interning — once per distinct
    // name (model ids at admission), never on the span record path.
    /// Interns a span name, returning a stable [`NameId`]. Well-known
    /// stage names resolve to their pre-interned constants.
    pub fn intern(&self, name: &str) -> NameId {
        if let Some(i) = WELL_KNOWN.iter().position(|w| *w == name) {
            return NameId(i as u32);
        }
        let mut names = self.names.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(i) = names.iter().position(|n| n == name) {
            return NameId(FIRST_DYNAMIC + i as u32);
        }
        names.push(name.to_string());
        NameId(FIRST_DYNAMIC + names.len() as u32 - 1)
    }

    // fastbn: allow(hot-alloc): diagnostic read path.
    /// The string a [`NameId`] was interned from (`"?"` for ids this
    /// tracer never issued).
    pub fn name(&self, id: NameId) -> String {
        let i = id.0 as usize;
        if i < WELL_KNOWN.len() {
            return WELL_KNOWN[i].to_string();
        }
        let names = self.names.lock().unwrap_or_else(PoisonError::into_inner);
        names
            .get(i - WELL_KNOWN.len())
            .map(|s| s.as_str())
            .unwrap_or("?")
            .to_string()
    }

    // fastbn: allow(hot-alloc): diagnostic read path (introspection
    // endpoint / trace bin), not on the record path.
    /// Seqlock-validated copies of every live span slot, in no
    /// particular order. Torn slots (mid-write) are skipped.
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        let rings: Vec<Arc<SpanRing>> = {
            let guard = self.rings.lock().unwrap_or_else(PoisonError::into_inner);
            guard.iter().map(Arc::clone).collect()
        };
        let mut out = Vec::with_capacity(rings.iter().map(|r| r.len()).sum());
        for ring in &rings {
            for i in 0..ring.len() {
                if let Some(rec) = ring.read(i) {
                    out.push(rec);
                }
            }
        }
        out
    }

    // fastbn: allow(hot-alloc): diagnostic read path.
    /// The most recent `max` traces (by latest span start), each with
    /// its spans sorted by start time then span id.
    pub fn recent_traces(&self, max: usize) -> Vec<TraceView> {
        let mut spans = self.recent_spans();
        spans.sort_by_key(|s| (s.trace, s.start_ns, s.span));
        let mut traces: Vec<TraceView> = Vec::with_capacity(16);
        for span in spans {
            match traces.last_mut() {
                Some(t) if t.trace == span.trace => t.spans.push(span),
                _ => traces.push(TraceView {
                    trace: span.trace,
                    spans: {
                        let mut v = Vec::with_capacity(8);
                        v.push(span);
                        v
                    },
                }),
            }
        }
        // Most recent trace first, by its latest span start.
        traces.sort_by_key(|t| std::cmp::Reverse(t.spans.iter().map(|s| s.start_ns).max()));
        traces.truncate(max);
        traces
    }

    // fastbn: allow(hot-alloc): diagnostic read path.
    /// The slow-query log, oldest first, plus the exact total.
    pub fn slow_entries(&self) -> Vec<SlowEntry> {
        let slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        let head = self.slow_head.load(Ordering::Relaxed) as usize;
        let mut out = Vec::with_capacity(slow.len());
        if slow.len() < self.config.slow_capacity || self.config.slow_capacity == 0 {
            out.extend(slow.iter().map(SlowEntry::clone));
        } else {
            let start = head % self.config.slow_capacity;
            for i in 0..slow.len() {
                out.push(SlowEntry::clone(&slow[(start + i) % slow.len()]));
            }
        }
        out
    }

    // fastbn: allow(hot-alloc): diagnostic read path.
    /// The `/traces/recent` JSON document: `{"traces": [{"trace",
    /// "spans": [{"span","parent","name","start_ns","dur_ns","tag",
    /// "aux"}]}]}`, most recent trace first.
    pub fn traces_json(&self, max: usize) -> Json {
        let traces: Vec<Json> = self
            .recent_traces(max)
            .iter()
            .map(|t| {
                let spans: Vec<Json> = t
                    .spans
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .set("span", s.span)
                            .set("parent", s.parent)
                            .set("name", self.name(s.name))
                            .set("start_ns", s.start_ns)
                            .set("dur_ns", s.dur_ns)
                            .set("tag", s.tag)
                            .set("aux", s.aux)
                    })
                    .collect();
                Json::obj().set("trace", t.trace).set("spans", spans)
            })
            .collect();
        Json::obj().set("traces", traces)
    }

    // fastbn: allow(hot-alloc): diagnostic read path.
    /// The `/traces/slow` JSON document: `{"total", "threshold_ns",
    /// "entries": [{"trace","model","total_ns","queue_ns","compute_ns",
    /// "batch","sampled","at_ns"}]}`, oldest entry first.
    pub fn slow_json(&self) -> Json {
        let entries: Vec<Json> = self
            .slow_entries()
            .iter()
            .map(|e| {
                Json::obj()
                    .set("trace", e.trace)
                    .set("model", e.model.as_str())
                    .set("total_ns", e.total_ns)
                    .set("queue_ns", e.queue_ns)
                    .set("compute_ns", e.compute_ns)
                    .set("batch", e.batch)
                    .set("sampled", e.sampled)
                    .set("at_ns", e.at_ns)
            })
            .collect();
        Json::obj()
            .set("total", self.slow_total())
            .set("threshold_ns", self.slow_threshold_ns())
            .set("entries", entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, span: u64, parent: u64, name: NameId, start: u64) -> SpanRecord {
        SpanRecord {
            trace,
            span,
            parent,
            name,
            start_ns: start,
            dur_ns: 10,
            tag: 0,
            aux: 0,
        }
    }

    #[test]
    fn spans_round_trip_through_the_ring() {
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.next_span();
        let child = tracer.next_span();
        tracer.record(&rec(7, root, 0, SPAN_REQUEST, 100));
        tracer.record(&rec(7, child, root, SPAN_COMPUTE, 120));
        let traces = tracer.recent_traces(10);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].trace, 7);
        assert_eq!(traces[0].spans.len(), 2);
        assert_eq!(traces[0].spans[0].name, SPAN_REQUEST);
        assert_eq!(traces[0].spans[1].parent, root);
        assert_eq!(tracer.spans_recorded(), 2);
    }

    #[test]
    fn ring_overwrites_oldest_spans() {
        let tracer = Tracer::new(TraceConfig {
            ring_capacity: 8,
            ..TraceConfig::default()
        });
        for i in 0..20u64 {
            tracer.record(&rec(1, i + 1, 0, SPAN_COMPUTE, i));
        }
        let spans = tracer.recent_spans();
        assert_eq!(spans.len(), 8, "capacity bounds retained spans");
        // Only the newest 8 remain.
        let min_start = spans.iter().map(|s| s.start_ns).min().unwrap();
        assert_eq!(min_start, 12);
        assert_eq!(tracer.spans_recorded(), 20);
    }

    #[test]
    fn head_sampling_is_one_in_n() {
        let tracer = Tracer::new(TraceConfig {
            sample_every: 4,
            ..TraceConfig::default()
        });
        let sampled = (0..100).filter(|_| tracer.begin_trace().sampled).count();
        assert_eq!(sampled, 25);

        let never = Tracer::new(TraceConfig {
            sample_every: 0,
            ..TraceConfig::default()
        });
        assert!((0..50).all(|_| !never.begin_trace().sampled));

        let always = Tracer::new(TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        });
        assert!((0..50).all(|_| always.begin_trace().sampled));
    }

    #[test]
    fn trace_ids_are_unique_across_threads() {
        let tracer = std::sync::Arc::new(Tracer::new(TraceConfig::default()));
        let mut ids: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let tracer = Arc::clone(&tracer);
                    scope.spawn(move || {
                        (0..1000)
                            .map(|_| tracer.begin_trace().trace)
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4000);
    }

    #[test]
    fn slow_log_overwrites_but_counts_exactly() {
        let tracer = Tracer::new(TraceConfig {
            slow_capacity: 4,
            ..TraceConfig::default()
        });
        for i in 0..10u64 {
            tracer.record_slow(SlowEntry {
                trace: i + 1,
                model: "m".to_string(),
                total_ns: 1000 + i,
                queue_ns: 1,
                compute_ns: 2,
                batch: 3,
                sampled: false,
                at_ns: i,
            });
        }
        assert_eq!(tracer.slow_total(), 10);
        let entries = tracer.slow_entries();
        assert_eq!(entries.len(), 4);
        // Oldest-first, the newest four retained.
        let traces: Vec<u64> = entries.iter().map(|e| e.trace).collect();
        assert_eq!(traces, [7, 8, 9, 10]);
    }

    #[test]
    fn interning_round_trips_and_reuses_ids() {
        let tracer = Tracer::new(TraceConfig::default());
        assert_eq!(tracer.intern("compute"), SPAN_COMPUTE);
        let alarm = tracer.intern("model.alarm");
        assert_eq!(tracer.intern("model.alarm"), alarm);
        let other = tracer.intern("model.insurance");
        assert_ne!(alarm, other);
        assert_eq!(tracer.name(alarm), "model.alarm");
        assert_eq!(tracer.name(SPAN_COLLECT), "collect");
        assert_eq!(tracer.name(NameId(9999)), "?");
    }

    #[test]
    fn concurrent_readers_never_see_torn_spans() {
        let tracer = Arc::new(Tracer::new(TraceConfig {
            ring_capacity: 16,
            ..TraceConfig::default()
        }));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let writer_tracer = Arc::clone(&tracer);
            let writer_stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = 0u64;
                while !writer_stop.load(Ordering::Relaxed) {
                    i += 1;
                    // A self-consistent record: all payload words equal.
                    writer_tracer.record(&SpanRecord {
                        trace: i,
                        span: i,
                        parent: i,
                        name: NameId(0),
                        start_ns: i,
                        dur_ns: i,
                        tag: i,
                        aux: i,
                    });
                }
            });
            for _ in 0..3 {
                let reader_tracer = Arc::clone(&tracer);
                scope.spawn(move || {
                    for _ in 0..2000 {
                        for s in reader_tracer.recent_spans() {
                            assert!(
                                s.trace == s.span
                                    && s.span == s.parent
                                    && s.parent == s.start_ns
                                    && s.start_ns == s.dur_ns
                                    && s.dur_ns == s.tag
                                    && s.tag == s.aux,
                                "torn span escaped the seqlock: {s:?}"
                            );
                        }
                    }
                });
            }
            // Give the verification threads time against a live writer.
            std::thread::sleep(Duration::from_millis(50));
            stop.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn json_documents_parse_and_carry_names() {
        let tracer = Tracer::new(TraceConfig::default());
        let root = tracer.next_span();
        tracer.record(&rec(42, root, 0, SPAN_REQUEST, 5));
        tracer.record_slow(SlowEntry {
            trace: 42,
            model: "alarm".to_string(),
            total_ns: 123,
            queue_ns: 4,
            compute_ns: 5,
            batch: 6,
            sampled: true,
            at_ns: 7,
        });
        let traces = tracer.traces_json(10);
        let parsed = Json::parse(&traces.to_pretty()).unwrap();
        let list = parsed.get("traces").unwrap().as_arr().unwrap();
        assert_eq!(list[0].get("trace").unwrap().as_u64(), Some(42));
        let span = &list[0].get("spans").unwrap().as_arr().unwrap()[0];
        assert_eq!(span.get("name").unwrap().as_str(), Some("request"));

        let slow = tracer.slow_json();
        let parsed = Json::parse(&slow.to_pretty()).unwrap();
        assert_eq!(parsed.get("total").unwrap().as_u64(), Some(1));
        let entry = &parsed.get("entries").unwrap().as_arr().unwrap()[0];
        assert_eq!(entry.get("model").unwrap().as_str(), Some("alarm"));
        assert_eq!(entry.get("sampled"), Some(&Json::Bool(true)));
    }
}
